//! Snapshot-isolation property tests: N reader threads answering queries
//! against pinned snapshot versions while a writer commits seeded delta
//! batches.  Every reader's answers must equal the single-threaded
//! evaluation of its pinned version, and plan-cache hits must produce the
//! same answers as cold planning.

use si_data::{tuple, Delta, Tuple, Value};
use si_engine::{Engine, EngineConfig, EngineError, Request};
use si_query::evaluate_cq;
use si_workload::{
    serving_access_schema, social_partition_map, social_requests, SocialConfig, SocialGenerator,
};
use std::sync::atomic::{AtomicU64, Ordering};

const PERSONS: usize = 300;

fn generated_db() -> si_data::Database {
    SocialGenerator::new(SocialConfig {
        persons: PERSONS,
        restaurants: 40,
        avg_friends: 12,
        avg_visits: 4,
        ..SocialConfig::default()
    })
    .generate()
}

fn engine(config: EngineConfig) -> Engine {
    Engine::new(generated_db(), serving_access_schema(5000), config).unwrap()
}

fn sharded_engine(shards: usize, config: EngineConfig) -> Engine {
    Engine::new_sharded(
        generated_db(),
        serving_access_schema(5000),
        social_partition_map(),
        shards,
        config,
    )
    .unwrap()
}

/// A delta whose tuples are fresh by construction: batch `i` inserts visit
/// facts with an rid range no other batch (and no generated visit) uses.
fn fresh_visit_batch(batch: usize) -> Delta {
    let mut delta = Delta::new();
    for j in 0..25i64 {
        let person = (batch as i64 * 7 + j) % PERSONS as i64;
        let rid = 2_000_000 + batch as i64 * 1_000 + j;
        delta.insert("visit", tuple![person, rid]);
    }
    delta
}

/// The single-threaded ground truth: bind the parameters and evaluate the CQ
/// naively over a deep copy of the pinned version.
fn naive_answers(request: &Request, snapshot: &si_engine::EngineSnapshot) -> Vec<Tuple> {
    let bindings: Vec<(String, Value)> = request
        .parameters
        .iter()
        .cloned()
        .zip(request.values.iter().copied())
        .collect();
    let bound = request.query.bind(&bindings);
    let mut answers = evaluate_cq(&bound, &snapshot.to_database(), None).unwrap();
    answers.sort();
    answers
}

#[test]
fn readers_on_pinned_snapshots_agree_with_single_threaded_evaluation() {
    let engine = engine(EngineConfig {
        workers: 2,
        stats_drift_threshold: 0.05, // let the writer invalidate plans mid-run
        ..EngineConfig::default()
    });
    let readers = 4usize;
    let rounds = 24usize;
    let batches = 30usize;
    let checked = AtomicU64::new(0);

    std::thread::scope(|scope| {
        // Writer: commits fresh batches, then deletes every other batch.
        let writer_engine = &engine;
        scope.spawn(move || {
            for b in 0..batches {
                writer_engine.commit(&fresh_visit_batch(b)).unwrap();
                if b >= 2 && b % 2 == 0 {
                    // Delete a slice of batch b-2 (still present: only even
                    // batches delete, and they target even-older batches).
                    let mut delta = Delta::new();
                    for j in 0..5i64 {
                        let person = ((b as i64 - 2) * 7 + j) % PERSONS as i64;
                        let rid = 2_000_000 + (b as i64 - 2) * 1_000 + j;
                        delta.delete("visit", tuple![person, rid]);
                    }
                    writer_engine.commit(&delta).unwrap();
                }
            }
        });

        for reader in 0..readers {
            let engine = &engine;
            let checked = &checked;
            scope.spawn(move || {
                let stream = social_requests(PERSONS, rounds, 1000 + reader as u64);
                for generated in stream {
                    let request =
                        Request::new(generated.query, generated.parameters, generated.values);
                    // Pin a version; the writer keeps committing meanwhile.
                    let pinned = engine.snapshot();
                    let response = engine.execute_at(&pinned, &request).unwrap();
                    assert_eq!(
                        response.epoch,
                        pinned.epoch(),
                        "response must report the pinned version"
                    );
                    let mut served = response.answers.clone();
                    served.sort();
                    assert_eq!(
                        served,
                        naive_answers(&request, &pinned),
                        "pinned answers diverged from single-threaded evaluation \
                         (epoch {})",
                        pinned.epoch()
                    );
                    checked.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    assert_eq!(checked.load(Ordering::Relaxed), (readers * rounds) as u64);
    let metrics = engine.metrics();
    // The writer really ran (30 insert batches + 14 delete batches)…
    assert_eq!(metrics.commits, 44);
    assert_eq!(metrics.snapshot_epoch, 44);
    // …the cache served most requests, and drift invalidated it at least once.
    assert!(metrics.cache_hits > 0, "plan cache never hit");
    assert!(
        metrics.stats_refreshes > 0,
        "stats drift never triggered a refresh"
    );
}

#[test]
fn materialized_serving_agrees_with_single_threaded_evaluation_under_commits() {
    // Readers hammer a small hot set of (shape, value) pairs through the
    // materialized answer cache while the writer keeps committing visit
    // insert/delete batches; whenever no commit raced the execution, the
    // served answers must equal naive single-threaded evaluation of the
    // version the response reports.
    let engine = engine(EngineConfig {
        workers: 2,
        materialize_capacity: 64,
        materialize_after: 1,
        stats_drift_threshold: 0.05,
        ..EngineConfig::default()
    });
    let readers = 3usize;
    let rounds = 40usize;
    let batches = 20usize;
    let verified = AtomicU64::new(0);

    std::thread::scope(|scope| {
        let writer_engine = &engine;
        scope.spawn(move || {
            for b in 0..batches {
                writer_engine.commit(&fresh_visit_batch(b)).unwrap();
                if b >= 2 && b % 2 == 0 {
                    let mut delta = Delta::new();
                    for j in 0..5i64 {
                        let person = ((b as i64 - 2) * 7 + j) % PERSONS as i64;
                        let rid = 2_000_000 + (b as i64 - 2) * 1_000 + j;
                        delta.delete("visit", tuple![person, rid]);
                    }
                    writer_engine.commit(&delta).unwrap();
                }
            }
        });

        for reader in 0..readers {
            let engine = &engine;
            let verified = &verified;
            scope.spawn(move || {
                // A hot set of 4 persons: every pair repeats ~10 times, so
                // answers are admitted, maintained and re-served many times.
                let stream = social_requests(4, rounds, 500 + reader as u64);
                for generated in stream {
                    let request =
                        Request::new(generated.query, generated.parameters, generated.values);
                    let pinned = engine.snapshot();
                    let response = engine.execute(&request).unwrap();
                    if response.epoch == pinned.epoch() {
                        // No commit raced the execution: the response is for
                        // the pinned version and can be cross-checked.
                        let mut served = response.answers.clone();
                        served.sort();
                        assert_eq!(
                            served,
                            naive_answers(&request, &pinned),
                            "answers diverged at epoch {} (materialized: {})",
                            response.epoch,
                            response.materialized
                        );
                        verified.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    // The vast majority of executions are commit-free and were verified.
    assert!(
        verified.load(Ordering::Relaxed) > (readers * rounds / 2) as u64,
        "too few verifiable executions: {}",
        verified.load(Ordering::Relaxed)
    );
    let metrics = engine.metrics();
    assert_eq!(metrics.commits, 29);
    assert!(
        metrics.materialized_hits > 0,
        "hot repeats never hit the materialized cache"
    );
    assert!(
        metrics.maintenance_runs > 0,
        "commits never maintained an admitted answer"
    );
    // Write-path maintenance is bounded work: no full scans ever.
    assert_eq!(metrics.maintenance_accesses.full_scans, 0);
}

#[test]
fn plan_cache_hits_equal_cold_planned_answers() {
    // A warmed engine (every shape cached) and a cold engine must serve
    // identical answers for an identical request stream.
    let warmed = engine(EngineConfig::default());
    let stream = social_requests(PERSONS, 60, 7);
    // Warm-up pass: plans every shape.
    for g in &stream {
        let req = Request::new(g.query.clone(), g.parameters.clone(), g.values.clone());
        warmed.execute(&req).unwrap();
    }
    let cold = engine(EngineConfig::default());
    let mut hits = 0u64;
    for g in &stream {
        let req = Request::new(g.query.clone(), g.parameters.clone(), g.values.clone());
        let warm_response = warmed.execute(&req).unwrap();
        let cold_response = cold.execute(&req).unwrap();
        if warm_response.cache_hit {
            hits += 1;
        }
        assert_eq!(
            warm_response.answers, cold_response.answers,
            "cache hit must not change answers"
        );
        assert_eq!(warm_response.accesses, cold_response.accesses);
    }
    assert_eq!(hits, 60, "second pass must be all cache hits");
}

#[test]
fn sharded_serving_stays_equivalent_under_concurrent_commits() {
    let sharded = engine(EngineConfig {
        shards_per_query: 4,
        ..EngineConfig::default()
    });
    let stream = social_requests(PERSONS, 40, 99);
    std::thread::scope(|scope| {
        let writer = &sharded;
        scope.spawn(move || {
            for b in 0..10 {
                writer.commit(&fresh_visit_batch(100 + b)).unwrap();
            }
        });
        let engine = &sharded;
        scope.spawn(move || {
            for g in &stream {
                let req = Request::new(g.query.clone(), g.parameters.clone(), g.values.clone());
                let pinned = engine.snapshot();
                let response = engine.execute_at(&pinned, &req).unwrap();
                let mut served = response.answers.clone();
                served.sort();
                assert_eq!(served, naive_answers(&req, &pinned));
            }
        });
    });
}

#[test]
fn pool_serving_matches_naive_evaluation_on_a_quiescent_engine() {
    let engine = engine(EngineConfig {
        workers: 4,
        ..EngineConfig::default()
    });
    let stream = social_requests(PERSONS, 50, 3);
    let snapshot = engine.snapshot(); // no writer: current version is stable
    let pending: Vec<_> = stream
        .iter()
        .map(|g| {
            engine
                .submit(Request::new(
                    g.query.clone(),
                    g.parameters.clone(),
                    g.values.clone(),
                ))
                .unwrap()
        })
        .collect();
    for (g, pending) in stream.iter().zip(pending) {
        let req = Request::new(g.query.clone(), g.parameters.clone(), g.values.clone());
        let response = pending.wait().unwrap();
        let mut served = response.answers;
        served.sort();
        assert_eq!(served, naive_answers(&req, &snapshot));
    }
}

#[test]
fn sharded_readers_pinned_across_sharded_commits_agree_with_naive_evaluation() {
    // Concurrent chaos over a hash-partitioned store: readers pin coherent
    // cross-shard views while a writer streams commits whose deltas split
    // across shards — including delete-then-reinsert interleavings where a
    // slice of an old batch is deleted in one commit and the *same tuples*
    // (routing to several different shards) come back in the next.  Every
    // reader's answers must equal single-threaded evaluation of its pinned
    // global epoch, and the response must report that epoch.
    let engine = sharded_engine(
        3,
        EngineConfig {
            workers: 2,
            stats_drift_threshold: 0.05,
            ..EngineConfig::default()
        },
    );
    let readers = 4usize;
    let rounds = 24usize;
    let batches = 24usize;
    let checked = AtomicU64::new(0);

    std::thread::scope(|scope| {
        let writer_engine = &engine;
        scope.spawn(move || {
            for b in 0..batches {
                writer_engine.commit(&fresh_visit_batch(b)).unwrap();
                if b >= 2 && b % 2 == 0 {
                    // Delete a slice of batch b-2…
                    let mut delete = Delta::new();
                    let mut restore = Delta::new();
                    for j in 0..5i64 {
                        let person = ((b as i64 - 2) * 7 + j) % PERSONS as i64;
                        let rid = 2_000_000 + (b as i64 - 2) * 1_000 + j;
                        delete.delete("visit", tuple![person, rid]);
                        restore.insert("visit", tuple![person, rid]);
                    }
                    writer_engine.commit(&delete).unwrap();
                    // …and re-insert exactly those tuples one epoch later:
                    // the five persons hash to different shards, so the
                    // delete/re-insert pair splits across shards both times.
                    writer_engine.commit(&restore).unwrap();
                }
            }
        });

        for reader in 0..readers {
            let engine = &engine;
            let checked = &checked;
            scope.spawn(move || {
                let stream = social_requests(PERSONS, rounds, 2000 + reader as u64);
                for generated in stream {
                    let request =
                        Request::new(generated.query, generated.parameters, generated.values);
                    let pinned = engine.snapshot();
                    let response = engine.execute_at(&pinned, &request).unwrap();
                    assert_eq!(
                        response.epoch,
                        pinned.epoch(),
                        "response must report the pinned global epoch"
                    );
                    let mut served = response.answers.clone();
                    served.sort();
                    assert_eq!(
                        served,
                        naive_answers(&request, &pinned),
                        "pinned sharded answers diverged from single-threaded \
                         evaluation (epoch {})",
                        pinned.epoch()
                    );
                    checked.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    assert_eq!(checked.load(Ordering::Relaxed), (readers * rounds) as u64);
    let metrics = engine.metrics();
    // 24 insert batches + 11 delete/re-insert pairs.
    assert_eq!(metrics.commits, 46);
    assert_eq!(metrics.snapshot_epoch, 46);
    assert!(metrics.cache_hits > 0, "plan cache never hit");
    // The store really is partitioned: several shards received commits.
    let stats = engine.shard_stats();
    assert_eq!(stats.len(), 3);
    assert!(stats.iter().all(|s| s.routed_tuples > 0));
    // Shard-epoch coherence, inspected uniformly through the pinned
    // snapshot: every shard commits on every global commit.
    let snapshot = engine.snapshot();
    assert_eq!(snapshot.shard_count(), 3);
    assert_eq!(snapshot.shard_epochs(), vec![46; 3]);
}

#[test]
fn sharded_materialized_serving_survives_delete_then_reinsert_across_shards() {
    // Materialized answers maintained per shard-local delta: a hot request
    // set is admitted, then the writer deletes and re-inserts visit facts
    // of the hot persons across shards; whenever no commit raced the
    // execution, the served answers must equal naive evaluation, and the
    // delete-then-reinsert round trips must land back on the same answers.
    let engine = sharded_engine(
        3,
        EngineConfig {
            workers: 2,
            materialize_capacity: 64,
            materialize_after: 1,
            stats_drift_threshold: 0.05,
            ..EngineConfig::default()
        },
    );
    let readers = 3usize;
    let rounds = 30usize;
    let batches = 12usize;
    let verified = AtomicU64::new(0);

    std::thread::scope(|scope| {
        let writer_engine = &engine;
        scope.spawn(move || {
            for b in 0..batches {
                writer_engine.commit(&fresh_visit_batch(b)).unwrap();
                if b >= 2 && b % 2 == 0 {
                    let mut delete = Delta::new();
                    let mut restore = Delta::new();
                    for j in 0..5i64 {
                        let person = ((b as i64 - 2) * 7 + j) % PERSONS as i64;
                        let rid = 2_000_000 + (b as i64 - 2) * 1_000 + j;
                        delete.delete("visit", tuple![person, rid]);
                        restore.insert("visit", tuple![person, rid]);
                    }
                    writer_engine.commit(&delete).unwrap();
                    writer_engine.commit(&restore).unwrap();
                }
            }
        });

        for reader in 0..readers {
            let engine = &engine;
            let verified = &verified;
            scope.spawn(move || {
                let stream = social_requests(4, rounds, 700 + reader as u64);
                for generated in stream {
                    let request =
                        Request::new(generated.query, generated.parameters, generated.values);
                    let pinned = engine.snapshot();
                    let response = engine.execute(&request).unwrap();
                    if response.epoch == pinned.epoch() {
                        let mut served = response.answers.clone();
                        served.sort();
                        assert_eq!(
                            served,
                            naive_answers(&request, &pinned),
                            "sharded answers diverged at epoch {} (materialized: {})",
                            response.epoch,
                            response.materialized
                        );
                        verified.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    assert!(
        verified.load(Ordering::Relaxed) > (readers * rounds / 2) as u64,
        "too few verifiable executions: {}",
        verified.load(Ordering::Relaxed)
    );
    let metrics = engine.metrics();
    assert_eq!(metrics.commits, 22);
    assert!(
        metrics.materialized_hits > 0,
        "hot repeats never hit the materialized cache"
    );
    assert!(
        metrics.maintenance_runs > 0,
        "sharded commits never maintained an admitted answer"
    );
    assert_eq!(metrics.maintenance_accesses.full_scans, 0);
}

#[test]
fn overload_shedding_reports_queue_pressure() {
    // One worker, a queue of 1, and requests that keep the worker busy long
    // enough for the submitter to outrun it.
    let engine = engine(EngineConfig {
        workers: 1,
        max_queue: 1,
        ..EngineConfig::default()
    });
    let mut shed = 0;
    let mut pending = Vec::new();
    for i in 0..50 {
        match engine.submit(Request::new(
            si_workload::q1(),
            vec!["p".into()],
            vec![Value::int(i % PERSONS as i64)],
        )) {
            Ok(p) => pending.push(p),
            Err(EngineError::Overloaded { max_queue, .. }) => {
                assert_eq!(max_queue, 1);
                shed += 1;
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    for p in pending {
        p.wait().unwrap();
    }
    // With a queue bound of 1 and 50 rapid-fire submissions, at least one
    // must have been shed; the metric agrees.
    assert!(shed > 0, "no submission was shed");
    assert_eq!(engine.metrics().shed_overload, shed);
}
