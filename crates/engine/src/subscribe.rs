//! The reactive plane: push epoch-stamped answer deltas to subscribers.
//!
//! The materialized cache ([`crate::materialize`]) keeps hot answers
//! incrementally maintained across commits; this layer delivers those
//! maintenance results instead of making consumers re-serve the query.  An
//! [`ObservableQuery`] subscriber registers a (canonical shape, parameter
//! values) interest and receives [`AnswerUpdate`]s through a bounded
//! per-subscriber queue:
//!
//! * [`AnswerUpdate::Changes`] — a coalesced, epoch-stamped
//!   [`ChangeSet`] `{ added, removed, epoch }`: the net effect of one commit
//!   (or one group-commit pass) on the subscribed answer.  Commits that do
//!   not change the answer are elided — a delete-then-reinsert storm that
//!   [`DeltaBatch`](si_data::DeltaBatch) cancels delivers nothing.
//! * [`AnswerUpdate::Resync`] — a full-state marker `{ epoch, full_answer }`
//!   that replaces everything the subscriber knew.  Emitted at registration
//!   (the fenced initial state), after a queue overflow, whenever the
//!   maintenance path dropped the subscribed entry (stale epoch, Corollary
//!   5.3 gate rejection, maintenance error — the previously *silent*
//!   fallback-by-drop), and after [`Engine::recover`](crate::Engine)
//!   rebuilds the engine around a surviving registry.
//!
//! **Registration fencing.** [`Engine::subscribe`](crate::Engine::subscribe)
//! runs under the engine's commit lock: it pins the current snapshot,
//! computes the full answer, records a *pinned* materialized entry and
//! enqueues the initial `Resync` before any later commit can run its
//! fan-out.  A commit therefore either happened before registration (its
//! effect is inside the initial `Resync`) or after it (its `ChangeSet` is
//! delivered) — no update of the registration epoch can be missed or
//! double-received.
//!
//! **Backpressure is drop-to-resync.** Delivery never blocks the committer:
//! a full queue is cleared and replaced by a single `Resync` carrying the
//! entry's current full answer.  A slow subscriber loses granularity, never
//! correctness — replaying its stream from epoch 0 still reconstructs the
//! exact cold-query answer at every epoch it observed.
//!
//! **Pinning.** Every subscribed key is pinned in the shared
//! [`PinSet`], which exempts it from the materialized cache's admission
//! threshold and from capacity/cost-based eviction, and keeps the
//! maintenance pass alive even on engines configured with
//! `materialize_capacity == 0`.

use crate::materialize::{MaterializedKey, PinSet};
use si_data::Tuple;
use si_query::{ConjunctiveQuery, Var};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The net effect of one commit (or group-commit pass) on a subscribed
/// answer, exact for snapshot `epoch`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangeSet {
    /// The snapshot epoch the answer is exact for after applying the change.
    pub epoch: u64,
    /// Tuples that entered the answer (sorted).
    pub added: Vec<Tuple>,
    /// Tuples that left the answer (sorted).
    pub removed: Vec<Tuple>,
}

impl ChangeSet {
    /// True iff the commit did not change the answer.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// One message in a subscriber's change stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnswerUpdate {
    /// An incremental answer delta to apply to the subscriber's state.
    Changes(ChangeSet),
    /// A full-state marker: replace everything with `full_answer`, exact for
    /// `epoch`.  The first message of every subscription is a `Resync`.
    Resync {
        /// The snapshot epoch `full_answer` is exact for.
        epoch: u64,
        /// The complete answer, shared with the materialized entry.
        full_answer: Arc<Vec<Tuple>>,
    },
}

impl AnswerUpdate {
    /// The snapshot epoch this update brings the subscriber to.
    pub fn epoch(&self) -> u64 {
        match self {
            AnswerUpdate::Changes(change) => change.epoch,
            AnswerUpdate::Resync { epoch, .. } => *epoch,
        }
    }

    /// Applies this update to a replayed answer state (sorted tuples),
    /// returning the state after the update — the replay oracle's step
    /// function.
    pub fn apply_to(&self, state: &mut Vec<Tuple>) {
        match self {
            AnswerUpdate::Changes(change) => {
                state.retain(|t| !change.removed.contains(t));
                state.extend(change.added.iter().cloned());
                state.sort();
            }
            AnswerUpdate::Resync { full_answer, .. } => {
                *state = (**full_answer).clone();
                state.sort();
            }
        }
    }
}

/// A subscriber's bounded delivery queue.
#[derive(Debug)]
struct QueueState {
    items: VecDeque<AnswerUpdate>,
    /// Overflows observed (each collapsed the queue into one `Resync`).
    overflows: u64,
}

/// Per-subscriber delivery state, shared between the registry (producer)
/// and the [`ObservableQuery`] handle (consumer).
#[derive(Debug)]
struct SubscriberState {
    id: u64,
    queue: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

impl SubscriberState {
    fn new(id: u64, capacity: usize) -> Self {
        SubscriberState {
            id,
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                overflows: 0,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `update`; when the queue is full it is cleared and replaced
    /// by a single `Resync { epoch, full }`.  Returns true iff the update
    /// went through without collapsing to a resync.
    fn deliver(&self, update: AnswerUpdate, epoch: u64, full: &Arc<Vec<Tuple>>) -> bool {
        let mut queue = self.queue.lock().expect("subscriber queue poisoned");
        let fits = queue.items.len() < self.capacity;
        if fits {
            queue.items.push_back(update);
        } else {
            queue.items.clear();
            queue.items.push_back(AnswerUpdate::Resync {
                epoch,
                full_answer: Arc::clone(full),
            });
            queue.overflows += 1;
        }
        self.ready.notify_all();
        fits
    }
}

/// A live subscription handle: the consumer side of one subscriber's
/// bounded queue.  Dropping the handle unregisters the subscriber and
/// releases its pin on the materialized entry.
#[derive(Debug)]
pub struct ObservableQuery {
    key: MaterializedKey,
    state: Arc<SubscriberState>,
    registry: Arc<SubscriptionRegistry>,
}

impl ObservableQuery {
    /// The subscribed (canonical shape, parameter values) key.
    pub fn key(&self) -> &MaterializedKey {
        &self.key
    }

    /// Takes the next queued update without blocking.
    pub fn try_recv(&self) -> Option<AnswerUpdate> {
        let mut queue = self.state.queue.lock().expect("subscriber queue poisoned");
        queue.items.pop_front()
    }

    /// Waits up to `timeout` for the next update.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<AnswerUpdate> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.state.queue.lock().expect("subscriber queue poisoned");
        loop {
            if let Some(update) = queue.items.pop_front() {
                return Some(update);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .state
                .ready
                .wait_timeout(queue, deadline - now)
                .expect("subscriber queue poisoned");
            queue = guard;
        }
    }

    /// Drains every queued update in delivery order.
    pub fn drain(&self) -> Vec<AnswerUpdate> {
        let mut queue = self.state.queue.lock().expect("subscriber queue poisoned");
        queue.items.drain(..).collect()
    }

    /// Updates currently queued.
    pub fn queue_len(&self) -> usize {
        self.state
            .queue
            .lock()
            .expect("subscriber queue poisoned")
            .items
            .len()
    }

    /// Times the bounded queue overflowed (each collapsed it to one Resync).
    pub fn overflows(&self) -> u64 {
        self.state
            .queue
            .lock()
            .expect("subscriber queue poisoned")
            .overflows
    }
}

impl Drop for ObservableQuery {
    fn drop(&mut self) {
        self.registry.unregister(&self.key, self.state.id);
    }
}

/// One subscribed key's interest: the canonical query (kept so the engine
/// can recompute the full answer for resyncs and recovery re-seeding) plus
/// its subscribers.
#[derive(Debug)]
struct KeyInterest {
    query: ConjunctiveQuery,
    parameters: Vec<Var>,
    subscribers: Vec<Arc<SubscriberState>>,
}

/// A subscribed key with the canonical query that serves it — what the
/// engine's fan-out and recovery re-seeding iterate over.
#[derive(Debug, Clone)]
pub(crate) struct SubscribedShape {
    /// The (shape, parameter values) key.
    pub key: MaterializedKey,
    /// The canonical (alpha-renamed) query.
    pub query: ConjunctiveQuery,
    /// The canonical parameter variables.
    pub parameters: Vec<Var>,
}

/// The engine's subscription registry: subscribed keys → subscriber queues,
/// plus the pin set it shares with the materialized cache.  The registry is
/// `Arc`-owned by the engine *and* by every [`ObservableQuery`] handle, so
/// it survives [`Engine::recover`](crate::Engine) — the recovered engine is
/// built around the same registry and re-seeds every subscriber with a
/// `Resync` at the recovered epoch.
#[derive(Debug, Default)]
pub struct SubscriptionRegistry {
    inner: Mutex<HashMap<MaterializedKey, KeyInterest>>,
    pins: Arc<PinSet>,
    next_id: AtomicU64,
    delivered: AtomicU64,
    resyncs: AtomicU64,
    overflows: AtomicU64,
}

impl SubscriptionRegistry {
    /// Creates an empty registry with its own pin set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The pin set shared with the materialized cache.
    pub fn pins(&self) -> &Arc<PinSet> {
        &self.pins
    }

    /// True iff nobody is subscribed (one relaxed load via the pin set).
    pub fn is_empty(&self) -> bool {
        self.pins.is_empty()
    }

    /// Live subscriber handles.
    pub fn subscriber_count(&self) -> u64 {
        let inner = self.inner.lock().expect("subscription registry poisoned");
        inner.values().map(|i| i.subscribers.len() as u64).sum()
    }

    /// Updates currently queued across all subscribers (gauge).
    pub fn queued_updates(&self) -> u64 {
        let inner = self.inner.lock().expect("subscription registry poisoned");
        inner
            .values()
            .flat_map(|i| i.subscribers.iter())
            .map(|s| {
                s.queue
                    .lock()
                    .expect("subscriber queue poisoned")
                    .items
                    .len() as u64
            })
            .sum()
    }

    /// Change-sets delivered (enqueued) so far.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Resync markers delivered so far (registration, drop, overflow,
    /// recovery).
    pub fn resyncs(&self) -> u64 {
        self.resyncs.load(Ordering::Relaxed)
    }

    /// Queue overflows so far (each collapsed a queue into one Resync).
    pub fn overflows(&self) -> u64 {
        self.overflows.load(Ordering::Relaxed)
    }

    /// True iff `key` has at least one subscriber.
    pub(crate) fn is_subscribed(&self, key: &MaterializedKey) -> bool {
        self.pins.is_pinned(key)
    }

    /// Every subscribed shape, for the commit fan-out and recovery
    /// re-seeding.
    pub(crate) fn subscribed(&self) -> Vec<SubscribedShape> {
        let inner = self.inner.lock().expect("subscription registry poisoned");
        inner
            .iter()
            .map(|(key, interest)| SubscribedShape {
                key: key.clone(),
                query: interest.query.clone(),
                parameters: interest.parameters.clone(),
            })
            .collect()
    }

    /// Registers a subscriber for `key`, pinning it and enqueuing the fenced
    /// initial `Resync { epoch, full_answer }` as its first message.  The
    /// caller (the engine) holds the commit lock, which is the fence.
    pub(crate) fn register(
        self: &Arc<Self>,
        key: MaterializedKey,
        query: ConjunctiveQuery,
        parameters: Vec<Var>,
        capacity: usize,
        epoch: u64,
        full_answer: Arc<Vec<Tuple>>,
    ) -> ObservableQuery {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(SubscriberState::new(id, capacity));
        state.deliver(
            AnswerUpdate::Resync {
                epoch,
                full_answer: Arc::clone(&full_answer),
            },
            epoch,
            &full_answer,
        );
        self.resyncs.fetch_add(1, Ordering::Relaxed);
        self.pins.pin(&key);
        {
            let mut inner = self.inner.lock().expect("subscription registry poisoned");
            inner
                .entry(key.clone())
                .or_insert_with(|| KeyInterest {
                    query,
                    parameters,
                    subscribers: Vec::new(),
                })
                .subscribers
                .push(Arc::clone(&state));
        }
        ObservableQuery {
            key,
            state,
            registry: Arc::clone(self),
        }
    }

    /// Removes subscriber `id` from `key` and releases its pin; the key's
    /// interest disappears with its last subscriber.
    fn unregister(&self, key: &MaterializedKey, id: u64) {
        let mut inner = self.inner.lock().expect("subscription registry poisoned");
        if let Some(interest) = inner.get_mut(key) {
            interest.subscribers.retain(|s| s.id != id);
            if interest.subscribers.is_empty() {
                inner.remove(key);
            }
            self.pins.unpin(key);
        }
    }

    /// Fans a change-set out to `key`'s subscribers.  Empty change-sets are
    /// elided (net-effect-only delivery); a full queue collapses to a
    /// `Resync` carrying `full`.  Returns the number of updates enqueued.
    pub(crate) fn deliver_changes(
        &self,
        key: &MaterializedKey,
        change: &ChangeSet,
        full: &Arc<Vec<Tuple>>,
    ) -> u64 {
        if change.is_empty() {
            return 0;
        }
        let inner = self.inner.lock().expect("subscription registry poisoned");
        let Some(interest) = inner.get(key) else {
            return 0;
        };
        let mut enqueued = 0;
        for subscriber in &interest.subscribers {
            enqueued += 1;
            if subscriber.deliver(AnswerUpdate::Changes(change.clone()), change.epoch, full) {
                self.delivered.fetch_add(1, Ordering::Relaxed);
            } else {
                self.overflows.fetch_add(1, Ordering::Relaxed);
                self.resyncs.fetch_add(1, Ordering::Relaxed);
            }
        }
        enqueued
    }

    /// Fans a `Resync { epoch, full }` out to `key`'s subscribers (entry
    /// dropped by maintenance, or recovery re-seeding).  Returns the number
    /// of updates enqueued.
    pub(crate) fn deliver_resync(
        &self,
        key: &MaterializedKey,
        epoch: u64,
        full: &Arc<Vec<Tuple>>,
    ) -> u64 {
        let inner = self.inner.lock().expect("subscription registry poisoned");
        let Some(interest) = inner.get(key) else {
            return 0;
        };
        let mut enqueued = 0;
        for subscriber in &interest.subscribers {
            enqueued += 1;
            if !subscriber.deliver(
                AnswerUpdate::Resync {
                    epoch,
                    full_answer: Arc::clone(full),
                },
                epoch,
                full,
            ) {
                self.overflows.fetch_add(1, Ordering::Relaxed);
            }
            self.resyncs.fetch_add(1, Ordering::Relaxed);
        }
        enqueued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_data::tuple;
    use si_query::parse_cq;

    fn registry() -> Arc<SubscriptionRegistry> {
        Arc::new(SubscriptionRegistry::new())
    }

    fn shape() -> (ConjunctiveQuery, Vec<Var>) {
        let q = parse_cq(r#"Q(v0, v1) :- friend(v0, v1)"#).unwrap();
        (q, vec!["v0".into()])
    }

    fn key(p: i64) -> MaterializedKey {
        ("shape".to_string(), vec![si_data::Value::int(p)])
    }

    fn full(tuples: &[Tuple]) -> Arc<Vec<Tuple>> {
        Arc::new(tuples.to_vec())
    }

    #[test]
    fn registration_delivers_the_fenced_initial_resync() {
        let registry = registry();
        let (q, params) = shape();
        let sub = registry.register(key(1), q, params, 8, 3, full(&[tuple!["a"]]));
        assert_eq!(registry.subscriber_count(), 1);
        assert!(registry.is_subscribed(&key(1)));
        assert!(!registry.is_subscribed(&key(2)));
        let first = sub.try_recv().expect("initial resync queued");
        assert_eq!(
            first,
            AnswerUpdate::Resync {
                epoch: 3,
                full_answer: full(&[tuple!["a"]]),
            }
        );
        assert!(sub.try_recv().is_none());
        assert_eq!(registry.resyncs(), 1);
    }

    #[test]
    fn dropping_the_handle_unregisters_and_unpins() {
        let registry = registry();
        let (q, params) = shape();
        let sub = registry.register(key(1), q.clone(), params.clone(), 8, 0, full(&[]));
        let sub2 = registry.register(key(1), q, params, 8, 0, full(&[]));
        assert_eq!(registry.subscriber_count(), 2);
        drop(sub);
        assert_eq!(registry.subscriber_count(), 1);
        assert!(registry.is_subscribed(&key(1)), "second handle still pins");
        drop(sub2);
        assert!(registry.is_empty());
        assert!(!registry.is_subscribed(&key(1)));
    }

    #[test]
    fn empty_change_sets_are_elided() {
        let registry = registry();
        let (q, params) = shape();
        let sub = registry.register(key(1), q, params, 8, 0, full(&[]));
        sub.drain();
        let change = ChangeSet {
            epoch: 1,
            added: vec![],
            removed: vec![],
        };
        assert_eq!(registry.deliver_changes(&key(1), &change, &full(&[])), 0);
        assert!(sub.try_recv().is_none());
        assert_eq!(registry.delivered(), 0);
    }

    #[test]
    fn overflow_collapses_the_queue_into_exactly_one_resync() {
        let registry = registry();
        let (q, params) = shape();
        let sub = registry.register(key(1), q, params, 2, 0, full(&[]));
        sub.drain();
        for e in 1..=5u64 {
            let change = ChangeSet {
                epoch: e,
                added: vec![tuple![e as i64]],
                removed: vec![],
            };
            registry.deliver_changes(&key(1), &change, &full(&[tuple![e as i64]]));
        }
        // Capacity 2: epochs 1 and 2 fit, epoch 3 overflows (collapse to one
        // Resync at 3), epochs 4 and 5 then refill past it… epoch 5 would be
        // the third item, collapsing again at 5.
        assert!(sub.overflows() >= 1);
        let updates = sub.drain();
        assert!(updates.len() <= 2, "queue never exceeds capacity");
        let resyncs = updates
            .iter()
            .filter(|u| matches!(u, AnswerUpdate::Resync { .. }))
            .count();
        assert_eq!(resyncs, 1, "overflow leaves exactly one resync marker");
        assert_eq!(updates[0].epoch(), 5 - (updates.len() as u64 - 1));
    }

    #[test]
    fn replay_across_an_overflow_reconstructs_the_full_answer() {
        let registry = registry();
        let (q, params) = shape();
        let sub = registry.register(key(1), q, params, 2, 0, full(&[]));
        let mut state: Vec<Tuple> = Vec::new();
        let mut answer: Vec<Tuple> = Vec::new();
        for e in 1..=7u64 {
            answer.push(tuple![e as i64]);
            answer.sort();
            let change = ChangeSet {
                epoch: e,
                added: vec![tuple![e as i64]],
                removed: vec![],
            };
            registry.deliver_changes(&key(1), &change, &full(&answer));
            if e % 3 == 0 {
                for update in sub.drain() {
                    update.apply_to(&mut state);
                }
                assert_eq!(state, answer, "replay exact at epoch {e}");
            }
        }
        for update in sub.drain() {
            update.apply_to(&mut state);
        }
        assert_eq!(state, answer);
    }

    #[test]
    fn resyncs_are_fanned_to_every_subscriber_of_the_key() {
        let registry = registry();
        let (q, params) = shape();
        let a = registry.register(key(1), q.clone(), params.clone(), 8, 0, full(&[]));
        let b = registry.register(key(1), q.clone(), params.clone(), 8, 0, full(&[]));
        let other = registry.register(key(2), q, params, 8, 0, full(&[]));
        a.drain();
        b.drain();
        other.drain();
        assert_eq!(
            registry.deliver_resync(&key(1), 9, &full(&[tuple!["x"]])),
            2
        );
        assert_eq!(a.queue_len(), 1);
        assert_eq!(b.queue_len(), 1);
        assert_eq!(other.queue_len(), 0);
        assert_eq!(a.try_recv().unwrap().epoch(), 9);
    }

    #[test]
    fn recv_timeout_returns_queued_updates_and_times_out_empty() {
        let registry = registry();
        let (q, params) = shape();
        let sub = registry.register(key(1), q, params, 8, 4, full(&[]));
        let update = sub.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(update.epoch(), 4);
        assert!(sub.recv_timeout(Duration::from_millis(10)).is_none());
    }
}
