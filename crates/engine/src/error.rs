//! Error type of the serving layer.

use si_core::CoreError;
use si_data::DataError;
use si_durability::DurabilityError;
use std::fmt;

/// Errors raised by the query-serving engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Propagated planner/executor error.
    Core(CoreError),
    /// Propagated storage error (snapshot commits, bad deltas, …).
    Data(DataError),
    /// Propagated durability-plane error (WAL append, checkpoint, recovery).
    /// On a durable engine a commit whose WAL append fails returns this and
    /// leaves the in-memory store untouched — nothing undurable is served.
    Durability(DurabilityError),
    /// Admission control rejected the request: every bounded plan's
    /// worst-case fetch count exceeds the engine's fetch budget.  This is the
    /// paper's boundedness guarantee used as a *load-shedding* signal — an
    /// unbounded (or too-expensive) query is turned away before it touches
    /// the data.
    RejectedByBudget {
        /// The engine's per-request worst-case fetch budget.
        budget: u64,
        /// The cheapest worst case among the plans found.
        cheapest: u64,
    },
    /// Load shed: the submission queue is at capacity.
    Overloaded {
        /// Requests pending when the submission was refused.
        queued: usize,
        /// The configured queue capacity.
        max_queue: usize,
    },
    /// The request supplies the wrong number of parameter values.
    ParameterArity {
        /// Parameters the query declares.
        expected: usize,
        /// Values the request supplied.
        actual: usize,
    },
    /// The engine's worker pool has shut down.
    ShuttingDown,
    /// The requested epoch cannot be served: it is ahead of what the store
    /// (or, for replicated reads, a replica) has committed/applied, or it
    /// has fallen out of a replica's retention window.  Raised by
    /// [`Engine::execute_at`](crate::Engine::execute_at) for snapshots from
    /// a different store's future, and by replicated execution when the
    /// epoch wait for read-your-writes times out.
    EpochUnavailable {
        /// The epoch the caller pinned.
        requested: u64,
        /// The newest epoch available to serve.
        newest: u64,
    },
    /// A replication-plane failure: the attach handshake failed, a shard has
    /// no replica attached, or a replica connection died mid-operation.
    Replication(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Core(e) => write!(f, "{e}"),
            EngineError::Data(e) => write!(f, "{e}"),
            EngineError::Durability(e) => write!(f, "{e}"),
            EngineError::RejectedByBudget { budget, cheapest } => write!(
                f,
                "admission control rejected the request: cheapest plan fetches ≤{cheapest} tuples, budget is {budget}"
            ),
            EngineError::Overloaded { queued, max_queue } => write!(
                f,
                "engine overloaded: {queued} requests queued (capacity {max_queue})"
            ),
            EngineError::ParameterArity { expected, actual } => write!(
                f,
                "request supplies {actual} parameter values, query declares {expected}"
            ),
            EngineError::ShuttingDown => write!(f, "engine is shutting down"),
            EngineError::EpochUnavailable { requested, newest } => write!(
                f,
                "epoch {requested} is not available to serve (newest is {newest})"
            ),
            EngineError::Replication(msg) => write!(f, "replication failure: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Core(e) => Some(e),
            EngineError::Data(e) => Some(e),
            EngineError::Durability(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> Self {
        EngineError::Core(e)
    }
}

impl From<DataError> for EngineError {
    fn from(e: DataError) -> Self {
        EngineError::Data(e)
    }
}

impl From<DurabilityError> for EngineError {
    fn from(e: DurabilityError) -> Self {
        EngineError::Durability(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: EngineError = CoreError::Unsupported("agg".into()).into();
        assert!(e.to_string().contains("agg"));
        assert!(std::error::Error::source(&e).is_some());
        let e: EngineError = DataError::UnknownRelation("r".into()).into();
        assert!(e.to_string().contains("unknown relation"));
        let e: EngineError = DurabilityError::NoCheckpoint.into();
        assert!(e.to_string().contains("checkpoint"));
        assert!(std::error::Error::source(&e).is_some());
        let e = EngineError::RejectedByBudget {
            budget: 10,
            cheapest: 20,
        };
        assert!(e.to_string().contains("budget is 10"));
        assert!(std::error::Error::source(&e).is_none());
        assert!(EngineError::Overloaded {
            queued: 5,
            max_queue: 4
        }
        .to_string()
        .contains("capacity 4"));
        assert!(EngineError::ParameterArity {
            expected: 2,
            actual: 1
        }
        .to_string()
        .contains("declares 2"));
        assert!(EngineError::ShuttingDown.to_string().contains("shutting"));
        assert!(EngineError::EpochUnavailable {
            requested: 7,
            newest: 3
        }
        .to_string()
        .contains("epoch 7"));
        assert!(EngineError::Replication("wire tore".into())
            .to_string()
            .contains("wire tore"));
    }
}
