//! The group committer: one background thread coalescing queued deltas
//! into single commit passes.
//!
//! Writers hand deltas to [`Engine::commit_async`](crate::Engine) and get a
//! [`CommitTicket`] back immediately.  The committer thread gathers what is
//! queued — up to [`EngineConfig::commit_batch_max`](crate::EngineConfig),
//! waiting at most [`EngineConfig::commit_linger`](crate::EngineConfig) for
//! stragglers after the first delta arrives — and commits each gathered
//! batch through [`Shared::commit_group`]: the deltas are folded into their
//! net effect and share **one** epoch bump, one maintenance pass and one
//! statistics drift probe.  Each ticket resolves to its own delta's
//! outcome, so a delta that fails validation mid-batch reports its own
//! error while the rest commit.
//!
//! A [`flush`](CommitQueue::flush) is a barrier message on the same FIFO
//! channel: it cuts the gather short, and its acknowledgement is sent only
//! after every delta enqueued before it has been committed or rejected.
//! Shutdown is by hang-up, like the worker pool: dropping the queue drops
//! the sender, the committer drains what is left and exits, and `Drop`
//! joins it.

use crate::error::EngineError;
use crate::Shared;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// What writers enqueue: a delta awaiting commit, or a flush barrier.
enum CommitMsg {
    Delta {
        delta: si_data::Delta,
        reply: mpsc::Sender<crate::Result<u64>>,
    },
    Flush {
        reply: mpsc::Sender<()>,
    },
}

/// A commit that has been enqueued on the group committer but may not have
/// been applied yet (the write-side analogue of
/// [`PendingResponse`](crate::PendingResponse)).
#[derive(Debug)]
pub struct CommitTicket {
    receiver: mpsc::Receiver<crate::Result<u64>>,
}

impl CommitTicket {
    /// Blocks until this delta's commit outcome is known: `Ok(epoch)` of
    /// the (possibly shared) commit that applied it, or its own validation
    /// error.
    pub fn wait(self) -> crate::Result<u64> {
        self.receiver
            .recv()
            .map_err(|_| EngineError::ShuttingDown)?
    }

    /// Returns the outcome if it is already known.
    ///
    /// A ticket whose committer is gone without deciding the delta (the
    /// thread panicked, or teardown raced the reply) reports
    /// [`EngineError::ShuttingDown`] — a final outcome, **not** `None`:
    /// `None` means "still pending", and a poll loop that kept seeing it
    /// for an abandoned ticket would spin forever.  Consequently the
    /// outcome is handed out once; polling again after receiving it also
    /// reports `ShuttingDown`.
    pub fn try_wait(&self) -> Option<crate::Result<u64>> {
        match self.receiver.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(EngineError::ShuttingDown)),
        }
    }
}

/// The background committer thread plus the channel into it.
#[derive(Debug)]
pub(crate) struct CommitQueue {
    // `mpsc::Sender` is `Send` but not `Sync`; the engine handle must be
    // `Sync`, so the sender sits behind a mutex (taken only for the send —
    // the gather and the commit run on the committer thread).
    sender: Mutex<Option<mpsc::Sender<CommitMsg>>>,
    handle: Option<JoinHandle<()>>,
}

impl CommitQueue {
    /// Spawns the committer thread for `shared`.
    pub fn start(shared: Arc<Shared>) -> Self {
        let (sender, receiver) = mpsc::channel::<CommitMsg>();
        let handle = std::thread::Builder::new()
            .name("si-engine-committer".into())
            .spawn(move || run(&shared, &receiver))
            .expect("failed to spawn engine committer thread");
        CommitQueue {
            sender: Mutex::new(Some(sender)),
            handle: Some(handle),
        }
    }

    /// Enqueues one delta; its ticket resolves to that delta's outcome.
    pub fn enqueue(&self, delta: si_data::Delta) -> crate::Result<CommitTicket> {
        let (reply, receiver) = mpsc::channel();
        self.send(CommitMsg::Delta { delta, reply })?;
        Ok(CommitTicket { receiver })
    }

    /// Barrier: returns once every delta enqueued before it is decided.
    pub fn flush(&self) -> crate::Result<()> {
        let (reply, receiver) = mpsc::channel();
        self.send(CommitMsg::Flush { reply })?;
        receiver.recv().map_err(|_| EngineError::ShuttingDown)
    }

    fn send(&self, msg: CommitMsg) -> crate::Result<()> {
        self.sender
            .lock()
            .expect("commit queue sender poisoned")
            .as_ref()
            .ok_or(EngineError::ShuttingDown)?
            .send(msg)
            .map_err(|_| EngineError::ShuttingDown)
    }
}

impl Drop for CommitQueue {
    fn drop(&mut self) {
        // Hang up, then join: the committer drains the queue and exits.
        if let Ok(mut guard) = self.sender.lock() {
            guard.take();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The committer loop: block for the first message, gather a batch, commit
/// it as one group, repeat until the channel hangs up.
fn run(shared: &Shared, receiver: &mpsc::Receiver<CommitMsg>) {
    let batch_max = shared.config.commit_batch_max.max(1);
    let linger = shared.config.commit_linger;
    loop {
        let first = match receiver.recv() {
            Ok(msg) => msg,
            Err(_) => break,
        };
        let mut deltas = Vec::new();
        let mut replies = Vec::new();
        let mut flushes: Vec<mpsc::Sender<()>> = Vec::new();
        let mut pending = Some(first);
        let deadline = Instant::now() + linger;
        loop {
            let msg = match pending.take() {
                Some(msg) => msg,
                None if deltas.len() >= batch_max => break,
                None => {
                    let now = Instant::now();
                    let received = if now >= deadline {
                        // Linger spent: take only what is already queued.
                        receiver.try_recv().map_err(|_| ())
                    } else {
                        receiver.recv_timeout(deadline - now).map_err(|_| ())
                    };
                    match received {
                        Ok(msg) => msg,
                        Err(()) => break,
                    }
                }
            };
            match msg {
                CommitMsg::Delta { delta, reply } => {
                    deltas.push(delta);
                    replies.push(reply);
                }
                CommitMsg::Flush { reply } => {
                    // The barrier cuts the gather short; everything queued
                    // before it has been gathered (FIFO channel) or was
                    // committed by an earlier pass.
                    flushes.push(reply);
                    break;
                }
            }
        }
        if !deltas.is_empty() {
            let results = shared.commit_group(&deltas);
            for (reply, result) in replies.into_iter().zip(results) {
                // A dropped ticket just means the writer stopped waiting;
                // the commit already happened.
                let _ = reply.send(result);
            }
        }
        for flush in flushes {
            let _ = flush.send(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abandoned_tickets_report_shutdown_instead_of_pending_forever() {
        // A reply channel whose sender is gone without a message models a
        // committer that died mid-batch: the ticket's outcome is final.
        let (sender, receiver) = mpsc::channel();
        let ticket = CommitTicket { receiver };
        drop(sender);
        assert_eq!(ticket.try_wait(), Some(Err(EngineError::ShuttingDown)));
        assert_eq!(ticket.wait(), Err(EngineError::ShuttingDown));

        // A pending ticket still polls as pending.
        let (sender, receiver) = mpsc::channel();
        let ticket = CommitTicket { receiver };
        assert_eq!(ticket.try_wait(), None);
        sender.send(Ok(7)).unwrap();
        assert_eq!(ticket.try_wait(), Some(Ok(7)));
    }
}
