//! Engine-side wiring of the observability plane (`si-telemetry`).
//!
//! One [`EngineTelemetry`] lives inside the engine's `Shared` state.  It owns
//! the [`TelemetryRegistry`] (the scrape surface `Engine::telemetry` exposes),
//! caches the `Arc` handles of the engine's latency histograms so hot paths
//! never touch the registry lock, and carries the per-request [`Sampler`]
//! plus the two serving gauges (in-flight requests, traces emitted).
//!
//! Cost discipline: with `trace_sample_every == 0` and no per-request opt-in,
//! the serve path pays exactly one branch for tracing (the sampler's disabled
//! check) plus the always-on metrics plane — a handful of relaxed atomic adds
//! into the serve-latency histogram and the in-flight gauge.  No allocation
//! happens unless a trace is actually built.

use crate::EngineConfig;
use si_telemetry::{LatencyHistogram, RequestTrace, Sampler, TelemetryConfig, TelemetryRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Serve-path service latency (planning + execution, excluding queue wait).
pub const SERVE_HISTOGRAM: &str = "si_serve_latency_ns";
/// Time pool-submitted requests spent queued before a worker picked them up.
pub const QUEUE_WAIT_HISTOGRAM: &str = "si_queue_wait_ns";
/// End-to-end commit-pass latency (fold + WAL + apply + maintenance + drift).
pub const COMMIT_HISTOGRAM: &str = "si_commit_latency_ns";
/// Materialized-answer maintenance time per commit pass.
pub const MAINTENANCE_HISTOGRAM: &str = "si_maintenance_latency_ns";
/// WAL fsync time per commit pass (durable engines only).
pub const FSYNC_HISTOGRAM: &str = "si_fsync_latency_ns";
/// Checkpoint serialization + publish time (durable engines only).
pub const CHECKPOINT_HISTOGRAM: &str = "si_checkpoint_latency_ns";
/// Commit-start → subscriber-queue delivery latency of one change-set or
/// resync push (reactive plane; engines with subscribers only).
pub const DELIVERY_HISTOGRAM: &str = "si_subscription_delivery_ns";
/// WAL-record ship → replica acknowledgement latency, per shipped record
/// per replica (replication plane; engines with attached replicas only).
pub const REPLICATION_HISTOGRAM: &str = "si_replication_ack_ns";

/// The engine's observability state: registry + cached histograms + sampler.
#[derive(Debug)]
pub(crate) struct EngineTelemetry {
    /// The scrape surface (histograms, slow log, commit log, collectors).
    pub registry: TelemetryRegistry,
    /// 1-in-N request sampler (`trace_sample_every`; 0 disables tracing).
    pub sampler: Sampler,
    /// Service time at or above this many nanoseconds marks a trace slow
    /// (and forces a post-hoc trace for unsampled requests).
    pub slow_threshold_nanos: u64,
    /// Serve-path service latency.
    pub serve: Arc<LatencyHistogram>,
    /// Pool queue wait.
    pub queue_wait: Arc<LatencyHistogram>,
    /// Commit-pass latency.
    pub commit: Arc<LatencyHistogram>,
    /// Maintenance time per commit pass.
    pub maintenance: Arc<LatencyHistogram>,
    /// WAL fsync time per commit pass.
    pub fsync: Arc<LatencyHistogram>,
    /// Checkpoint publish time.
    pub checkpoint: Arc<LatencyHistogram>,
    /// Subscription delivery latency (commit start → update enqueued).
    pub delivery: Arc<LatencyHistogram>,
    /// Replication ship → ack latency (per record per replica).
    pub replication: Arc<LatencyHistogram>,
    /// Requests currently inside the serve path (gauge).
    pub in_flight: AtomicU64,
    /// Request traces emitted so far (sampled + post-hoc slow + opted-in).
    pub traces_emitted: AtomicU64,
}

impl EngineTelemetry {
    /// Builds the engine's telemetry plane from its config knobs.
    pub fn new(config: &EngineConfig) -> Self {
        let registry = TelemetryRegistry::new(TelemetryConfig {
            slow_log_capacity: config.slow_log_capacity,
            ..TelemetryConfig::default()
        });
        let serve = registry.histogram(SERVE_HISTOGRAM);
        let queue_wait = registry.histogram(QUEUE_WAIT_HISTOGRAM);
        let commit = registry.histogram(COMMIT_HISTOGRAM);
        let maintenance = registry.histogram(MAINTENANCE_HISTOGRAM);
        let fsync = registry.histogram(FSYNC_HISTOGRAM);
        let checkpoint = registry.histogram(CHECKPOINT_HISTOGRAM);
        let delivery = registry.histogram(DELIVERY_HISTOGRAM);
        let replication = registry.histogram(REPLICATION_HISTOGRAM);
        EngineTelemetry {
            sampler: Sampler::new(config.trace_sample_every),
            slow_threshold_nanos: u64::try_from(config.slow_threshold.as_nanos())
                .unwrap_or(u64::MAX),
            serve,
            queue_wait,
            commit,
            maintenance,
            fsync,
            checkpoint,
            delivery,
            replication,
            in_flight: AtomicU64::new(0),
            traces_emitted: AtomicU64::new(0),
            registry,
        }
    }

    /// True when `service_nanos` crosses the slow threshold.
    pub fn is_slow(&self, service_nanos: u64) -> bool {
        service_nanos >= self.slow_threshold_nanos
    }

    /// Marks a request in flight; the guard decrements on every exit path.
    pub fn enter(&self) -> InFlightGuard<'_> {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        InFlightGuard(&self.in_flight)
    }

    /// Publishes a finished trace: bumps the emitted counter and offers it to
    /// the slow log (which retains only the worst K per axis).
    pub fn emit(&self, trace: RequestTrace) -> Arc<RequestTrace> {
        let trace = Arc::new(trace);
        self.traces_emitted.fetch_add(1, Ordering::Relaxed);
        self.registry.slow_log().offer(Arc::clone(&trace));
        trace
    }
}

/// RAII decrement of the in-flight gauge.
#[derive(Debug)]
pub(crate) struct InFlightGuard<'a>(&'a AtomicU64);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}
