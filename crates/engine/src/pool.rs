//! A hand-rolled fixed worker pool (std-only: threads, channels, mutexes).
//!
//! The environment is offline, so there is no `rayon`/`crossbeam` to lean
//! on.  The pool is the classic shared-receiver design: one unbounded mpsc
//! channel of jobs, `workers` threads competing on an `Arc<Mutex<Receiver>>`
//! to pull the next one.  The mutex is taken once per *request* — requests
//! do real work (plan-cache lookup, snapshot pin, bounded fetches) — so the
//! shared receiver is nowhere near the critical path.  Back-pressure is the
//! engine's job: it counts queued requests and sheds load *before*
//! submitting (see [`EngineConfig::max_queue`](crate::EngineConfig)).
//!
//! Shutdown is by hang-up: dropping the pool drops the sender, every worker
//! drains what is left and exits on the channel's disconnect, and `Drop`
//! joins them.

use crate::error::EngineError;
use crate::{QueryResponse, Request, Shared};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One queued request plus the channel its result goes back on.
pub(crate) struct Job {
    pub request: Request,
    pub reply: mpsc::Sender<Result<QueryResponse, EngineError>>,
    /// When the job entered the queue — the worker measures queue wait from
    /// it into the `si_queue_wait_ns` histogram (and the request's trace).
    pub submitted: Instant,
}

/// The fixed pool of serving threads.
#[derive(Debug)]
pub(crate) struct WorkerPool {
    sender: Option<mpsc::Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Most additional queued jobs one worker drains behind the job it
    /// dequeued when request batching is on — bounds both the extra time
    /// under the receiver lock and the latency of the drained requests.
    const DRAIN_MAX: usize = 32;

    /// Spawns `workers` threads serving requests against `shared`.
    pub fn start(shared: Arc<Shared>, workers: usize) -> Self {
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let batching = shared.config.batch_requests;
        let handles = (0..workers.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("si-engine-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only while dequeuing.  With
                        // batching on, also drain whatever queued up behind
                        // the job — those requests are about to be grouped
                        // onto shared fetches, so taking them now is what
                        // creates the groups.
                        let jobs = match receiver.lock() {
                            Ok(guard) => match guard.recv() {
                                Ok(first) => {
                                    let mut jobs = vec![first];
                                    while batching && jobs.len() < Self::DRAIN_MAX {
                                        match guard.try_recv() {
                                            Ok(job) => jobs.push(job),
                                            Err(_) => break,
                                        }
                                    }
                                    jobs
                                }
                                Err(_) => break,
                            },
                            Err(_) => break,
                        };
                        if let [_] = jobs.as_slice() {
                            let job = jobs.into_iter().next().expect("one job");
                            let wait_nanos = crate::nanos_of(job.submitted.elapsed());
                            shared.telemetry.queue_wait.record(wait_nanos);
                            let result = shared.serve_queued(&job.request, wait_nanos);
                            // A dropped reply receiver just means the client
                            // gave up waiting; the work is already merged
                            // into the engine's metrics.
                            let _ = job.reply.send(result);
                            // The queue slot frees only once the reply is
                            // delivered: `queued` counts admitted requests
                            // the engine still owes work on.
                            shared.queued.fetch_sub(1, Ordering::Relaxed);
                        } else {
                            for job in &jobs {
                                shared
                                    .telemetry
                                    .queue_wait
                                    .record(crate::nanos_of(job.submitted.elapsed()));
                            }
                            let (requests, replies): (Vec<_>, Vec<_>) =
                                jobs.into_iter().map(|j| (j.request, j.reply)).unzip();
                            let results = shared.serve_batch(&requests);
                            for (reply, result) in replies.iter().zip(results) {
                                let _ = reply.send(result);
                                shared.queued.fetch_sub(1, Ordering::Relaxed);
                            }
                        }
                    })
                    .expect("failed to spawn engine worker thread")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            handles,
        }
    }

    /// Hands a job to the pool.
    pub fn submit(&self, job: Job) -> Result<(), EngineError> {
        self.sender
            .as_ref()
            .ok_or(EngineError::ShuttingDown)?
            .send(job)
            .map_err(|_| EngineError::ShuttingDown)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Hang up, then join: workers drain the queue and exit.
        self.sender.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}
