//! The prepared-plan cache: one [`CostBasedPlanner`](si_core::CostBasedPlanner)
//! output per (query shape, statistics epoch).
//!
//! Planning a conjunctive query is a subset-DP over its atoms — cheap in
//! absolute terms but easily dominating a bounded execution that fetches a
//! handful of tuples.  The cache keys plans by the canonical
//! [`ShapeKey`] so alpha-equivalent requests share
//! one plan, and stamps every entry with the **statistics epoch** it was
//! planned under.  When the engine decides its statistics have drifted too
//! far (see [`EngineConfig::stats_drift_threshold`](crate::EngineConfig)),
//! it bumps the epoch; stale entries then miss and are re-planned lazily
//! against the fresh statistics — plan *choice* refreshes, while answer
//! correctness never depended on the statistics in the first place.
//!
//! Eviction is FIFO at a fixed capacity: shape populations are small and
//! stable in a serving workload, so recency tracking would buy nothing over
//! the simpler order queue.

use crate::shape::ShapeKey;
use si_core::BoundedPlan;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One cached prepared plan.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The plan, shared with every request executing it.
    pub plan: Arc<BoundedPlan>,
    /// The statistics epoch the plan was ranked under.
    pub stats_epoch: u64,
    /// The planner's expected tuples fetched per execution (evidence, not a
    /// bound).
    pub estimated_tuples: f64,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<ShapeKey, CachedPlan>,
    /// Insertion order, for FIFO eviction.
    order: VecDeque<ShapeKey>,
}

/// A concurrent shape → plan cache with epoch invalidation.
#[derive(Debug)]
pub struct PlanCache {
    inner: RwLock<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    purged: AtomicU64,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans (at least 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            inner: RwLock::new(CacheInner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            purged: AtomicU64::new(0),
        }
    }

    /// Drops every entry planned under a statistics epoch other than
    /// `current_epoch`, returning how many were removed.
    ///
    /// Stale entries can never hit again (lookups always pass the current
    /// epoch), so without this they would sit in the map until FIFO
    /// capacity pressure happened to push them out — dead weight that also
    /// ages out *live* shapes early.  The engine calls this eagerly at
    /// every statistics-epoch bump.
    pub fn purge_stale(&self, current_epoch: u64) -> usize {
        let mut inner = self.inner.write().expect("plan cache poisoned");
        let CacheInner { map, order } = &mut *inner;
        let before = map.len();
        map.retain(|_, cached| cached.stats_epoch == current_epoch);
        let removed = before - map.len();
        if removed > 0 {
            order.retain(|key| map.contains_key(key));
            self.purged.fetch_add(removed as u64, Ordering::Relaxed);
        }
        removed
    }

    /// Looks up the plan for `key`, provided it was planned under
    /// `stats_epoch`.  A stale entry counts as a miss (the caller re-plans
    /// and overwrites it).
    pub fn get(&self, key: &str, stats_epoch: u64) -> Option<CachedPlan> {
        let inner = self.inner.read().expect("plan cache poisoned");
        match inner.map.get(key) {
            Some(cached) if cached.stats_epoch == stats_epoch => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(cached.clone())
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) the plan for `key`, evicting the oldest shape
    /// when the cache is full.
    pub fn insert(&self, key: ShapeKey, plan: CachedPlan) {
        let mut inner = self.inner.write().expect("plan cache poisoned");
        if inner.map.insert(key.clone(), plan).is_none() {
            inner.order.push_back(key);
            while inner.map.len() > self.capacity {
                if let Some(oldest) = inner.order.pop_front() {
                    inner.map.remove(&oldest);
                } else {
                    break;
                }
            }
        }
    }

    /// Number of cached shapes.
    pub fn len(&self) -> usize {
        self.inner.read().expect("plan cache poisoned").map.len()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that required (re-)planning so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Dead-epoch entries reclaimed by [`PlanCache::purge_stale`] so far.
    pub fn purged(&self) -> u64 {
        self.purged.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_access::facebook_access_schema;
    use si_core::BoundedPlanner;
    use si_data::schema::social_schema;
    use si_query::parse_cq;

    fn some_plan() -> Arc<BoundedPlan> {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let q = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        Arc::new(
            BoundedPlanner::new(&schema, &access)
                .plan(&q, &["p".into()])
                .unwrap(),
        )
    }

    fn entry(epoch: u64) -> CachedPlan {
        CachedPlan {
            plan: some_plan(),
            stats_epoch: epoch,
            estimated_tuples: 1.0,
        }
    }

    #[test]
    fn hit_miss_and_epoch_invalidation() {
        let cache = PlanCache::new(8);
        assert!(cache.get("k", 0).is_none());
        cache.insert("k".into(), entry(0));
        assert!(cache.get("k", 0).is_some());
        // Epoch bump invalidates.
        assert!(cache.get("k", 1).is_none());
        // Re-planning under the new epoch overwrites in place.
        cache.insert("k".into(), entry(1));
        assert!(cache.get("k", 1).is_some());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let cache = PlanCache::new(2);
        cache.insert("a".into(), entry(0));
        cache.insert("b".into(), entry(0));
        cache.insert("c".into(), entry(0));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a", 0).is_none(), "oldest shape evicted");
        assert!(cache.get("b", 0).is_some());
        assert!(cache.get("c", 0).is_some());
        assert!(!cache.is_empty());
    }

    #[test]
    fn counters_distinguish_cold_warm_and_invalidated_lookups() {
        let cache = PlanCache::new(8);
        // Cold: nothing cached yet.
        assert!(cache.get("k", 0).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.insert("k".into(), entry(0));
        // Warm: two hits at the planning epoch.
        assert!(cache.get("k", 0).is_some());
        assert!(cache.get("k", 0).is_some());
        assert_eq!((cache.hits(), cache.misses()), (2, 1));
        // Invalidated: the entry exists but its stats epoch is stale — a
        // miss, not a hit, and the stale entry stays until overwritten.
        assert!(cache.get("k", 1).is_none());
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
        assert_eq!(cache.len(), 1);
        cache.insert("k".into(), entry(1));
        assert!(cache.get("k", 1).is_some());
        assert_eq!((cache.hits(), cache.misses()), (3, 2));
        assert_eq!(cache.len(), 1, "re-planning overwrites in place");
    }

    #[test]
    fn refreshing_an_existing_shape_keeps_the_fifo_order() {
        let cache = PlanCache::new(2);
        cache.insert("a".into(), entry(0));
        cache.insert("b".into(), entry(0));
        // Refreshing `a` (e.g. after an epoch bump) must not re-enqueue it…
        cache.insert("a".into(), entry(1));
        assert_eq!(cache.len(), 2);
        // …so `a` is still the oldest and is evicted first.
        cache.insert("c".into(), entry(1));
        assert!(
            cache.get("a", 1).is_none(),
            "refresh must not reset FIFO age"
        );
        assert!(cache.get("b", 0).is_some());
        assert!(cache.get("c", 1).is_some());
    }

    #[test]
    fn purge_reclaims_dead_epoch_entries_without_capacity_pressure() {
        let cache = PlanCache::new(64);
        for i in 0..8 {
            cache.insert(format!("old-{i}"), entry(0));
        }
        cache.insert("live".into(), entry(1));
        assert_eq!(cache.len(), 9, "far below capacity: FIFO would keep all");

        // The stats-epoch bump reclaims every dead-epoch entry eagerly —
        // no lookups, no capacity pressure required.
        assert_eq!(cache.purge_stale(1), 8);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.purged(), 8);
        assert!(cache.get("live", 1).is_some(), "current-epoch entry kept");
        assert!(cache.get("old-0", 1).is_none());

        // The FIFO order queue shrank with the map: filling the cache to
        // capacity now evicts live shapes only when genuinely full.
        assert_eq!(cache.purge_stale(1), 0, "idempotent");
        for i in 0..63 {
            cache.insert(format!("new-{i}"), entry(1));
        }
        assert_eq!(cache.len(), 64);
        assert!(cache.get("live", 1).is_some(), "no ghost-order evictions");
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let cache = PlanCache::new(64);
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..50 {
                        let key = format!("shape-{}", (t + i) % 8);
                        if cache.get(&key, 0).is_none() {
                            cache.insert(key, entry(0));
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= 8);
        assert!(cache.hits() + cache.misses() == 200);
    }
}
