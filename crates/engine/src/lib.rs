//! # `si-engine` — concurrent query serving over bounded plans
//!
//! The paper's bounded-evaluation guarantee (*"On Scale Independence for
//! Querying Big Data"*, Fan, Geerts, Libkin, PODS 2014) says a controlled
//! query answers by fetching a small, data-independent fraction of `D`.
//! This crate turns that guarantee into *throughput*: if each request
//! touches a bounded handful of tuples, many requests can be served
//! concurrently from shared, immutable snapshots — and requests whose bound
//! is too large can be refused up front.
//!
//! A request travels **admit → plan-cache → snapshot → execute → merge**:
//!
//! 1. **Admission control** — the query is canonicalized
//!    ([`shape`]) and planned (or fetched from the plan cache); a plan whose
//!    worst-case fetch count exceeds [`EngineConfig::fetch_budget`] is
//!    rejected ([`EngineError::RejectedByBudget`]) before touching data, and
//!    submissions beyond [`EngineConfig::max_queue`] are shed
//!    ([`EngineError::Overloaded`]).
//! 2. **Prepared plans** — [`cache::PlanCache`] keys
//!    [`CostBasedPlanner`](si_core::CostBasedPlanner) output by
//!    (query shape, statistics epoch); commits that drift the statistics
//!    past [`EngineConfig::stats_drift_threshold`] bump the epoch and plans
//!    re-rank lazily.  On top of it, [`materialize::MaterializedSet`] keeps
//!    the *answers* of hot (shape, parameter values) pairs and
//!    [`Engine::commit`] **maintains** them by bounded delta propagation
//!    instead of invalidating them — a repeated hot request after a small
//!    commit is served with zero base-data accesses
//!    (enable via [`EngineConfig::materialize_capacity`]).
//! 3. **Snapshot isolation** — every execution pins an epoch-versioned
//!    [`DatabaseSnapshot`]; a single writer
//!    commits [`Delta`]s copy-on-write at relation granularity
//!    ([`si_data::SnapshotStore`]), so readers never block and never see a
//!    torn instance.  With [`Engine::new_sharded`] the store is
//!    **hash-partitioned** ([`si_data::ShardedSnapshotStore`]): commits
//!    split by route under one coherent global epoch, executions plan once
//!    against exact global statistics and scatter-gather through
//!    [`si_access::ShardedAccess`] (partition-column probes route to a
//!    single shard, everything else fans out in shard order), and answers,
//!    epochs and access accounting stay identical to the unsharded engine.
//! 4. **Parallel bounded execution** — a fixed worker pool (hand-rolled
//!    on `std::thread` + mpsc) serves requests concurrently;
//!    within a request, [`execute_bounded_partitioned`](si_core) can fan the
//!    first fetch's surviving rows out morsel-style
//!    ([`EngineConfig::shards_per_query`]) with per-worker
//!    [`AccessMeter`]s aggregated into the engine's
//!    [`SharedMeter`].
//!
//! ```
//! use si_engine::{Engine, EngineConfig, Request};
//! use si_workload::{SocialConfig, SocialGenerator};
//! use si_data::Value;
//!
//! let db = SocialGenerator::new(SocialConfig::with_persons(200)).generate();
//! let access = si_workload::serving_access_schema(5000);
//! let engine = Engine::new(db, access, EngineConfig::default()).unwrap();
//!
//! let request = Request::new(si_workload::q1(), vec!["p".into()], vec![Value::int(7)]);
//! let first = engine.execute(&request).unwrap();
//! let second = engine.execute(&request).unwrap();
//! assert!(!first.cache_hit && second.cache_hit);
//! assert_eq!(first.answers, second.answers);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod commit_queue;
pub mod error;
pub mod materialize;
mod pool;
pub mod replica;
pub mod shape;
pub mod subscribe;
mod telemetry;

pub use cache::{CachedPlan, PlanCache};
pub use commit_queue::CommitTicket;
pub use error::EngineError;
pub use materialize::{
    AnswerChange, MaintenanceSummary, MaterializedAnswer, MaterializedKey, MaterializedSet, PinSet,
};
pub use replica::{ReplicaClient, ReplicaSet, ReplicaStatus, ShardReplica, WireProber};
pub use shape::{canonicalize, CanonicalQuery, ShapeKey};
pub use si_telemetry::{
    BatchMembership, CommitSpan, Phase, PhaseTimings, Provenance, RequestTrace, TelemetryRegistry,
};
pub use subscribe::{AnswerUpdate, ChangeSet, ObservableQuery, SubscriptionRegistry};

use si_access::{AccessError, AccessSchema, ShardedAccess, SnapshotAccess};
use si_core::bounded::{
    execute_bounded, execute_bounded_partitioned, execute_bounded_partitioned_traced,
    execute_bounded_traced, fetch_bounded, SharedFetch,
};
use si_core::{
    maintenance_is_bounded, BoundedPlan, CoreError, ExecPhase, IncrementalBoundedEvaluator,
    TraceSink,
};
use si_data::{
    AccessMeter, Database, DatabaseSchema, DatabaseSnapshot, DatabaseStats, Delta, DeltaBase,
    DeltaBatch, MeterSink, MeterSnapshot, PartitionMap, ShardStats, ShardedSnapshotStore,
    ShardedSnapshotView, SharedMeter, SnapshotStore, Tuple, Value,
};
use si_durability::{Checkpoint, CheckpointBackend, DurabilityConfig, DurabilityError, Wal};
use si_query::{ConjunctiveQuery, Var};
use si_telemetry::{PhaseClock, Sample};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::{Duration, Instant};
use telemetry::EngineTelemetry;

/// Convenience result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Tuning knobs of the serving engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Worker threads in the serving pool (≥ 1); requests submitted through
    /// [`Engine::submit`] are executed by these threads.
    pub workers: usize,
    /// Morsel width *within* one execution: the first fetch's surviving rows
    /// are split across this many threads (1 = stay on the serving thread,
    /// which is right for short bounded plans).
    pub shards_per_query: usize,
    /// Admission budget: reject any request whose cheapest bounded plan has
    /// a worst-case fetch count above this (`None` = admit everything
    /// plannable).
    pub fetch_budget: Option<u64>,
    /// Load-shedding bound on requests queued in the pool (0 = unbounded).
    pub max_queue: usize,
    /// Re-collect statistics (and invalidate cached plans) when some
    /// relation's row count drifts by more than this fraction since the last
    /// collection.
    pub stats_drift_threshold: f64,
    /// Maximum number of cached plan shapes.
    pub plan_cache_capacity: usize,
    /// Maximum number of materialized (shape, parameter values) answers that
    /// are *maintained* across commits instead of re-executed
    /// (see [`materialize::MaterializedSet`]).  `0` disables the layer — the
    /// default, because materialization trades write-path maintenance work
    /// for read-path savings, which only pays on workloads with repeated hot
    /// requests.
    pub materialize_capacity: usize,
    /// Admission threshold of the materialized layer: a (shape, values) pair
    /// is materialized once it has been executed this many times (`1` =
    /// every executed request is materialized).
    pub materialize_after: u64,
    /// Most deltas the group committer coalesces into one commit pass (≥ 1).
    /// Only [`Engine::commit_async`] goes through the committer;
    /// [`Engine::commit`] stays a synchronous group of one.
    pub commit_batch_max: usize,
    /// How long the group committer waits for more queued deltas after the
    /// first one arrives, before it commits what it has gathered
    /// (`Duration::ZERO` = coalesce only what is already queued).
    pub commit_linger: Duration,
    /// Serve pool submissions through [`Engine::execute_batch`]: each worker
    /// drains the requests already queued behind the one it dequeued and
    /// groups identical (shape, parameter values) pairs onto one shared
    /// fetch.  Off by default — answers are identical either way, this knob
    /// only changes how the fetch cost is spent.
    pub batch_requests: bool,
    /// Durability policy for engines built with [`Engine::new_durable`],
    /// [`Engine::new_sharded_durable`] or [`Engine::recover`]: every commit
    /// pass appends one epoch-stamped record to a write-ahead log **before**
    /// the in-memory store applies it (fsync-on-commit; an async commit
    /// storm folds into one record and pays one fsync), and checkpoints
    /// truncate the log per the policy.  Ignored — no logging — on engines
    /// built with [`Engine::new`] / [`Engine::new_sharded`], which take no
    /// storage.  `None` here makes the durable constructors use
    /// [`DurabilityConfig::default`].
    pub durability: Option<DurabilityConfig>,
    /// Build a full [`RequestTrace`] (inline phase timings, provenance, cost
    /// accounting) for every `N`th served request; `0` — the default —
    /// disables tracing entirely, leaving the serve path one sampler branch
    /// away from trace-free (requests that cross
    /// [`EngineConfig::slow_threshold`] still get a post-hoc trace, and a
    /// request built with [`Request::with_trace`] is always traced).
    /// Sampled and slow traces feed the registry's slow-query log.
    pub trace_sample_every: u64,
    /// Worst-K capacity (per axis: latency, tuples fetched) of the slow-query
    /// log behind [`Engine::telemetry`]; `0` disables the log.
    pub slow_log_capacity: usize,
    /// Service time at or above this marks a request slow: its trace is
    /// flagged `slow` and offered to the slow log even when unsampled.
    pub slow_threshold: Duration,
    /// Bounded per-subscriber update queue depth for
    /// [`Engine::subscribe`] (≥ 1).  A subscriber whose queue is full does
    /// **not** block the committer: the queue is collapsed into a single
    /// [`AnswerUpdate::Resync`] carrying the current full answer
    /// (drop-to-resync backpressure).
    pub subscriber_queue_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            shards_per_query: 1,
            fetch_budget: None,
            max_queue: 1024,
            stats_drift_threshold: 0.2,
            plan_cache_capacity: 256,
            materialize_capacity: 0,
            materialize_after: 2,
            commit_batch_max: 64,
            commit_linger: Duration::ZERO,
            batch_requests: false,
            durability: None,
            trace_sample_every: 0,
            slow_log_capacity: 32,
            slow_threshold: Duration::from_millis(50),
            subscriber_queue_capacity: 64,
        }
    }
}

/// One prepared-query request: the query template, its parameter variables,
/// and this invocation's parameter values (one per parameter, in order).
#[derive(Debug, Clone)]
pub struct Request {
    /// The conjunctive query template.
    pub query: ConjunctiveQuery,
    /// The parameter variables bound at execution time (the paper's `x̄`).
    pub parameters: Vec<Var>,
    /// The values for `parameters`, in order.
    pub values: Vec<Value>,
    /// Opt-in tracing: when true this request is always traced — regardless
    /// of [`EngineConfig::trace_sample_every`] — and its [`RequestTrace`]
    /// comes back on [`QueryResponse::trace`].
    pub trace: bool,
}

impl Request {
    /// Bundles a request.
    pub fn new(query: ConjunctiveQuery, parameters: Vec<Var>, values: Vec<Value>) -> Self {
        Request {
            query,
            parameters,
            values,
            trace: false,
        }
    }

    /// Asks the engine to trace this request and attach the trace to the
    /// response (builder style).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }
}

/// The storage behind an engine: one snapshot store, or `N` hash-partitioned
/// ones behind a routing function (see [`Engine::new_sharded`]).
#[derive(Debug)]
enum Backend {
    Single(SnapshotStore),
    Sharded(ShardedSnapshotStore),
}

impl Backend {
    fn pin(&self) -> EngineSnapshot {
        match self {
            Backend::Single(store) => EngineSnapshot::Single(store.pin()),
            Backend::Sharded(store) => EngineSnapshot::Sharded(store.pin()),
        }
    }

    fn epoch(&self) -> u64 {
        match self {
            Backend::Single(store) => store.epoch(),
            Backend::Sharded(store) => store.epoch(),
        }
    }

    fn pins(&self) -> u64 {
        match self {
            Backend::Single(store) => store.pins(),
            Backend::Sharded(store) => store.pins(),
        }
    }

    fn commit(&self, delta: &Delta) -> si_data::Result<EngineSnapshot> {
        match self {
            Backend::Single(store) => store.commit(delta).map(EngineSnapshot::Single),
            Backend::Sharded(store) => store.commit(delta).map(EngineSnapshot::Sharded),
        }
    }
}

/// A pinned engine version: the reader side of snapshot isolation, uniform
/// over single-store and sharded engines.
///
/// Obtained from [`Engine::snapshot`]; hold it and every
/// [`Engine::execute_at`] sees exactly this version, no matter how many
/// commits happen meanwhile.  Cloning is an `Arc` bump.
#[derive(Debug, Clone)]
pub enum EngineSnapshot {
    /// A pinned version of a single snapshot store.
    Single(Arc<DatabaseSnapshot>),
    /// A coherent pinned view across every shard of a sharded store.
    Sharded(Arc<ShardedSnapshotView>),
}

impl EngineSnapshot {
    /// The snapshot epoch (for sharded engines, the common global epoch).
    pub fn epoch(&self) -> u64 {
        match self {
            EngineSnapshot::Single(snap) => snap.epoch(),
            EngineSnapshot::Sharded(view) => view.epoch(),
        }
    }

    /// Number of data shards in this version (1 for single-store engines) —
    /// the uniform way to inspect layout, instead of matching the variants.
    pub fn shard_count(&self) -> usize {
        match self {
            EngineSnapshot::Single(_) => 1,
            EngineSnapshot::Sharded(view) => view.shard_count(),
        }
    }

    /// Per-shard epochs, in shard order.  Every shard commits on every
    /// global commit, so each entry equals [`EngineSnapshot::epoch`] — the
    /// coherence invariant the sharded recovery tests pin.  Single-store
    /// versions report one entry.
    pub fn shard_epochs(&self) -> Vec<u64> {
        match self {
            EngineSnapshot::Single(snap) => vec![snap.epoch()],
            EngineSnapshot::Sharded(view) => view.shards().iter().map(|s| s.epoch()).collect(),
        }
    }

    /// The database schema.
    pub fn schema(&self) -> &DatabaseSchema {
        match self {
            EngineSnapshot::Single(snap) => snap.schema(),
            EngineSnapshot::Sharded(view) => view.schema(),
        }
    }

    /// Total number of tuples, `|D|` of this version.
    pub fn size(&self) -> usize {
        match self {
            EngineSnapshot::Single(snap) => snap.size(),
            EngineSnapshot::Sharded(view) => view.size(),
        }
    }

    /// Collects statistics for this version.  For sharded engines these are
    /// the exact *global* statistics (identical to unsharded collection), so
    /// plans ranked against them are shard-count-independent.
    pub fn statistics(&self) -> DatabaseStats {
        match self {
            EngineSnapshot::Single(snap) => snap.statistics(),
            EngineSnapshot::Sharded(view) => view.statistics(),
        }
    }

    /// Materialises the version as one owned [`Database`] (for sharded
    /// engines, a shard-order merge).  Single-threaded cross-checks and
    /// tests only.
    pub fn to_database(&self) -> Database {
        match self {
            EngineSnapshot::Single(snap) => snap.to_database(),
            EngineSnapshot::Sharded(view) => view.to_database(),
        }
    }

    /// Live `(relation, row count)` pairs — the cheap drift signal.
    fn row_counts(&self) -> Vec<(String, usize)> {
        match self {
            EngineSnapshot::Single(snap) => snap
                .relations()
                .map(|r| (r.name().to_owned(), r.len()))
                .collect(),
            EngineSnapshot::Sharded(view) => view.row_counts(),
        }
    }
}

/// The answer to a served request, with its provenance.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The answer tuples (identical to single-threaded evaluation of the
    /// query on the pinned snapshot version).
    pub answers: Vec<Tuple>,
    /// Exact access cost of this execution (summed across shards).
    pub accesses: MeterSnapshot,
    /// The snapshot epoch the request executed against.
    pub epoch: u64,
    /// True when the plan came from the prepared-plan cache.
    pub cache_hit: bool,
    /// True when the answer was served from the materialized answer cache —
    /// zero base-data accesses, no plan consulted.
    pub materialized: bool,
    /// The plan's data-independent worst-case cost (what admission checked).
    pub static_cost: si_access::StaticCost,
    /// Wall-clock service time (planning + execution, excluding queueing).
    pub service: Duration,
    /// The request's flight record, present only when the request opted in
    /// via [`Request::with_trace`] (sampled traces go to the slow log, not
    /// here — responses stay allocation-free unless asked).
    pub trace: Option<Arc<RequestTrace>>,
}

/// A point-in-time view of the engine's counters.
///
/// # Consistency contract
///
/// The snapshot is **weakly consistent**: each counter is read with a relaxed
/// atomic load (or one short lock acquisition), with no global barrier across
/// them, so counters incremented at different points of an in-flight request
/// or commit may be observed mid-flight — e.g. `requests` can momentarily
/// exceed `cache_hits + cache_misses + materialized_hits + ` (rejections)
/// while a request sits between its admission bump and its cache lookup.
/// Each individual counter is exact (nothing is ever lost or double-counted),
/// and once the engine is quiescent — no in-flight requests or commits — the
/// snapshot is exact too, which is what tests should rely on.
///
/// Two reads are stronger than relaxed: `stats_epoch` and `snapshot_epoch`
/// are read **coherently** (the snapshot epoch is read while the statistics
/// lock is held), so this snapshot never shows a statistics epoch from a
/// commit whose snapshot epoch it missed: `stats_epoch` only advances, under
/// that lock, *after* the committed store epoch is visible.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineMetrics {
    /// Requests that entered `serve` (admitted or rejected there).
    pub requests: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses (including stats-epoch invalidations).
    pub cache_misses: u64,
    /// Requests rejected by the fetch-budget admission check.
    pub rejected_by_budget: u64,
    /// Submissions shed because the queue was full.
    pub shed_overload: u64,
    /// Deltas committed.
    pub commits: u64,
    /// Statistics re-collections triggered by drift.
    pub stats_refreshes: u64,
    /// Current statistics epoch.
    pub stats_epoch: u64,
    /// Current snapshot epoch.
    pub snapshot_epoch: u64,
    /// Total access counts merged from every served request.
    pub accesses: MeterSnapshot,
    /// Requests served from the materialized answer cache (zero accesses).
    pub materialized_hits: u64,
    /// Materialized answers currently admitted.
    pub materialized_entries: u64,
    /// Materialized answers maintained across commits by delta propagation.
    pub maintenance_runs: u64,
    /// Materialized answers dropped to the bounded-plan fallback (stale at
    /// the commit, gate-rejected, or maintenance errored).
    pub maintenance_fallbacks: u64,
    /// Materialized answers evicted (FIFO capacity + cost-based).
    pub materialized_evictions: u64,
    /// Total base-data accesses of the write-path maintenance work (kept
    /// separate from `accesses`, which counts the read path).
    pub maintenance_accesses: MeterSnapshot,
    /// Commit passes: each applied one (possibly merged) delta with one
    /// epoch bump, one maintenance pass and one drift probe.  A synchronous
    /// [`Engine::commit`] is a pass of one, so on an unbatched engine this
    /// equals `commits`.
    pub group_commits: u64,
    /// Deltas that shared a commit pass with at least one other delta (a
    /// pass merging `n ≥ 2` deltas adds `n`; passes of one add nothing).
    pub deltas_coalesced: u64,
    /// Requests served through a shared-fetch group of size ≥ 2 (every
    /// member counts, including those the materialized layer answered).
    pub batched_requests: u64,
    /// Fetch phases executed on behalf of a request group and shared by its
    /// members (charged once in `accesses`, attributed as per-response
    /// shares).
    pub shared_fetches: u64,
    /// Snapshot pins taken on the store so far — every pin is one
    /// lock-guarded version acquisition, so this counts the engine's
    /// lock-acquisition traffic on the storage layer.
    pub snapshot_pins: u64,
    /// WAL records appended (0 on non-durable engines).  Each record is one
    /// commit pass, so `wal_records < commits` measures group-commit
    /// amortization of the log itself.
    pub wal_records: u64,
    /// Storage fsyncs issued by the durability plane (0 on non-durable
    /// engines): one per WAL record plus one per checkpoint publish.
    pub wal_syncs: u64,
    /// Checkpoints written since this engine was built (the durable
    /// constructors' initial checkpoint counts; 0 on non-durable engines).
    pub checkpoints: u64,
    /// Requests currently admitted to the worker pool and not yet replied to
    /// (gauge; bounded by [`EngineConfig::max_queue`] when that is non-zero).
    pub queue_depth: u64,
    /// Requests currently inside the serve path (gauge).
    pub in_flight: u64,
    /// Request traces emitted so far: sampled, post-hoc slow, and opted-in.
    pub traces_emitted: u64,
    /// Live subscription handles (gauge).
    pub subscribers: u64,
    /// Answer updates currently queued across all subscribers (gauge).
    pub subscription_queue_depth: u64,
    /// Change-sets delivered to subscriber queues so far.
    pub subscription_deliveries: u64,
    /// Resync markers delivered so far (registration, maintenance drop,
    /// queue overflow, recovery re-seeding).
    pub subscription_resyncs: u64,
    /// Subscriber-queue overflows so far (each collapsed one queue into a
    /// single Resync).
    pub subscription_overflows: u64,
}

/// Statistics snapshot + the epoch the plan cache keys against.
#[derive(Debug)]
struct StatsEpoch {
    stats: Arc<si_data::DatabaseStats>,
    epoch: u64,
}

/// The durability plane of a durable engine: the WAL, the policy, and how
/// many commit passes have been logged since the last automatic checkpoint
/// decision.  Guarded by a mutex inside [`Shared`]; commits only touch it
/// under the commit lock, so the mutex is uncontended — it exists because
/// [`Wal`] appends through `&mut self` while [`Shared`] is shared by `&`.
#[derive(Debug)]
struct DurableState {
    wal: Wal,
    policy: DurabilityConfig,
    passes: u64,
}

/// Engine state shared between the public handle and the pool workers.
#[derive(Debug)]
pub(crate) struct Shared {
    config: EngineConfig,
    access: Arc<AccessSchema>,
    store: Backend,
    cache: PlanCache,
    materialized: MaterializedSet,
    /// Serialises [`Shared::commit`]s so that the base version pinned for
    /// answer maintenance is always the true predecessor of the committed
    /// version (the snapshot store's own writer mutex orders the swap, this
    /// mutex orders the maintenance around it).
    commit_lock: Mutex<()>,
    stats: RwLock<StatsEpoch>,
    meter: SharedMeter,
    maintenance_meter: SharedMeter,
    requests: AtomicU64,
    rejected_by_budget: AtomicU64,
    shed_overload: AtomicU64,
    commits: AtomicU64,
    stats_refreshes: AtomicU64,
    maintenance_runs: AtomicU64,
    maintenance_fallbacks: AtomicU64,
    group_commits: AtomicU64,
    deltas_coalesced: AtomicU64,
    batched_requests: AtomicU64,
    shared_fetches: AtomicU64,
    pub(crate) queued: AtomicUsize,
    /// `Some` on durable engines: commits log here *before* they apply.
    wal: Option<Mutex<DurableState>>,
    /// The observability plane: registry, histograms, sampler, gauges.
    telemetry: EngineTelemetry,
    /// The reactive plane: subscribed keys → bounded subscriber queues.
    /// `Arc`-shared with every [`ObservableQuery`] handle and, across
    /// [`Engine::recover_with_subscriptions`], with the recovered engine.
    subscriptions: Arc<SubscriptionRegistry>,
    /// The replication plane, created lazily by the first
    /// [`Engine::attach_replica`] (sharded engines only): per-shard wire
    /// clients, replay log, and the read-your-writes epoch wait.
    replication: RwLock<Option<Arc<ReplicaSet>>>,
}

impl Shared {
    /// Serves one request against the *current* snapshot.
    pub(crate) fn serve(&self, request: &Request) -> Result<QueryResponse> {
        self.serve_queued(request, 0)
    }

    /// [`Shared::serve`] for pool workers, carrying the measured queue wait
    /// into the request's trace.
    pub(crate) fn serve_queued(
        &self,
        request: &Request,
        queue_wait_nanos: u64,
    ) -> Result<QueryResponse> {
        // The sampling decision comes first so the snapshot pin itself is
        // inside the traced window (the `SnapshotPin` phase).
        let mut clock = (self.telemetry.sampler.hit() || request.trace).then(PhaseClock::new);
        let snapshot = self.store.pin();
        if let Some(c) = clock.as_mut() {
            c.mark(Phase::SnapshotPin);
        }
        self.serve_traced(&snapshot, request, clock, queue_wait_nanos)
    }

    /// Serves one request against a caller-pinned snapshot version (no pin
    /// taken, so a traced request charges 0 to the `SnapshotPin` phase).
    fn serve_at(&self, snapshot: &EngineSnapshot, request: &Request) -> Result<QueryResponse> {
        // A pinned version this store has *not* committed yet (a snapshot
        // from a different engine's future, or a replica running ahead) has
        // no data behind it here — refuse it with a typed error instead of
        // serving whatever the foreign Arc happens to hold.  Old pins stay
        // valid: their versions are retained by the Arc itself.
        if snapshot.epoch() > self.store.epoch() {
            return Err(EngineError::EpochUnavailable {
                requested: snapshot.epoch(),
                newest: self.store.epoch(),
            });
        }
        let clock = (self.telemetry.sampler.hit() || request.trace).then(PhaseClock::new);
        self.serve_traced(snapshot, request, clock, 0)
    }

    /// Serves one request through the replicated read path: pin the current
    /// version, wait until every replica acknowledges that epoch
    /// (read-your-writes), then execute the plan over the wire with
    /// [`ReplicatedAccess`] — the transport-backed mirror of the sharded
    /// serve path, with byte-identical accounting.
    pub(crate) fn serve_replicated(&self, request: &Request) -> Result<QueryResponse> {
        let start = Instant::now();
        let _in_flight = self.telemetry.enter();
        self.requests.fetch_add(1, Ordering::Relaxed);
        if request.values.len() != request.parameters.len() {
            return Err(EngineError::ParameterArity {
                expected: request.parameters.len(),
                actual: request.values.len(),
            });
        }
        let set = self
            .replication
            .read()
            .expect("replication lock poisoned")
            .clone()
            .ok_or_else(|| EngineError::Replication("no replicas attached".to_owned()))?;
        let mut clock = (self.telemetry.sampler.hit() || request.trace).then(PhaseClock::new);
        let snapshot = self.store.pin();
        let epoch = snapshot.epoch();
        // Read-your-writes: every commit this engine acknowledged is
        // visible to the replicas before any probe is routed to them.
        set.wait_read_your_writes(epoch)?;
        if let Some(c) = clock.as_mut() {
            c.mark(Phase::SnapshotPin);
        }
        let canonical = canonicalize(&request.query, &request.parameters);
        if let Some(c) = clock.as_mut() {
            c.mark(Phase::Admit);
        }
        let (cached, cache_hit) = self.plan_for(&snapshot, &canonical)?;
        if let Some(c) = clock.as_mut() {
            c.mark(Phase::PlanLookup);
        }
        let source = set.source_at(epoch)?;
        let result =
            execute_bounded(&cached.plan, &request.values, &source).map_err(|e| match e {
                CoreError::Access(AccessError::EpochUnavailable {
                    requested, newest, ..
                }) => EngineError::EpochUnavailable { requested, newest },
                other => EngineError::Core(other),
            })?;
        if let Some(c) = clock.as_mut() {
            c.skip();
        }
        self.meter.merge(&result.accesses);
        let trace = self.finish_request(
            clock,
            start,
            0,
            request.trace,
            TraceFacts {
                shape: &canonical.key,
                epoch,
                provenance: Provenance::Planned { cache_hit },
                estimated_tuples: cached.estimated_tuples,
                fetched_tuples: result.accesses.tuples_fetched,
                answers: result.answers.len() as u64,
                routed_fetches: source.routed_fetches(),
                fanned_fetches: source.fanned_fetches(),
                batch: None,
            },
        );
        Ok(QueryResponse {
            answers: result.answers,
            accesses: result.accesses,
            epoch,
            cache_hit,
            materialized: false,
            static_cost: cached.plan.static_cost(),
            service: start.elapsed(),
            trace,
        })
    }

    /// The serve path proper: admit → plan-cache → execute → merge, with the
    /// optional phase clock threaded through every stage.
    fn serve_traced(
        &self,
        snapshot: &EngineSnapshot,
        request: &Request,
        mut clock: Option<PhaseClock>,
        queue_wait_nanos: u64,
    ) -> Result<QueryResponse> {
        let start = Instant::now();
        let _in_flight = self.telemetry.enter();
        self.requests.fetch_add(1, Ordering::Relaxed);
        if request.values.len() != request.parameters.len() {
            return Err(EngineError::ParameterArity {
                expected: request.parameters.len(),
                actual: request.values.len(),
            });
        }
        let canonical = canonicalize(&request.query, &request.parameters);
        if let Some(c) = clock.as_mut() {
            c.mark(Phase::Admit);
        }

        // Materialized fast path: maintained answers exact for the pinned
        // version are served with zero base-data accesses.  The key is built
        // once and reused by the post-execution `record` below.
        let mut materialized_key = (!self.materialized.is_disabled())
            .then(|| (canonical.key.clone(), request.values.clone()));
        if let Some(key) = &materialized_key {
            if let Some(hit) = self.materialized.get(key, snapshot.epoch()) {
                // Same defensive admission re-check as the plan cache: the
                // answers were admitted when their plan was, but the check is
                // two integer compares.
                if let Some(budget) = self.config.fetch_budget {
                    let cheapest = hit.static_cost.max_tuples;
                    if cheapest > budget {
                        self.rejected_by_budget.fetch_add(1, Ordering::Relaxed);
                        return Err(EngineError::RejectedByBudget { budget, cheapest });
                    }
                }
                if let Some(c) = clock.as_mut() {
                    c.mark(Phase::PlanLookup);
                }
                let static_cost = hit.static_cost;
                let answers = hit.into_answers();
                let trace = self.finish_request(
                    clock,
                    start,
                    queue_wait_nanos,
                    request.trace,
                    TraceFacts {
                        shape: &canonical.key,
                        epoch: snapshot.epoch(),
                        provenance: Provenance::Materialized,
                        estimated_tuples: 0.0,
                        fetched_tuples: 0,
                        answers: answers.len() as u64,
                        routed_fetches: 0,
                        fanned_fetches: 0,
                        batch: None,
                    },
                );
                return Ok(QueryResponse {
                    answers,
                    accesses: MeterSnapshot::default(),
                    epoch: snapshot.epoch(),
                    cache_hit: false,
                    materialized: true,
                    static_cost,
                    service: start.elapsed(),
                    trace,
                });
            }
        }

        // Admit + plan (possibly from cache).
        let (cached, cache_hit) = self.plan_for(snapshot, &canonical)?;
        if let Some(c) = clock.as_mut() {
            c.mark(Phase::PlanLookup);
        }

        // Execute on the pinned version — scatter-gather across data shards
        // through `ShardedAccess` on sharded backends, morsel-parallel when
        // configured (both compose: each morsel worker forks a sharded
        // source over the same pinned shard vector).  With a clock attached,
        // the traced executor variants report the fetch/finalize split
        // through the `TraceSink` hook; the plain variants stay byte-for-byte
        // the untraced hot path.
        let mut routed_fetches = 0u64;
        let mut fanned_fetches = 0u64;
        let result = match snapshot {
            EngineSnapshot::Single(snap) => {
                if self.config.shards_per_query > 1 {
                    let make = || {
                        SnapshotAccess::<AccessMeter>::new(
                            Arc::clone(snap),
                            Arc::clone(&self.access),
                        )
                    };
                    match clock.as_mut() {
                        Some(c) => {
                            let mut sink = ClockSink(c);
                            execute_bounded_partitioned_traced(
                                &cached.plan,
                                &request.values,
                                make,
                                self.config.shards_per_query,
                                &mut sink,
                            )?
                        }
                        None => execute_bounded_partitioned(
                            &cached.plan,
                            &request.values,
                            make,
                            self.config.shards_per_query,
                        )?,
                    }
                } else {
                    let view = SnapshotAccess::<AccessMeter>::new(
                        Arc::clone(snap),
                        Arc::clone(&self.access),
                    );
                    match clock.as_mut() {
                        Some(c) => {
                            let mut sink = ClockSink(c);
                            execute_bounded_traced(&cached.plan, &request.values, &view, &mut sink)?
                        }
                        None => execute_bounded(&cached.plan, &request.values, &view)?,
                    }
                }
            }
            EngineSnapshot::Sharded(view) => {
                if self.config.shards_per_query > 1 {
                    let make = || {
                        ShardedAccess::<AccessMeter>::new(
                            Arc::clone(view),
                            Arc::clone(&self.access),
                        )
                    };
                    match clock.as_mut() {
                        Some(c) => {
                            let mut sink = ClockSink(c);
                            execute_bounded_partitioned_traced(
                                &cached.plan,
                                &request.values,
                                make,
                                self.config.shards_per_query,
                                &mut sink,
                            )?
                        }
                        None => execute_bounded_partitioned(
                            &cached.plan,
                            &request.values,
                            make,
                            self.config.shards_per_query,
                        )?,
                    }
                } else {
                    let source = ShardedAccess::<AccessMeter>::new(
                        Arc::clone(view),
                        Arc::clone(&self.access),
                    );
                    let result = match clock.as_mut() {
                        Some(c) => {
                            let mut sink = ClockSink(c);
                            execute_bounded_traced(
                                &cached.plan,
                                &request.values,
                                &source,
                                &mut sink,
                            )?
                        }
                        None => execute_bounded(&cached.plan, &request.values, &source)?,
                    };
                    // Per-request routing split (the morsel path forks one
                    // source per worker, so only the single-threaded path
                    // reports it).
                    routed_fetches = source.routed_fetches();
                    fanned_fetches = source.fanned_fetches();
                    result
                }
            }
        };
        if let Some(c) = clock.as_mut() {
            // Execution time was charged to Fetch/Finalize by the sink;
            // re-base the stopwatch so the executor interval is not charged
            // twice.
            c.skip();
        }

        // Merge this request's access counts into the engine meter (four
        // atomic adds — the fetch loops themselves charged Cell meters).
        self.meter.merge(&result.accesses);

        // Offer the executed answers to the materialized layer: counted
        // towards hotness, admitted at the threshold, maintained from the
        // next commit on.  Reads of explicitly pinned *old* versions are not
        // offered — materialization tracks the current version (if a commit
        // races this check, the stale-entry drop at the next maintenance
        // pass cleans up).
        if let Some(key) = materialized_key.take() {
            if snapshot.epoch() == self.store.epoch() {
                self.materialized.record(
                    key,
                    &canonical.query,
                    &canonical.parameters,
                    &result.answers,
                    snapshot.epoch(),
                    cached.stats_epoch,
                    cached.plan.static_cost(),
                    result.accesses,
                );
            }
        }

        let trace = self.finish_request(
            clock,
            start,
            queue_wait_nanos,
            request.trace,
            TraceFacts {
                shape: &canonical.key,
                epoch: snapshot.epoch(),
                provenance: Provenance::Planned { cache_hit },
                estimated_tuples: cached.estimated_tuples,
                fetched_tuples: result.accesses.tuples_fetched,
                answers: result.answers.len() as u64,
                routed_fetches,
                fanned_fetches,
                batch: None,
            },
        );
        Ok(QueryResponse {
            answers: result.answers,
            accesses: result.accesses,
            epoch: snapshot.epoch(),
            cache_hit,
            materialized: false,
            static_cost: cached.plan.static_cost(),
            service: start.elapsed(),
            trace,
        })
    }

    /// Finishes a served request's observability work: records the serve
    /// latency histogram and — for sampled, slow, or opted-in requests —
    /// builds and emits the [`RequestTrace`].  Returns the trace only when
    /// the request opted in.
    fn finish_request(
        &self,
        clock: Option<PhaseClock>,
        start: Instant,
        queue_wait_nanos: u64,
        opt_in: bool,
        facts: TraceFacts<'_>,
    ) -> Option<Arc<RequestTrace>> {
        let service_nanos = nanos_of(start.elapsed());
        self.telemetry.serve.record(service_nanos);
        let slow = self.telemetry.is_slow(service_nanos);
        let (phases, phases_recorded, total_nanos) = match clock {
            Some(mut c) => {
                c.mark(Phase::Reply);
                (c.timings(), true, c.total_nanos())
            }
            // Unsampled requests get a post-hoc trace only when slow; the
            // phase array stays zeroed.
            None if slow => (PhaseTimings::default(), false, service_nanos),
            None => return None,
        };
        let trace = self.telemetry.emit(RequestTrace {
            shape: facts.shape.clone(),
            epoch: facts.epoch,
            phases,
            phases_recorded,
            total_nanos,
            queue_wait_nanos,
            provenance: facts.provenance,
            estimated_tuples: facts.estimated_tuples,
            fetched_tuples: facts.fetched_tuples,
            answers: facts.answers,
            routed_fetches: facts.routed_fetches,
            fanned_fetches: facts.fanned_fetches,
            batch: facts.batch,
            slow,
        });
        opt_in.then_some(trace)
    }

    /// Plan-cache lookup with admission control; plans on miss.
    fn plan_for(
        &self,
        snapshot: &EngineSnapshot,
        canonical: &CanonicalQuery,
    ) -> Result<(CachedPlan, bool)> {
        let (stats, stats_epoch) = {
            let guard = self.stats.read().expect("stats lock poisoned");
            (Arc::clone(&guard.stats), guard.epoch)
        };

        if let Some(hit) = self.cache.get(&canonical.key, stats_epoch) {
            // Defensive re-check: every cached plan was admitted when it was
            // planned, but the check is two integer compares.
            if let Some(budget) = self.config.fetch_budget {
                let cheapest = hit.plan.static_cost().max_tuples;
                if cheapest > budget {
                    self.rejected_by_budget.fetch_add(1, Ordering::Relaxed);
                    return Err(EngineError::RejectedByBudget { budget, cheapest });
                }
            }
            return Ok((hit, true));
        }

        let planner = si_core::CostBasedPlanner::new(snapshot.schema(), &self.access, &stats);
        let costed = planner
            .plan_costed(
                &canonical.query,
                &canonical.parameters,
                self.config.fetch_budget,
            )
            .map_err(|e| match e {
                CoreError::FetchBudgetExceeded { budget, cheapest } => {
                    self.rejected_by_budget.fetch_add(1, Ordering::Relaxed);
                    EngineError::RejectedByBudget { budget, cheapest }
                }
                other => EngineError::Core(other),
            })?;
        let cached = CachedPlan {
            plan: Arc::new(costed.plan),
            stats_epoch,
            estimated_tuples: costed.estimated_tuples,
        };
        self.cache.insert(canonical.key.clone(), cached.clone());
        Ok((cached, false))
    }

    /// Runs the fetch phase of `plan` once against the pinned version (the
    /// shared half of a request group's execution; see
    /// [`fetch_bounded`]).
    fn fetch_for(
        &self,
        snapshot: &EngineSnapshot,
        plan: &BoundedPlan,
        values: &[Value],
    ) -> std::result::Result<SharedFetch, CoreError> {
        match snapshot {
            EngineSnapshot::Single(snap) => {
                let view =
                    SnapshotAccess::<AccessMeter>::new(Arc::clone(snap), Arc::clone(&self.access));
                fetch_bounded(plan, values, &view)
            }
            EngineSnapshot::Sharded(view) => {
                let source =
                    ShardedAccess::<AccessMeter>::new(Arc::clone(view), Arc::clone(&self.access));
                fetch_bounded(plan, values, &source)
            }
        }
    }

    /// Serves a slice of requests against one pinned current version,
    /// sharing the fetch phase among requests with identical canonical shape
    /// and parameter values (see [`Engine::execute_batch`]).
    pub(crate) fn serve_batch(&self, requests: &[Request]) -> Vec<Result<QueryResponse>> {
        let snapshot = self.store.pin();
        self.serve_batch_at(&snapshot, requests)
    }

    /// [`Shared::serve_batch`] against a caller-pinned version.
    fn serve_batch_at(
        &self,
        snapshot: &EngineSnapshot,
        requests: &[Request],
    ) -> Vec<Result<QueryResponse>> {
        // Group by (canonical shape, parameter values) in first-appearance
        // order.  Only the shape key and the values matter: alpha-renamed
        // requests canonicalize identically, so they share a fetch too.
        let mut out: Vec<Option<Result<QueryResponse>>> = requests.iter().map(|_| None).collect();
        let mut groups: Vec<(CanonicalQuery, Vec<usize>)> = Vec::new();
        let mut by_key: HashMap<(ShapeKey, Vec<Value>), usize> = HashMap::new();
        for (i, request) in requests.iter().enumerate() {
            if request.values.len() != request.parameters.len() {
                self.requests.fetch_add(1, Ordering::Relaxed);
                out[i] = Some(Err(EngineError::ParameterArity {
                    expected: request.parameters.len(),
                    actual: request.values.len(),
                }));
                continue;
            }
            let canonical = canonicalize(&request.query, &request.parameters);
            let key = (canonical.key.clone(), request.values.clone());
            match by_key.get(&key) {
                Some(&g) => groups[g].1.push(i),
                None => {
                    by_key.insert(key, groups.len());
                    groups.push((canonical, vec![i]));
                }
            }
        }
        for (canonical, members) in &groups {
            if let [lone] = members.as_slice() {
                // A group of one is exactly an unbatched request; the plain
                // path keeps its accounting (and morsel parallelism).
                out[*lone] = Some(self.serve_at(snapshot, &requests[*lone]));
                continue;
            }
            let values = &requests[members[0]].values;
            let opt_in: Vec<bool> = members.iter().map(|&m| requests[m].trace).collect();
            let responses = self.serve_group(snapshot, canonical, values, &opt_in);
            for (member, response) in members.iter().zip(responses) {
                out[*member] = Some(response);
            }
        }
        out.into_iter()
            .map(|response| response.expect("every grouped request was answered"))
            .collect()
    }

    /// Serves `count` requests that share one (canonical shape, values) pair
    /// against one pinned version, executing the fetch phase at most once.
    ///
    /// Members are processed **sequentially**, each taking the same
    /// materialized-fast-path / plan-cache / record steps as
    /// [`Shared::serve_at`] — so hotness counters, admissions, cache-hit
    /// flags and materialized-hit counts are exactly what an unbatched
    /// engine serving the same sequence would produce.  The only difference
    /// is *where* the fetch cost goes: the first member that needs base data
    /// runs [`fetch_bounded`] once, later members finalise from the shared
    /// slice with zero marginal accesses.  The engine meter is charged the
    /// fetch cost once; each sharing response reports an attributed share
    /// `C/k` (remainder on the first), so response shares still sum to the
    /// true global cost.
    fn serve_group(
        &self,
        snapshot: &EngineSnapshot,
        canonical: &CanonicalQuery,
        values: &[Value],
        opt_in: &[bool],
    ) -> Vec<Result<QueryResponse>> {
        let count = opt_in.len();
        self.batched_requests
            .fetch_add(count as u64, Ordering::Relaxed);
        let mut out: Vec<Result<QueryResponse>> = Vec::with_capacity(count);
        let mut fetch: Option<(SharedFetch, Arc<BoundedPlan>)> = None;
        // One entry per executed fetch: its cost and the response positions
        // that shared it.  (More than one generation only happens when a
        // racing stats refresh swaps the cached plan mid-group.)
        let mut generations: Vec<(MeterSnapshot, Vec<usize>)> = Vec::new();
        // Traced members park their timings here until the attribution loop
        // below fixes the fetched-tuple counts; traces are emitted after it
        // so they report exactly what the response meter does.
        let mut pending: Vec<GroupTrace> = Vec::new();
        for &wants_trace in opt_in {
            let start = Instant::now();
            let _in_flight = self.telemetry.enter();
            let mut clock = (self.telemetry.sampler.hit() || wants_trace).then(PhaseClock::new);
            self.requests.fetch_add(1, Ordering::Relaxed);

            // Materialized fast path, identical to `serve_at`.
            let mut materialized_key = (!self.materialized.is_disabled())
                .then(|| (canonical.key.clone(), values.to_vec()));
            if let Some(key) = &materialized_key {
                if let Some(hit) = self.materialized.get(key, snapshot.epoch()) {
                    if let Some(budget) = self.config.fetch_budget {
                        let cheapest = hit.static_cost.max_tuples;
                        if cheapest > budget {
                            self.rejected_by_budget.fetch_add(1, Ordering::Relaxed);
                            out.push(Err(EngineError::RejectedByBudget { budget, cheapest }));
                            continue;
                        }
                    }
                    if let Some(c) = clock.as_mut() {
                        c.mark(Phase::PlanLookup);
                    }
                    let static_cost = hit.static_cost;
                    let answers = hit.into_answers();
                    Self::park_group_trace(
                        &mut pending,
                        out.len(),
                        clock,
                        start,
                        wants_trace,
                        Provenance::Materialized,
                        0.0,
                        answers.len() as u64,
                        &self.telemetry,
                    );
                    out.push(Ok(QueryResponse {
                        answers,
                        accesses: MeterSnapshot::default(),
                        epoch: snapshot.epoch(),
                        cache_hit: false,
                        materialized: true,
                        static_cost,
                        service: start.elapsed(),
                        trace: None,
                    }));
                    continue;
                }
            }

            let (cached, cache_hit) = match self.plan_for(snapshot, canonical) {
                Ok(planned) => planned,
                Err(e) => {
                    out.push(Err(e));
                    continue;
                }
            };
            if let Some(c) = clock.as_mut() {
                c.mark(Phase::PlanLookup);
            }
            let reusable = fetch
                .as_ref()
                .is_some_and(|(_, plan)| Arc::ptr_eq(plan, &cached.plan));
            if !reusable {
                match self.fetch_for(snapshot, &cached.plan, values) {
                    Ok(shared) => {
                        self.meter.merge(&shared.accesses());
                        self.shared_fetches.fetch_add(1, Ordering::Relaxed);
                        generations.push((shared.accesses(), Vec::new()));
                        fetch = Some((shared, Arc::clone(&cached.plan)));
                    }
                    Err(e) => {
                        out.push(Err(e.into()));
                        continue;
                    }
                }
                if let Some(c) = clock.as_mut() {
                    c.mark(Phase::Fetch);
                }
            }
            let (shared, _) = fetch.as_ref().expect("shared fetch installed above");
            let result = match shared.finalize_one(&cached.plan) {
                Ok(answer) => answer,
                Err(e) => {
                    out.push(Err(e.into()));
                    continue;
                }
            };
            if let Some(c) = clock.as_mut() {
                c.mark(Phase::Finalize);
            }

            // Offer to the materialized layer with the *full* fetch cost as
            // the re-execution cost — what a lone execution would measure.
            if let Some(key) = materialized_key.take() {
                if snapshot.epoch() == self.store.epoch() {
                    self.materialized.record(
                        key,
                        &canonical.query,
                        &canonical.parameters,
                        &result.answers,
                        snapshot.epoch(),
                        cached.stats_epoch,
                        cached.plan.static_cost(),
                        shared.accesses(),
                    );
                }
            }

            generations
                .last_mut()
                .expect("a generation exists once a fetch ran")
                .1
                .push(out.len());
            Self::park_group_trace(
                &mut pending,
                out.len(),
                clock,
                start,
                wants_trace,
                Provenance::Planned { cache_hit },
                cached.estimated_tuples,
                result.answers.len() as u64,
                &self.telemetry,
            );
            out.push(Ok(QueryResponse {
                answers: result.answers,
                accesses: MeterSnapshot::default(), // attributed below
                epoch: snapshot.epoch(),
                cache_hit,
                materialized: false,
                static_cost: cached.plan.static_cost(),
                service: start.elapsed(),
                trace: None,
            }));
        }

        // Exact attribution: each fetch was charged to the engine meter
        // once; its sharers report `C/k` each with the remainder on the
        // first, so per-response shares sum to exactly `C`.
        for (cost, sharers) in &generations {
            let k = sharers.len() as u64;
            for (rank, &position) in sharers.iter().enumerate() {
                if let Ok(response) = &mut out[position] {
                    response.accesses = share_of(cost, k, rank == 0);
                }
            }
        }

        // Emit parked traces now that each response carries its attributed
        // share — trace and meter agree exactly, shared fetch or not.
        for parked in pending {
            if let Ok(response) = &mut out[parked.position] {
                let trace = self.telemetry.emit(RequestTrace {
                    shape: canonical.key.clone(),
                    epoch: snapshot.epoch(),
                    phases: parked.phases,
                    phases_recorded: parked.phases_recorded,
                    total_nanos: parked.total_nanos,
                    queue_wait_nanos: 0,
                    provenance: parked.provenance,
                    estimated_tuples: parked.estimated_tuples,
                    fetched_tuples: response.accesses.tuples_fetched,
                    answers: parked.answers,
                    routed_fetches: 0,
                    fanned_fetches: 0,
                    batch: Some(BatchMembership {
                        group_size: count as u32,
                        shared_fetch: true,
                    }),
                    slow: parked.slow,
                });
                if parked.opt_in {
                    response.trace = Some(trace);
                }
            }
        }
        out
    }

    /// Records a group member's serve latency and, when traced (sampled,
    /// opted-in, or post-hoc slow), parks its timing facts for emission after
    /// cost attribution.
    #[allow(clippy::too_many_arguments)]
    fn park_group_trace(
        pending: &mut Vec<GroupTrace>,
        position: usize,
        clock: Option<PhaseClock>,
        start: Instant,
        opt_in: bool,
        provenance: Provenance,
        estimated_tuples: f64,
        answers: u64,
        telemetry: &EngineTelemetry,
    ) {
        let service_nanos = nanos_of(start.elapsed());
        telemetry.serve.record(service_nanos);
        let slow = telemetry.is_slow(service_nanos);
        let (phases, phases_recorded, total_nanos) = match clock {
            Some(mut c) => {
                c.mark(Phase::Reply);
                (c.timings(), true, c.total_nanos())
            }
            None if slow => (PhaseTimings::default(), false, service_nanos),
            None => return,
        };
        pending.push(GroupTrace {
            position,
            phases,
            phases_recorded,
            total_nanos,
            provenance,
            estimated_tuples,
            answers,
            slow,
            opt_in,
        });
    }

    /// Commits one delta synchronously: a group commit of one, so the
    /// validation, maintenance and drift behaviour (and every error kind) is
    /// exactly the committer path's.
    fn commit(&self, delta: &Delta) -> Result<u64> {
        self.commit_group(std::slice::from_ref(delta))
            .pop()
            .expect("a group of one yields exactly one outcome")
    }

    /// Commits a batch of deltas as **one** storage commit, maintaining
    /// materialized answers across it and re-collecting statistics when row
    /// counts drifted.
    ///
    /// Each delta is validated *atomically* against the evolved state
    /// `base ⊕ (accepted deltas so far)` — exactly what a sequential chain
    /// of individual commits would check — and folded into one net-effect
    /// [`Delta`] ([`DeltaBatch`]): a tuple deleted by one delta and
    /// reinserted by a later one cancels out entirely.  A delta that fails
    /// validation folds nothing and gets its own `Err`; later deltas see
    /// the state as if it never existed, mirroring a failed individual
    /// commit.  The accepted deltas then share ONE epoch bump, ONE
    /// maintenance pass over the merged delta (per shard on sharded
    /// backends) and ONE statistics drift probe, and every accepted delta's
    /// outcome is `Ok(new epoch)`.
    pub(crate) fn commit_group(&self, deltas: &[Delta]) -> Vec<Result<u64>> {
        if deltas.is_empty() {
            return Vec::new();
        }
        let pass_start = Instant::now();
        // All engine commits serialise here, so `base` below really is the
        // predecessor of the committed version — the pair of pinned versions
        // bounded answer maintenance runs between.
        let _writer = self.commit_lock.lock().expect("commit lock poisoned");
        let base = self.store.pin();

        fn fold_all<B: DeltaBase>(base: &B, deltas: &[Delta]) -> (Delta, Vec<Option<EngineError>>) {
            let mut batch = DeltaBatch::new(base);
            let outcomes = deltas
                .iter()
                .map(|delta| batch.fold(delta).err().map(EngineError::Data))
                .collect();
            (batch.merged(), outcomes)
        }
        let merge_start = Instant::now();
        let (merged, outcomes) = match &base {
            EngineSnapshot::Single(snap) => fold_all(snap.as_ref(), deltas),
            EngineSnapshot::Sharded(view) => fold_all(view.as_ref(), deltas),
        };
        let merge_nanos = nanos_of(merge_start.elapsed());
        let accepted = outcomes.iter().filter(|o| o.is_none()).count() as u64;
        if accepted == 0 {
            return outcomes
                .into_iter()
                .map(|o| Err(o.expect("every delta was rejected")))
                .collect();
        }

        // Write-ahead: on a durable engine the merged delta is logged and
        // fsynced *before* the store applies it.  A whole gathered batch is
        // one record — one fsync — which is where group commit amortises
        // the durability cost.  A failed append fails every accepted delta
        // and leaves the in-memory store untouched: the engine never serves
        // state the log does not hold.
        let mut wal_nanos = 0u64;
        let mut fsync_nanos = 0u64;
        if let Some(wal) = &self.wal {
            let wal_start = Instant::now();
            let mut durable = wal.lock().expect("wal lock poisoned");
            let syncs_before = durable.wal.timings();
            if let Err(e) = durable.wal.append(base.epoch() + 1, &merged) {
                let err = EngineError::Durability(e);
                return outcomes
                    .into_iter()
                    .map(|o| Err(o.unwrap_or_else(|| err.clone())))
                    .collect();
            }
            fsync_nanos = durable
                .wal
                .timings()
                .sync_nanos
                .saturating_sub(syncs_before.sync_nanos);
            wal_nanos = nanos_of(wal_start.elapsed());
            self.telemetry.fsync.record(fsync_nanos);
        }

        let apply_start = Instant::now();
        let snapshot = match self.store.commit(&merged) {
            Ok(snapshot) => snapshot,
            Err(e) => {
                // The merged delta validated against `base` above, so the
                // store refusing it is an invariant breach; surface the
                // storage error on every accepted delta.
                let err = EngineError::Data(e);
                return outcomes
                    .into_iter()
                    .map(|o| Err(o.unwrap_or_else(|| err.clone())))
                    .collect();
            }
        };
        let apply_nanos = nanos_of(apply_start.elapsed());

        // Replication ship point: the commit is applied (and, on durable
        // engines, logged), so stream it to the replicas.  Still under the
        // commit lock — attach/reconnect also runs under it, so no record
        // can slip between a resync and the live stream.  Sends do not wait
        // for acks; replicated reads wait on the ack watermark instead.
        if let EngineSnapshot::Sharded(view) = &snapshot {
            let set = self
                .replication
                .read()
                .expect("replication lock poisoned")
                .clone();
            if let Some(set) = set {
                set.ship(view, &merged);
            }
        }

        self.commits.fetch_add(accepted, Ordering::Relaxed);
        self.group_commits.fetch_add(1, Ordering::Relaxed);
        if accepted >= 2 {
            self.deltas_coalesced.fetch_add(accepted, Ordering::Relaxed);
        }

        // Automatic checkpoint: every `checkpoint_every` logged passes,
        // publish the just-committed version and truncate the log under it.
        // The commit is already durable in the log, so a checkpoint failure
        // (e.g. the fault-injected disk dying mid-publish) must not fail
        // the commit — it only postpones truncation; recovery replays the
        // longer log tail instead.
        let mut checkpoint_nanos = 0u64;
        if let Some(wal) = &self.wal {
            let mut durable = wal.lock().expect("wal lock poisoned");
            durable.passes += 1;
            let every = durable.policy.checkpoint_every;
            if every > 0 && durable.passes.is_multiple_of(every) {
                let ckpt_start = Instant::now();
                let ckpt = match &snapshot {
                    EngineSnapshot::Single(snap) => Checkpoint::single(snap),
                    EngineSnapshot::Sharded(view) => Checkpoint::sharded(view),
                };
                let keep = durable.policy.keep_checkpoints;
                let _ = durable.wal.checkpoint(&ckpt, keep);
                checkpoint_nanos = nanos_of(ckpt_start.elapsed());
                self.telemetry.checkpoint.record(checkpoint_nanos);
            }
        }

        // Maintenance path: propagate the merged delta into every admitted
        // answer (commit → propagate → merge), falling back — dropping the
        // entry — where the Corollary-5.3 gate or the maintenance work
        // itself says no.  Readers keep serving throughout: they either
        // pinned `base` (entries still answer for it until maintained) or
        // pin `snapshot` after maintenance publishes the new epoch.  This
        // single pass over the net effect is where group commit wins: n
        // coalesced deltas pay one pass over their (often much smaller)
        // merged delta instead of n passes.
        let mut maintenance_nanos = 0u64;
        let mut shard_maintenance_nanos: Vec<u64> = Vec::new();
        let mut subscriber_changes: Vec<AnswerChange> = Vec::new();
        if !self.materialized.is_disabled() {
            let maint_start = Instant::now();
            let touched = merged.touched_relations();
            // On a sharded backend the delta is split by route ONCE per
            // commit; every admitted entry's maintenance then iterates the
            // same shard-local sub-deltas.
            let parts: Option<Vec<Delta>> = match &base {
                EngineSnapshot::Single(_) => None,
                EngineSnapshot::Sharded(view) => Some(view.split(&merged)),
            };
            // Per-shard maintenance time, summed across maintained entries
            // (empty on single-store backends).
            let shard_nanos: Mutex<Vec<u64>> = Mutex::new(vec![0; base.shard_count()]);
            let summary = self.materialized.maintain_tracked(
                base.epoch(),
                snapshot.epoch(),
                &touched,
                |query, parameters, relation| {
                    maintenance_is_bounded(
                        query,
                        snapshot.schema(),
                        &self.access,
                        relation,
                        parameters,
                    )
                    .unwrap_or(false)
                },
                |evaluator| {
                    self.maintain_one(
                        evaluator,
                        &base,
                        &snapshot,
                        &merged,
                        parts.as_deref(),
                        &shard_nanos,
                    )
                },
                // Track answer deltas only for subscribed keys: the pass
                // already knows exactly which tuples entered/left each
                // answer, the predicate just gates the per-key diff cost.
                |key| self.subscriptions.is_subscribed(key),
            );
            self.maintenance_runs
                .fetch_add(summary.maintained, Ordering::Relaxed);
            self.maintenance_fallbacks
                .fetch_add(summary.fallbacks, Ordering::Relaxed);
            self.maintenance_meter.merge(&summary.accesses);
            subscriber_changes = summary.changes;
            maintenance_nanos = nanos_of(maint_start.elapsed());
            self.telemetry.maintenance.record(maintenance_nanos);
            if matches!(&base, EngineSnapshot::Sharded(_)) {
                shard_maintenance_nanos = shard_nanos.into_inner().expect("shard timing poisoned");
            }
        }

        // Reactive fan-out, still under the commit lock (the registration
        // fence): deliver each subscribed key's change-set, and resync every
        // subscribed key that is *not* current at the committed epoch — the
        // previously silent fallback-by-drop cases (stale entry, gate
        // rejection, maintenance error) plus racing re-records all surface
        // here as an explicit Resync instead of a quietly stalled stream.
        if !self.subscriptions.is_empty() {
            self.fan_out(&snapshot, subscriber_changes, pass_start);
        }

        // Cheap drift probe: row counts only, no tuple scan.
        let drifted = {
            let guard = self.stats.read().expect("stats lock poisoned");
            guard
                .stats
                .max_relative_row_drift_counts(snapshot.row_counts())
                > self.config.stats_drift_threshold
        };
        if drifted {
            // Full re-collection outside any lock; concurrent committers may
            // both re-collect (each bumps the epoch — harmless, plans just
            // refresh lazily against whichever snapshot won).
            let fresh = Arc::new(snapshot.statistics());
            let mut guard = self.stats.write().expect("stats lock poisoned");
            guard.stats = fresh;
            guard.epoch += 1;
            self.stats_refreshes.fetch_add(1, Ordering::Relaxed);
            // Every entry planned under the old epoch is now permanently
            // unreachable (lookups pass the current epoch) — reclaim it
            // eagerly instead of letting dead weight age live shapes out of
            // the FIFO.
            let current = guard.epoch;
            drop(guard);
            self.cache.purge_stale(current);
        }
        let epoch = snapshot.epoch();

        // The pass's flight record: one span per commit, one histogram
        // sample for the end-to-end latency.
        let total_nanos = nanos_of(pass_start.elapsed());
        self.telemetry.commit.record(total_nanos);
        self.telemetry.registry.commit_log().record(CommitSpan {
            epoch,
            gather_size: deltas.len() as u64,
            ops: merged.size() as u64,
            merge_nanos,
            wal_nanos,
            fsync_nanos,
            apply_nanos,
            checkpoint_nanos,
            maintenance_nanos,
            shard_maintenance_nanos,
            total_nanos,
        });
        outcomes
            .into_iter()
            .map(|o| match o {
                Some(e) => Err(e),
                None => Ok(epoch),
            })
            .collect()
    }

    /// Bounded maintenance of one materialized answer across the commit
    /// `base → snapshot` of `delta` (phase 2 of
    /// [`MaterializedSet::maintain_with`], running outside its lock).
    ///
    /// On a sharded backend Section-5 maintenance runs **per shard on the
    /// shard-local delta** (`parts`, split by route once per commit) — each
    /// run's fetches route through the sharded views, so per-shard deltas
    /// touch per-shard data plus whatever cross-shard completions the
    /// rest-queries need.  The composition is exact because every deletion
    /// re-check and insertion completion evaluates against the full
    /// committed version.
    fn maintain_one(
        &self,
        evaluator: &mut IncrementalBoundedEvaluator,
        base: &EngineSnapshot,
        snapshot: &EngineSnapshot,
        delta: &Delta,
        parts: Option<&[Delta]>,
        shard_nanos: &Mutex<Vec<u64>>,
    ) -> std::result::Result<MeterSnapshot, CoreError> {
        match (base, snapshot) {
            (EngineSnapshot::Single(base), EngineSnapshot::Single(snapshot)) => {
                let old_view =
                    SnapshotAccess::<AccessMeter>::new(Arc::clone(base), Arc::clone(&self.access));
                let new_view = SnapshotAccess::<AccessMeter>::new(
                    Arc::clone(snapshot),
                    Arc::clone(&self.access),
                );
                // The store's commit already validated `delta` against
                // `base`; no need to re-validate it per answer.
                let result = evaluator.maintain_across_unchecked(&old_view, &new_view, delta);
                if result.is_err() {
                    // The fetches before the failure still happened; the
                    // summary only carries successful runs, so account the
                    // partial work here (the views' meters are fresh, their
                    // totals are exactly this run's cost).
                    self.maintenance_meter.merge(
                        &old_view
                            .meter()
                            .snapshot()
                            .plus(&new_view.meter().snapshot()),
                    );
                }
                result
            }
            (EngineSnapshot::Sharded(base), EngineSnapshot::Sharded(snapshot)) => {
                let old_view =
                    ShardedAccess::<AccessMeter>::new(Arc::clone(base), Arc::clone(&self.access));
                let new_view = ShardedAccess::<AccessMeter>::new(
                    Arc::clone(snapshot),
                    Arc::clone(&self.access),
                );
                let split;
                let parts = match parts {
                    Some(parts) => parts,
                    None => {
                        split = base.split(delta);
                        &split
                    }
                };
                let mut cost = MeterSnapshot::default();
                for (shard, part) in parts.iter().enumerate() {
                    if part.is_empty() {
                        continue;
                    }
                    let part_start = Instant::now();
                    let outcome = evaluator.maintain_across_unchecked(&old_view, &new_view, part);
                    {
                        let mut nanos = shard_nanos.lock().expect("shard timing poisoned");
                        if let Some(slot) = nanos.get_mut(shard) {
                            *slot += nanos_of(part_start.elapsed());
                        }
                    }
                    match outcome {
                        Ok(c) => cost = cost.plus(&c),
                        Err(e) => {
                            // Account everything this evaluator fetched so
                            // far — earlier sub-deltas included — exactly
                            // once: the views' cumulative meters are the
                            // whole run's cost, and `cost` is discarded.
                            self.maintenance_meter.merge(
                                &old_view
                                    .meter()
                                    .snapshot()
                                    .plus(&new_view.meter().snapshot()),
                            );
                            return Err(e);
                        }
                    }
                }
                Ok(cost)
            }
            _ => Err(CoreError::Invariant(
                "engine snapshot variants diverged across one commit".into(),
            )),
        }
    }

    /// Registers a reactive subscription for `request`'s answers (see
    /// [`Engine::subscribe`]).  Runs under the commit lock so the pin, the
    /// initial full answer, and the recorded entry all land against one
    /// epoch — the first maintenance pass after registration starts from
    /// exactly the state the subscriber was handed.
    fn subscribe(&self, request: &Request) -> Result<ObservableQuery> {
        if request.values.len() != request.parameters.len() {
            return Err(EngineError::ParameterArity {
                expected: request.parameters.len(),
                actual: request.values.len(),
            });
        }
        let canonical = canonicalize(&request.query, &request.parameters);
        let key: MaterializedKey = (canonical.key.clone(), request.values.clone());
        let _fence = self.commit_lock.lock().expect("commit lock poisoned");
        let snapshot = self.store.pin();
        let epoch = snapshot.epoch();
        let (cached, _cache_hit) = self.plan_for(&snapshot, &canonical)?;
        let (answers, accesses) = self
            .run_full_query(&snapshot, &cached.plan, &key.1)
            .map_err(EngineError::Core)?;
        // Seeding is write-path work: charge the maintenance meter, not the
        // serve-path request counters.
        self.maintenance_meter.merge(&accesses);
        let full = Arc::new(answers.clone());
        let observable = self.subscriptions.register(
            key.clone(),
            canonical.query.clone(),
            canonical.parameters.clone(),
            self.config.subscriber_queue_capacity,
            epoch,
            Arc::clone(&full),
        );
        // The key is pinned now, so the record is admitted immediately and
        // survives capacity/cost eviction for as long as the handle lives.
        self.materialized.record(
            key,
            &canonical.query,
            &canonical.parameters,
            &answers,
            epoch,
            cached.stats_epoch,
            cached.plan.static_cost(),
            accesses,
        );
        Ok(observable)
    }

    /// Reactive fan-out of one commit, under the commit lock.
    ///
    /// Keys that were incrementally maintained this pass deliver their
    /// change-set (empty ones are elided inside the registry).  Every other
    /// subscribed key went through a maintenance drop (stale entry, gate
    /// rejection, run error) or lost a publish race to a re-recording
    /// reader — its stream cannot be advanced incrementally, so the
    /// subscriber gets an explicit [`AnswerUpdate::Resync`] instead of a
    /// silently stalled stream.
    fn fan_out(&self, snapshot: &EngineSnapshot, changes: Vec<AnswerChange>, pass_start: Instant) {
        let epoch = snapshot.epoch();
        let mut handled: HashSet<MaterializedKey> = HashSet::with_capacity(changes.len());
        for change in changes {
            let set = ChangeSet {
                epoch,
                added: change.added,
                removed: change.removed,
            };
            let enqueued = self
                .subscriptions
                .deliver_changes(&change.key, &set, &change.full);
            if enqueued > 0 {
                self.telemetry
                    .delivery
                    .record(nanos_of(pass_start.elapsed()));
            }
            handled.insert(change.key);
        }
        for shape in self.subscriptions.subscribed() {
            if handled.contains(&shape.key) {
                continue;
            }
            let full = match self.materialized.current_answers(&shape.key, epoch) {
                // Current without a change-set: a racing reader re-recorded
                // the entry mid-pass, so the incremental delta was lost.
                Some(full) => full,
                // Dropped or missing: recompute from scratch and re-record
                // (the pin re-admits it for the next pass).  A recompute
                // failure leaves the key for the next commit's catch-all.
                None => {
                    let canonical = CanonicalQuery {
                        key: shape.key.0.clone(),
                        query: shape.query,
                        parameters: shape.parameters,
                    };
                    match self.reseed_subscription(snapshot, &canonical, &shape.key) {
                        Some(full) => full,
                        None => continue,
                    }
                }
            };
            let enqueued = self.subscriptions.deliver_resync(&shape.key, epoch, &full);
            if enqueued > 0 {
                self.telemetry
                    .delivery
                    .record(nanos_of(pass_start.elapsed()));
            }
        }
    }

    /// Recomputes a subscribed answer from scratch against `snapshot` and
    /// re-records it (pinned, so admission is immediate).  Returns `None` on
    /// planning or execution failure — the caller retries at a later commit.
    fn reseed_subscription(
        &self,
        snapshot: &EngineSnapshot,
        canonical: &CanonicalQuery,
        key: &MaterializedKey,
    ) -> Option<Arc<Vec<Tuple>>> {
        let (cached, _cache_hit) = self.plan_for(snapshot, canonical).ok()?;
        let (answers, accesses) = self.run_full_query(snapshot, &cached.plan, &key.1).ok()?;
        // Write-path work: charged to maintenance, invisible to the
        // serve-path request counters.
        self.maintenance_meter.merge(&accesses);
        self.materialized.record(
            key.clone(),
            &canonical.query,
            &canonical.parameters,
            &answers,
            snapshot.epoch(),
            cached.stats_epoch,
            cached.plan.static_cost(),
            accesses,
        );
        Some(Arc::new(answers))
    }

    /// One bounded plan execution against a pinned version, without any of
    /// the serve path's tracing or materialization offers (used to seed and
    /// re-seed subscriptions).
    fn run_full_query(
        &self,
        snapshot: &EngineSnapshot,
        plan: &BoundedPlan,
        values: &[Value],
    ) -> std::result::Result<(Vec<Tuple>, MeterSnapshot), CoreError> {
        let result = match snapshot {
            EngineSnapshot::Single(snap) => {
                let view =
                    SnapshotAccess::<AccessMeter>::new(Arc::clone(snap), Arc::clone(&self.access));
                execute_bounded(plan, values, &view)?
            }
            EngineSnapshot::Sharded(view) => {
                let source =
                    ShardedAccess::<AccessMeter>::new(Arc::clone(view), Arc::clone(&self.access));
                execute_bounded(plan, values, &source)?
            }
        };
        Ok((result.answers, result.accesses))
    }

    fn metrics(&self) -> EngineMetrics {
        // Read the store epoch *while holding* the statistics read lock: a
        // drift refresh bumps `stats.epoch` under the write lock strictly
        // after the committed store epoch is visible, so this acquire pair
        // can never observe a new statistics epoch with an old snapshot
        // epoch (the coherence the `EngineMetrics` rustdoc promises).
        let (stats_epoch, snapshot_epoch) = {
            let guard = self.stats.read().expect("stats lock poisoned");
            (guard.epoch, self.store.epoch())
        };
        let (wal_records, wal_syncs, checkpoints) = match &self.wal {
            None => (0, 0, 0),
            Some(wal) => {
                let durable = wal.lock().expect("wal lock poisoned");
                (
                    durable.wal.records(),
                    durable.wal.storage().syncs(),
                    durable.wal.checkpoints(),
                )
            }
        };
        EngineMetrics {
            requests: self.requests.load(Ordering::Relaxed),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            rejected_by_budget: self.rejected_by_budget.load(Ordering::Relaxed),
            shed_overload: self.shed_overload.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            stats_refreshes: self.stats_refreshes.load(Ordering::Relaxed),
            stats_epoch,
            snapshot_epoch,
            accesses: self.meter.snapshot(),
            materialized_hits: self.materialized.hits(),
            materialized_entries: self.materialized.len() as u64,
            maintenance_runs: self.maintenance_runs.load(Ordering::Relaxed),
            maintenance_fallbacks: self.maintenance_fallbacks.load(Ordering::Relaxed),
            materialized_evictions: self.materialized.evictions(),
            maintenance_accesses: self.maintenance_meter.snapshot(),
            group_commits: self.group_commits.load(Ordering::Relaxed),
            deltas_coalesced: self.deltas_coalesced.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            shared_fetches: self.shared_fetches.load(Ordering::Relaxed),
            snapshot_pins: self.store.pins(),
            wal_records,
            wal_syncs,
            checkpoints,
            queue_depth: self.queued.load(Ordering::Relaxed) as u64,
            in_flight: self.telemetry.in_flight.load(Ordering::Relaxed),
            traces_emitted: self.telemetry.traces_emitted.load(Ordering::Relaxed),
            subscribers: self.subscriptions.subscriber_count(),
            subscription_queue_depth: self.subscriptions.queued_updates(),
            subscription_deliveries: self.subscriptions.delivered(),
            subscription_resyncs: self.subscriptions.resyncs(),
            subscription_overflows: self.subscriptions.overflows(),
        }
    }

    /// Contributes every engine counter and gauge to the telemetry
    /// registry's exposition page (the collector registered at build time).
    fn collect_samples(&self, out: &mut Vec<Sample>) {
        let m = self.metrics();
        out.push(Sample::counter("si_requests_total", m.requests));
        out.push(Sample::counter("si_plan_cache_hits_total", m.cache_hits));
        out.push(Sample::counter(
            "si_plan_cache_misses_total",
            m.cache_misses,
        ));
        out.push(Sample::counter(
            "si_rejected_by_budget_total",
            m.rejected_by_budget,
        ));
        out.push(Sample::counter("si_shed_overload_total", m.shed_overload));
        out.push(Sample::counter("si_commits_total", m.commits));
        out.push(Sample::counter(
            "si_stats_refreshes_total",
            m.stats_refreshes,
        ));
        out.push(Sample::gauge("si_stats_epoch", m.stats_epoch));
        out.push(Sample::gauge("si_snapshot_epoch", m.snapshot_epoch));
        for (name, value) in m.accesses.named_counters() {
            out.push(Sample::counter("si_accesses_total", value).label("counter", name));
        }
        out.push(Sample::counter(
            "si_materialized_hits_total",
            m.materialized_hits,
        ));
        out.push(Sample::gauge(
            "si_materialized_entries",
            m.materialized_entries,
        ));
        out.push(Sample::counter(
            "si_maintenance_runs_total",
            m.maintenance_runs,
        ));
        out.push(Sample::counter(
            "si_maintenance_fallbacks_total",
            m.maintenance_fallbacks,
        ));
        out.push(Sample::counter(
            "si_materialized_evictions_total",
            m.materialized_evictions,
        ));
        for (name, value) in m.maintenance_accesses.named_counters() {
            out.push(
                Sample::counter("si_maintenance_accesses_total", value).label("counter", name),
            );
        }
        out.push(Sample::counter("si_group_commits_total", m.group_commits));
        out.push(Sample::counter(
            "si_deltas_coalesced_total",
            m.deltas_coalesced,
        ));
        out.push(Sample::counter(
            "si_batched_requests_total",
            m.batched_requests,
        ));
        out.push(Sample::counter("si_shared_fetches_total", m.shared_fetches));
        out.push(Sample::counter("si_snapshot_pins_total", m.snapshot_pins));
        out.push(Sample::counter("si_wal_records_total", m.wal_records));
        out.push(Sample::counter("si_wal_syncs_total", m.wal_syncs));
        out.push(Sample::counter("si_checkpoints_total", m.checkpoints));
        out.push(Sample::gauge("si_queue_depth", m.queue_depth));
        out.push(Sample::gauge("si_in_flight", m.in_flight));
        out.push(Sample::counter("si_traces_emitted_total", m.traces_emitted));
        out.push(Sample::gauge("si_subscribers", m.subscribers));
        out.push(Sample::gauge(
            "si_subscription_queue_depth",
            m.subscription_queue_depth,
        ));
        out.push(Sample::counter(
            "si_subscription_deliveries_total",
            m.subscription_deliveries,
        ));
        out.push(Sample::counter(
            "si_subscription_resyncs_total",
            m.subscription_resyncs,
        ));
        out.push(Sample::counter(
            "si_subscription_overflows_total",
            m.subscription_overflows,
        ));
        if let Some(wal) = &self.wal {
            let durable = wal.lock().expect("wal lock poisoned");
            out.push(Sample::gauge(
                "si_wal_segment_bytes",
                durable.wal.segment_bytes(),
            ));
        }
        if let Backend::Sharded(store) = &self.store {
            for stats in store.shard_stats() {
                out.push(
                    Sample::gauge("si_shard_rows", stats.rows)
                        .label("shard", stats.shard.to_string()),
                );
            }
        }
        let replication = self
            .replication
            .read()
            .expect("replication lock poisoned")
            .clone();
        if let Some(set) = replication {
            let primary = self.store.epoch();
            for status in set.statuses() {
                let shard = status.shard.to_string();
                out.push(
                    Sample::gauge("si_replica_epoch", status.acked_epoch)
                        .label("shard", shard.clone()),
                );
                out.push(
                    Sample::gauge("si_replica_lag", primary.saturating_sub(status.acked_epoch))
                        .label("shard", shard.clone()),
                );
                out.push(
                    Sample::gauge("si_replica_connected", u64::from(status.connected))
                        .label("shard", shard),
                );
            }
        }
    }
}

/// The non-timing facts of a request trace, gathered on the serve path.
struct TraceFacts<'a> {
    shape: &'a ShapeKey,
    epoch: u64,
    provenance: Provenance,
    estimated_tuples: f64,
    fetched_tuples: u64,
    answers: u64,
    routed_fetches: u64,
    fanned_fetches: u64,
    batch: Option<BatchMembership>,
}

/// A group member's trace, parked until cost attribution fixes its
/// fetched-tuple count (see `Shared::serve_group`).
struct GroupTrace {
    position: usize,
    phases: PhaseTimings,
    phases_recorded: bool,
    total_nanos: u64,
    provenance: Provenance,
    estimated_tuples: f64,
    answers: u64,
    slow: bool,
    opt_in: bool,
}

/// Bridges `si-core`'s executor phase hook ([`TraceSink`]) into the serve
/// path's [`PhaseClock`]: the executor reports its own fetch/finalize split,
/// the clock files it under the matching serve phases.
struct ClockSink<'a>(&'a mut PhaseClock);

impl TraceSink for ClockSink<'_> {
    fn exec_phase(&mut self, phase: ExecPhase, nanos: u64) {
        let target = match phase {
            ExecPhase::Fetch => Phase::Fetch,
            ExecPhase::Finalize => Phase::Finalize,
        };
        self.0.charge(target, nanos);
    }
}

/// Saturating `Duration` → nanoseconds (u64).
fn nanos_of(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// One response's attributed share of a fetch cost `total` split `k` ways:
/// `total/k` per sharer, remainder on the first, so shares sum to `total`.
fn share_of(total: &MeterSnapshot, k: u64, first: bool) -> MeterSnapshot {
    let part = |c: u64| if first { c / k + c % k } else { c / k };
    MeterSnapshot {
        tuples_fetched: part(total.tuples_fetched),
        index_probes: part(total.index_probes),
        full_scans: part(total.full_scans),
        time_units: part(total.time_units),
    }
}

/// A response that has been submitted to the worker pool but may not have
/// completed yet.
#[derive(Debug)]
pub struct PendingResponse {
    receiver: mpsc::Receiver<Result<QueryResponse>>,
}

impl PendingResponse {
    /// Blocks until the response is ready.
    pub fn wait(self) -> Result<QueryResponse> {
        self.receiver
            .recv()
            .map_err(|_| EngineError::ShuttingDown)?
    }

    /// Returns the response if it is already ready.
    pub fn try_wait(&self) -> Option<Result<QueryResponse>> {
        self.receiver.try_recv().ok()
    }
}

/// The concurrent query-serving engine.  See the crate docs for the request
/// lifecycle.
///
/// `Engine` is `Sync`: clients may call [`Engine::execute`] from any number
/// of threads (closed-loop serving), or [`Engine::submit`] to hand requests
/// to the fixed worker pool (open-loop serving).  Exactly one logical writer
/// should call [`Engine::commit`]; concurrent commits are safe but
/// serialise.
#[derive(Debug)]
pub struct Engine {
    shared: Arc<Shared>,
    pool: pool::WorkerPool,
    committer: commit_queue::CommitQueue,
}

impl Engine {
    /// Builds an engine over an initial instance and an access schema.
    ///
    /// Declares every index the access schema promises (lazily — each
    /// materialises on first probe, inside whichever snapshot version first
    /// needs it) and collects the statistics epoch 0.
    pub fn new(mut db: Database, access: AccessSchema, config: EngineConfig) -> Result<Engine> {
        access.validate(db.schema())?;
        for (relation, attrs) in access.required_indexes() {
            if !attrs.is_empty() {
                db.declare_index(&relation, &attrs)?;
            }
        }
        let stats = Arc::new(db.statistics());
        Ok(Self::build(
            Backend::Single(SnapshotStore::new(db)),
            access,
            stats,
            config,
            None,
            Arc::new(SubscriptionRegistry::new()),
        ))
    }

    /// Builds a **durable** engine over an initial instance: the instance is
    /// published to `storage` as the base checkpoint, and from then on every
    /// commit pass appends one epoch-stamped record to the write-ahead log —
    /// fsynced — *before* the in-memory store applies it.  After a crash,
    /// [`Engine::recover`] over the same storage rebuilds an engine whose
    /// state is exactly the maximal durable prefix of the commit history.
    ///
    /// The policy knobs come from [`EngineConfig::durability`]
    /// ([`DurabilityConfig::default`] if unset).
    pub fn new_durable(
        mut db: Database,
        access: AccessSchema,
        storage: Box<dyn si_durability::Storage>,
        config: EngineConfig,
    ) -> Result<Engine> {
        access.validate(db.schema())?;
        for (relation, attrs) in access.required_indexes() {
            if !attrs.is_empty() {
                db.declare_index(&relation, &attrs)?;
            }
        }
        let stats = Arc::new(db.statistics());
        let store = SnapshotStore::new(db);
        let wal = Wal::create(storage, &Checkpoint::single(&store.pin()))
            .map_err(EngineError::Durability)?;
        let policy = config.durability.clone().unwrap_or_default();
        Ok(Self::build(
            Backend::Single(store),
            access,
            stats,
            config,
            Some(DurableState {
                wal,
                policy,
                passes: 0,
            }),
            Arc::new(SubscriptionRegistry::new()),
        ))
    }

    /// Builds an engine over a **hash-partitioned** store: `shards`
    /// partitions of the initial instance, routed by `partition` (the
    /// declared partition column per relation — see
    /// [`si_data::PartitionMap`]).
    ///
    /// Requests plan once against exact global statistics and execute
    /// scatter-gather: probes that bind a relation's partition column route
    /// to a single shard, everything else fans across shards merging in
    /// shard order — answers, epochs and access accounting are identical to
    /// the unsharded engine (the shard-equivalence suite pins this).
    /// Commits split the delta by route and commit shard-locally under one
    /// coherent global epoch; materialized answers are maintained per shard
    /// on the shard-local delta.
    pub fn new_sharded(
        mut db: Database,
        access: AccessSchema,
        partition: PartitionMap,
        shards: usize,
        config: EngineConfig,
    ) -> Result<Engine> {
        access.validate(db.schema())?;
        for (relation, attrs) in access.required_indexes() {
            if !attrs.is_empty() {
                db.declare_index(&relation, &attrs)?;
            }
        }
        let stats = Arc::new(db.statistics());
        let store = ShardedSnapshotStore::new(db, partition, shards)?;
        Ok(Self::build(
            Backend::Sharded(store),
            access,
            stats,
            config,
            None,
            Arc::new(SubscriptionRegistry::new()),
        ))
    }

    /// Builds a **durable** hash-partitioned engine: [`Engine::new_sharded`]
    /// plus the write-ahead log of [`Engine::new_durable`].  The base
    /// checkpoint captures every shard's pages and the partition map, so
    /// recovery rebuilds the same layout and routing.
    pub fn new_sharded_durable(
        mut db: Database,
        access: AccessSchema,
        partition: PartitionMap,
        shards: usize,
        storage: Box<dyn si_durability::Storage>,
        config: EngineConfig,
    ) -> Result<Engine> {
        access.validate(db.schema())?;
        for (relation, attrs) in access.required_indexes() {
            if !attrs.is_empty() {
                db.declare_index(&relation, &attrs)?;
            }
        }
        let stats = Arc::new(db.statistics());
        let store = ShardedSnapshotStore::new(db, partition, shards)?;
        let wal = Wal::create(storage, &Checkpoint::sharded(&store.pin()))
            .map_err(EngineError::Durability)?;
        let policy = config.durability.clone().unwrap_or_default();
        Ok(Self::build(
            Backend::Sharded(store),
            access,
            stats,
            config,
            Some(DurableState {
                wal,
                policy,
                passes: 0,
            }),
            Arc::new(SubscriptionRegistry::new()),
        ))
    }

    /// Rebuilds a durable engine from `storage` after a crash: newest valid
    /// checkpoint + replay of the contiguous log tail (the torn final
    /// record, if any, is dropped and the log repaired in place).  The
    /// recovered store resumes at the durable epoch, on the same backend
    /// flavour (single or sharded, with the checkpointed partition map);
    /// statistics are re-collected from scratch, declared indexes rebuild
    /// lazily, and the materialized answer cache restarts cold — derived
    /// state is never trusted from disk.
    pub fn recover(
        storage: Box<dyn si_durability::Storage>,
        access: AccessSchema,
        config: EngineConfig,
    ) -> Result<Engine> {
        Self::recover_inner(
            storage,
            access,
            config,
            Arc::new(SubscriptionRegistry::new()),
        )
    }

    /// [`Engine::recover`], carrying the subscription registry of the engine
    /// that crashed.  Live [`ObservableQuery`] handles keep their pins
    /// through recovery: every surviving subscription is re-seeded against
    /// the recovered store and its subscribers receive one
    /// [`AnswerUpdate::Resync`] stamped with the recovered epoch — the
    /// explicit signal that anything delivered past the durable prefix must
    /// be discarded.
    pub fn recover_with_subscriptions(
        storage: Box<dyn si_durability::Storage>,
        access: AccessSchema,
        config: EngineConfig,
        subscriptions: Arc<SubscriptionRegistry>,
    ) -> Result<Engine> {
        let engine = Self::recover_inner(storage, access, config, Arc::clone(&subscriptions))?;
        {
            let shared = &engine.shared;
            let _fence = shared.commit_lock.lock().expect("commit lock poisoned");
            let snapshot = shared.store.pin();
            let epoch = snapshot.epoch();
            for shape in subscriptions.subscribed() {
                let canonical = CanonicalQuery {
                    key: shape.key.0.clone(),
                    query: shape.query,
                    parameters: shape.parameters,
                };
                // A re-seed failure here leaves the key for the first
                // commit's catch-all resync.
                if let Some(full) = shared.reseed_subscription(&snapshot, &canonical, &shape.key) {
                    subscriptions.deliver_resync(&shape.key, epoch, &full);
                }
            }
        }
        Ok(engine)
    }

    fn recover_inner(
        storage: Box<dyn si_durability::Storage>,
        access: AccessSchema,
        config: EngineConfig,
        subscriptions: Arc<SubscriptionRegistry>,
    ) -> Result<Engine> {
        let (recovered, wal) = Wal::recover(storage).map_err(EngineError::Durability)?;
        let epoch = recovered.epoch;
        let mut databases = recovered.databases;
        for db in &mut databases {
            access.validate(db.schema())?;
            for (relation, attrs) in access.required_indexes() {
                if !attrs.is_empty() {
                    db.declare_index(&relation, &attrs)?;
                }
            }
        }
        let store = match recovered.backend {
            CheckpointBackend::Single => {
                if databases.len() != 1 {
                    return Err(EngineError::Durability(DurabilityError::Invariant(
                        "single-store checkpoint with multiple shards".into(),
                    )));
                }
                let db = databases.pop().expect("length checked above");
                Backend::Single(SnapshotStore::restore(db, epoch))
            }
            CheckpointBackend::Sharded { partition } => {
                Backend::Sharded(ShardedSnapshotStore::restore(databases, partition, epoch)?)
            }
        };
        let stats = Arc::new(store.pin().statistics());
        let policy = config.durability.clone().unwrap_or_default();
        Ok(Self::build(
            store,
            access,
            stats,
            config,
            Some(DurableState {
                wal,
                policy,
                passes: 0,
            }),
            subscriptions,
        ))
    }

    fn build(
        store: Backend,
        access: AccessSchema,
        stats: Arc<DatabaseStats>,
        config: EngineConfig,
        wal: Option<DurableState>,
        subscriptions: Arc<SubscriptionRegistry>,
    ) -> Engine {
        let shared = Arc::new(Shared {
            access: Arc::new(access),
            store,
            cache: PlanCache::new(config.plan_cache_capacity),
            // The materialized set shares the registry's pin set, so
            // subscribed shapes bypass admission and survive eviction for as
            // long as a subscriber holds them.
            materialized: MaterializedSet::with_pins(
                config.materialize_capacity,
                config.materialize_after,
                Arc::clone(subscriptions.pins()),
            ),
            subscriptions,
            commit_lock: Mutex::new(()),
            stats: RwLock::new(StatsEpoch { stats, epoch: 0 }),
            meter: SharedMeter::new(),
            maintenance_meter: SharedMeter::new(),
            requests: AtomicU64::new(0),
            rejected_by_budget: AtomicU64::new(0),
            shed_overload: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            stats_refreshes: AtomicU64::new(0),
            maintenance_runs: AtomicU64::new(0),
            maintenance_fallbacks: AtomicU64::new(0),
            group_commits: AtomicU64::new(0),
            deltas_coalesced: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            shared_fetches: AtomicU64::new(0),
            queued: AtomicUsize::new(0),
            wal: wal.map(Mutex::new),
            telemetry: EngineTelemetry::new(&config),
            replication: RwLock::new(None),
            config: config.clone(),
        });
        // The registry lives inside `Shared`, so its collector holds a weak
        // reference back — no `Arc` cycle, scrapes after teardown yield
        // nothing instead of leaking the engine.
        let weak = Arc::downgrade(&shared);
        shared.telemetry.registry.register_collector(move |out| {
            if let Some(shared) = weak.upgrade() {
                shared.collect_samples(out);
            }
        });
        let pool = pool::WorkerPool::start(Arc::clone(&shared), config.workers);
        let committer = commit_queue::CommitQueue::start(Arc::clone(&shared));
        Engine {
            shared,
            pool,
            committer,
        }
    }

    /// Serves a request synchronously on the calling thread (admit →
    /// plan-cache → pin snapshot → execute → merge).
    pub fn execute(&self, request: &Request) -> Result<QueryResponse> {
        self.shared.serve(request)
    }

    /// Serves a request against a caller-pinned snapshot version instead of
    /// the current one — the reader side of snapshot isolation: hold the
    /// `Arc` from [`Engine::snapshot`] and every execution sees exactly that
    /// version, no matter how many commits happen meanwhile.
    pub fn execute_at(
        &self,
        snapshot: &EngineSnapshot,
        request: &Request,
    ) -> Result<QueryResponse> {
        self.shared.serve_at(snapshot, request)
    }

    /// Attaches (or re-attaches) a shard replica over `transport`, syncing
    /// it to the current version before it joins the serving set.
    ///
    /// Sharded engines only.  The handshake runs under the commit lock, so
    /// no commit can slip between the resync and the live WAL stream: the
    /// replica is brought to the pinned epoch — by replaying the logged
    /// record tail when it bridges the gap, or by a full snapshot bootstrap
    /// otherwise — and every later commit is shipped as one
    /// [`si_wire::Message::WalRecord`] per shard.  Reconnecting after a
    /// torn wire is the same call with a fresh transport; the replica
    /// resumes from its clean applied prefix.
    pub fn attach_replica(
        &self,
        shard: usize,
        transport: Arc<dyn si_wire::Transport>,
    ) -> Result<()> {
        let _writer = self
            .shared
            .commit_lock
            .lock()
            .expect("commit lock poisoned");
        let Backend::Sharded(store) = &self.shared.store else {
            return Err(EngineError::Replication(
                "replication requires a sharded engine".to_owned(),
            ));
        };
        let view = store.pin();
        let set = {
            let existing = self
                .shared
                .replication
                .read()
                .expect("replication lock poisoned")
                .clone();
            match existing {
                Some(set) => set,
                None => {
                    let schema = Arc::new(view.schema().clone());
                    let router = store
                        .partition_map()
                        .router(&schema, store.shard_count())
                        .map_err(EngineError::Data)?;
                    let set = Arc::new(ReplicaSet::new(
                        schema,
                        Arc::clone(&self.shared.access),
                        Arc::new(router),
                        Arc::clone(&self.shared.telemetry.replication),
                    ));
                    *self
                        .shared
                        .replication
                        .write()
                        .expect("replication lock poisoned") = Some(Arc::clone(&set));
                    set
                }
            }
        };
        set.attach(shard, transport, &view)
    }

    /// Per-shard replica liveness and acknowledged epochs (empty until the
    /// first [`Engine::attach_replica`]).
    pub fn replica_statuses(&self) -> Vec<ReplicaStatus> {
        self.shared
            .replication
            .read()
            .expect("replication lock poisoned")
            .as_ref()
            .map(|set| set.statuses())
            .unwrap_or_default()
    }

    /// Adjusts how long replicated reads wait for every replica to
    /// acknowledge the pinned epoch before refusing with
    /// [`EngineError::EpochUnavailable`].  No-op before the first attach.
    pub fn set_replica_epoch_wait(&self, timeout: Duration) {
        if let Some(set) = self
            .shared
            .replication
            .read()
            .expect("replication lock poisoned")
            .as_ref()
        {
            set.set_epoch_wait(timeout);
        }
    }

    /// Serves a request through the attached replicas instead of the local
    /// shards: pin the current version, wait for every replica to
    /// acknowledge that epoch (read-your-writes), then execute over the
    /// wire with [`si_access::ReplicatedAccess`].
    ///
    /// Answers, witnesses and [`MeterSnapshot`] accounting are identical to
    /// [`Engine::execute`] at the same version — the replicas run only the
    /// raw pushed-down probes; routing, residual filtering and metering
    /// stay here.  Fails with [`EngineError::EpochUnavailable`] when a
    /// lagging replica cannot acknowledge the pinned epoch in time, and
    /// with [`EngineError::Replication`] when a shard has no replica.
    pub fn execute_replicated(&self, request: &Request) -> Result<QueryResponse> {
        self.shared.serve_replicated(request)
    }

    /// Registers a reactive subscription for `request`'s answers.
    ///
    /// The returned [`ObservableQuery`] immediately holds one
    /// [`AnswerUpdate::Resync`] carrying the full answer at the registration
    /// epoch; from then on every commit that changes the answer pushes an
    /// epoch-stamped [`ChangeSet`] (group commits deliver the net effect,
    /// no-op commits are elided).  When the engine cannot advance the stream
    /// incrementally — maintenance fell back, the subscriber's queue
    /// overflowed, or the engine recovered from a crash — the subscriber
    /// gets a fresh `Resync` instead of going silently stale.  Applying the
    /// updates in order from epoch 0 reconstructs exactly what a cold query
    /// would answer at every epoch.
    ///
    /// Subscribed shapes are pinned into the materialized layer: they bypass
    /// hotness admission and survive eviction until the handle drops.
    pub fn subscribe(&self, request: &Request) -> Result<ObservableQuery> {
        self.shared.subscribe(request)
    }

    /// The engine's subscription registry — shared state behind every
    /// [`ObservableQuery`] this engine hands out.  Keep a clone and pass it
    /// to [`Engine::recover_with_subscriptions`] to carry live
    /// subscriptions across a crash.
    pub fn subscriptions(&self) -> Arc<SubscriptionRegistry> {
        Arc::clone(&self.shared.subscriptions)
    }

    /// Queues a request on the worker pool, shedding load when the queue is
    /// at capacity.
    pub fn submit(&self, request: Request) -> Result<PendingResponse> {
        let max = self.shared.config.max_queue;
        let queued = self.shared.queued.fetch_add(1, Ordering::Relaxed);
        if max > 0 && queued >= max {
            self.shared.queued.fetch_sub(1, Ordering::Relaxed);
            self.shared.shed_overload.fetch_add(1, Ordering::Relaxed);
            return Err(EngineError::Overloaded {
                queued,
                max_queue: max,
            });
        }
        let (reply, receiver) = mpsc::channel();
        match self.pool.submit(pool::Job {
            request,
            reply,
            submitted: Instant::now(),
        }) {
            Ok(()) => Ok(PendingResponse { receiver }),
            Err(e) => {
                self.shared.queued.fetch_sub(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Serves a slice of requests against **one** pinned current version,
    /// sharing the fetch phase among requests with identical canonical
    /// shape and parameter values.
    ///
    /// Responses come back in request order and each is exactly what
    /// [`Engine::execute`] would have produced for that request at that
    /// version (same answers, same cache-hit and materialized flags).  The
    /// difference is cost: a group of `k` identical requests runs the fetch
    /// phase **once**, the engine meter is charged once, and each sharing
    /// response reports an attributed share `C/k` (remainder on the first)
    /// so that response shares still sum to the true global cost.  Requests
    /// the materialized layer answers report zero, as always.
    pub fn execute_batch(&self, requests: &[Request]) -> Vec<Result<QueryResponse>> {
        self.shared.serve_batch(requests)
    }

    /// Applies an update to the current version, returning the new snapshot
    /// epoch.  Statistics re-collect (and cached plans invalidate) when the
    /// committed row counts drift past the configured threshold.
    ///
    /// This is a synchronous **group commit of one**: one epoch bump, one
    /// maintenance pass, no queueing.  To coalesce many small commits into
    /// one pass, use [`Engine::commit_async`] / [`Engine::commit_group`].
    pub fn commit(&self, delta: &Delta) -> Result<u64> {
        self.shared.commit(delta)
    }

    /// Commits a batch of deltas as **one** storage commit: each delta is
    /// validated atomically against the evolved state (exactly as a
    /// sequential chain of [`Engine::commit`]s would) and folded into one
    /// net-effect delta — delete-then-reinsert across the batch cancels —
    /// then the accepted deltas share one epoch bump, one maintenance pass
    /// and one statistics drift probe.  Returns one outcome per delta, in
    /// order: `Ok(new epoch)` for each accepted delta, its own validation
    /// error for each rejected one (rejected deltas fold nothing).
    pub fn commit_group(&self, deltas: &[Delta]) -> Vec<Result<u64>> {
        self.shared.commit_group(deltas)
    }

    /// Enqueues a delta on the group committer and returns immediately; the
    /// committer gathers queued deltas — up to
    /// [`EngineConfig::commit_batch_max`], waiting at most
    /// [`EngineConfig::commit_linger`] for stragglers — and commits each
    /// gathered batch through [`Engine::commit_group`].  The returned
    /// ticket resolves to this delta's own outcome.
    pub fn commit_async(&self, delta: Delta) -> Result<CommitTicket> {
        self.committer.enqueue(delta)
    }

    /// Blocks until every delta enqueued via [`Engine::commit_async`]
    /// *before this call* has been committed (or rejected).
    pub fn flush_commits(&self) -> Result<()> {
        self.committer.flush()
    }

    /// True when this engine logs commits to a write-ahead log (built via a
    /// durable constructor or [`Engine::recover`]).
    pub fn is_durable(&self) -> bool {
        self.shared.wal.is_some()
    }

    /// Manually checkpoints a durable engine: publishes the current version
    /// (tmp → sync → atomic rename under a content-derived name), truncates
    /// the log beneath it and prunes old checkpoints per
    /// [`DurabilityConfig::keep_checkpoints`].  Serialises with commits, so
    /// the published state is exactly one committed version.  Errors on a
    /// non-durable engine.
    pub fn checkpoint(&self) -> Result<()> {
        let Some(wal) = &self.shared.wal else {
            return Err(EngineError::Durability(DurabilityError::Invariant(
                "engine has no durability plane; build it with a durable constructor".into(),
            )));
        };
        // Same lock order as the commit path: commit lock, then WAL.
        let _writer = self
            .shared
            .commit_lock
            .lock()
            .expect("commit lock poisoned");
        let ckpt = match self.shared.store.pin() {
            EngineSnapshot::Single(snap) => Checkpoint::single(&snap),
            EngineSnapshot::Sharded(view) => Checkpoint::sharded(&view),
        };
        let mut durable = wal.lock().expect("wal lock poisoned");
        let keep = durable.policy.keep_checkpoints;
        durable
            .wal
            .checkpoint(&ckpt, keep)
            .map_err(EngineError::Durability)
    }

    /// Pins the current snapshot version (uniform over single-store and
    /// sharded engines).
    pub fn snapshot(&self) -> EngineSnapshot {
        self.shared.store.pin()
    }

    /// Number of data shards (1 for single-store engines).
    pub fn data_shards(&self) -> usize {
        match &self.shared.store {
            Backend::Single(_) => 1,
            Backend::Sharded(store) => store.shard_count(),
        }
    }

    /// Per-shard balance numbers (empty for single-store engines).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        match &self.shared.store {
            Backend::Single(_) => Vec::new(),
            Backend::Sharded(store) => store.shard_stats(),
        }
    }

    /// The current snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.store.epoch()
    }

    /// The access schema the engine serves under.
    pub fn access_schema(&self) -> &AccessSchema {
        &self.shared.access
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.shared.config
    }

    /// A snapshot of the engine counters.
    pub fn metrics(&self) -> EngineMetrics {
        self.shared.metrics()
    }

    /// The engine's telemetry registry: latency histograms, the slow-query
    /// log, the commit-span log, and [`TelemetryRegistry::render`] — the
    /// Prometheus-style text exposition of every engine counter and gauge.
    ///
    /// ```
    /// # use si_engine::{Engine, EngineConfig, Request};
    /// # use si_data::Value;
    /// # let db = si_workload::SocialGenerator::new(
    /// #     si_workload::SocialConfig::with_persons(50)).generate();
    /// # let access = si_workload::serving_access_schema(5000);
    /// # let engine = Engine::new(db, access, EngineConfig::default()).unwrap();
    /// # let request = Request::new(si_workload::q1(), vec!["p".into()], vec![Value::int(7)]);
    /// # engine.execute(&request).unwrap();
    /// let page = engine.telemetry().render();
    /// assert!(page.contains("si_requests_total 1"));
    /// ```
    pub fn telemetry(&self) -> &TelemetryRegistry {
        &self.shared.telemetry.registry
    }

    /// Retunes the request-trace sampling rate at runtime (the live
    /// counterpart of [`EngineConfig::trace_sample_every`]): 0 turns inline
    /// tracing off, 1 traces every request, N traces 1-in-N.  Takes effect
    /// for subsequently admitted requests; slow-query capture and the
    /// per-request opt-in are unaffected.
    pub fn set_trace_sampling(&self, every: u64) {
        self.shared.telemetry.sampler.set_every(every);
    }
}

// Compile-time thread-safety audit of the serving layer (see the matching
// block in `si-data`): the engine handle is shared by reference across
// client threads, responses and requests cross thread boundaries.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<Engine>();
    assert_send_sync::<EngineConfig>();
    assert_send_sync::<EngineSnapshot>();
    assert_send_sync::<Request>();
    assert_send_sync::<QueryResponse>();
    assert_send_sync::<EngineMetrics>();
    assert_send_sync::<PlanCache>();
    assert_send_sync::<CachedPlan>();
    assert_send_sync::<ShardReplica>();
    assert_send_sync::<ReplicaClient>();
    assert_send_sync::<ReplicaSet>();
    assert_send_sync::<ReplicaStatus>();
    assert_send_sync::<MaterializedSet>();
    assert_send_sync::<MaterializedAnswer>();
    assert_send_sync::<PinSet>();
    assert_send_sync::<SubscriptionRegistry>();
    assert_send_sync::<ObservableQuery>();
    assert_send_sync::<AnswerUpdate>();
    assert_send_sync::<ChangeSet>();
    assert_send_sync::<Shared>();
    const fn assert_send<T: Send>() {}
    assert_send::<PendingResponse>();
    assert_send::<CommitTicket>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use si_data::schema::social_schema;
    use si_data::tuple;
    use si_query::parse_cq;

    fn q1() -> ConjunctiveQuery {
        parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap()
    }

    fn small_db() -> Database {
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "NYC"],
                tuple![3, "cat", "LA"],
                tuple![4, "dan", "NYC"],
            ],
        )
        .unwrap();
        db.insert_all(
            "friend",
            vec![tuple![1, 2], tuple![1, 3], tuple![1, 4], tuple![2, 4]],
        )
        .unwrap();
        db
    }

    fn engine(config: EngineConfig) -> Engine {
        Engine::new(small_db(), si_access::facebook_access_schema(5000), config).unwrap()
    }

    fn req(p: i64) -> Request {
        Request::new(q1(), vec!["p".into()], vec![Value::int(p)])
    }

    #[test]
    fn execute_answers_and_caches() {
        let engine = engine(EngineConfig::default());
        let first = engine.execute(&req(1)).unwrap();
        let mut answers = first.answers.clone();
        answers.sort();
        assert_eq!(answers, vec![tuple!["bob"], tuple!["dan"]]);
        assert!(!first.cache_hit);
        assert_eq!(first.epoch, 0);
        assert_eq!(first.static_cost.max_tuples, 10_000);
        // Same shape, different value: plan-cache hit.
        let second = engine.execute(&req(2)).unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.answers, vec![tuple!["dan"]]);
        // Alpha-renamed query: still a hit.
        let renamed = parse_cq(r#"Zed(x, n) :- friend(x, i), person(i, n, "NYC")"#).unwrap();
        let third = engine
            .execute(&Request::new(
                renamed,
                vec!["x".into()],
                vec![Value::int(1)],
            ))
            .unwrap();
        assert!(third.cache_hit);
        let m = engine.metrics();
        assert_eq!(m.requests, 3);
        assert_eq!(m.cache_hits, 2);
        assert_eq!(m.cache_misses, 1);
        assert!(m.accesses.tuples_fetched > 0);
    }

    #[test]
    fn admission_rejects_over_budget_requests() {
        let engine = engine(EngineConfig {
            fetch_budget: Some(9_999),
            ..EngineConfig::default()
        });
        let err = engine.execute(&req(1)).unwrap_err();
        assert_eq!(
            err,
            EngineError::RejectedByBudget {
                budget: 9_999,
                cheapest: 10_000
            }
        );
        assert_eq!(engine.metrics().rejected_by_budget, 1);
        // A generous budget admits.
        let engine = engine_with_budget(Some(10_000));
        assert!(engine.execute(&req(1)).is_ok());
    }

    fn engine_with_budget(fetch_budget: Option<u64>) -> Engine {
        engine(EngineConfig {
            fetch_budget,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn parameter_arity_is_checked() {
        let engine = engine(EngineConfig::default());
        let bad = Request::new(q1(), vec!["p".into()], vec![]);
        assert_eq!(
            engine.execute(&bad).unwrap_err(),
            EngineError::ParameterArity {
                expected: 1,
                actual: 0
            }
        );
    }

    #[test]
    fn commit_advances_epochs_and_refreshes_stats_on_drift() {
        let engine = engine(EngineConfig {
            stats_drift_threshold: 0.0, // every commit drifts
            ..EngineConfig::default()
        });
        assert_eq!(engine.epoch(), 0);
        let answers_before = engine.execute(&req(2)).unwrap();
        let epoch = engine
            .commit(Delta::new().insert("friend", tuple![2, 1]))
            .unwrap();
        assert_eq!(epoch, 1);
        let m = engine.metrics();
        assert_eq!(m.commits, 1);
        assert_eq!(m.stats_refreshes, 1);
        assert_eq!(m.stats_epoch, 1);
        // The cached plan was invalidated (stats epoch moved): next request
        // re-plans, and sees the new data.
        let after = engine.execute(&req(2)).unwrap();
        assert!(!after.cache_hit);
        assert_eq!(after.epoch, 1);
        let mut answers = after.answers.clone();
        answers.sort();
        assert_eq!(answers, vec![tuple!["ann"], tuple!["dan"]]);
        assert_eq!(answers_before.answers, vec![tuple!["dan"]]);
    }

    #[test]
    fn plan_cache_metrics_track_cold_warm_and_invalidated_requests() {
        let engine = engine(EngineConfig {
            stats_drift_threshold: 0.0, // every commit bumps the stats epoch
            ..EngineConfig::default()
        });
        engine.execute(&req(1)).unwrap(); // cold → miss
        engine.execute(&req(2)).unwrap(); // warm (same shape) → hit
        engine
            .commit(Delta::new().insert("friend", tuple![3, 4]))
            .unwrap();
        engine.execute(&req(1)).unwrap(); // invalidated by the epoch bump → miss
        engine.execute(&req(2)).unwrap(); // warm again → hit
        let m = engine.metrics();
        assert_eq!(m.cache_hits, 2);
        assert_eq!(m.cache_misses, 2);
        assert_eq!(m.stats_epoch, 1);
    }

    #[test]
    fn pinned_snapshots_serve_old_versions() {
        let engine = engine(EngineConfig::default());
        let pinned = engine.snapshot();
        engine
            .commit(Delta::new().delete("friend", tuple![1, 2]))
            .unwrap();
        let old = engine.execute_at(&pinned, &req(1)).unwrap();
        let new = engine.execute(&req(1)).unwrap();
        assert_eq!(old.epoch, 0);
        assert_eq!(new.epoch, 1);
        let mut old_answers = old.answers;
        old_answers.sort();
        assert_eq!(old_answers, vec![tuple!["bob"], tuple!["dan"]]);
        assert_eq!(new.answers, vec![tuple!["dan"]]);
    }

    #[test]
    fn execute_at_refuses_epochs_the_store_has_not_committed() {
        // Single-store: a snapshot from another engine's future is refused
        // with a typed error instead of silently serving foreign data.
        let behind = engine(EngineConfig::default());
        let ahead = engine(EngineConfig::default());
        for _ in 0..3 {
            ahead
                .commit(Delta::new().insert("friend", tuple![3, 1]))
                .unwrap();
            ahead
                .commit(Delta::new().delete("friend", tuple![3, 1]))
                .unwrap();
        }
        let future = ahead.snapshot();
        assert_eq!(future.epoch(), 6);
        assert_eq!(
            behind.execute_at(&future, &req(1)).unwrap_err(),
            EngineError::EpochUnavailable {
                requested: 6,
                newest: 0
            }
        );
        // Pins at or behind the store's epoch still serve; the foreign
        // future stays refused with the updated watermark.
        behind
            .commit(Delta::new().insert("friend", tuple![2, 1]))
            .unwrap();
        let pinned = behind.snapshot();
        assert!(behind.execute_at(&pinned, &req(1)).is_ok());
        assert_eq!(
            behind.execute_at(&future, &req(1)).unwrap_err(),
            EngineError::EpochUnavailable {
                requested: 6,
                newest: 1
            }
        );

        // Sharded backends enforce the same guard.
        let behind = sharded_engine(3, EngineConfig::default());
        let ahead = sharded_engine(3, EngineConfig::default());
        ahead
            .commit(Delta::new().insert("friend", tuple![3, 1]))
            .unwrap();
        let future = ahead.snapshot();
        assert_eq!(
            behind.execute_at(&future, &req(1)).unwrap_err(),
            EngineError::EpochUnavailable {
                requested: 1,
                newest: 0
            }
        );
    }

    #[test]
    fn stats_epoch_bump_purges_dead_plan_cache_entries_eagerly() {
        let engine = engine(EngineConfig {
            stats_drift_threshold: 0.0, // every commit bumps the stats epoch
            ..EngineConfig::default()
        });
        engine.execute(&req(1)).unwrap();
        assert_eq!(engine.shared.cache.len(), 1);
        assert_eq!(engine.shared.cache.purged(), 0);
        // The drift-triggered epoch bump reclaims the now-dead entry at the
        // commit itself — no lookups, no capacity pressure required.
        engine
            .commit(Delta::new().insert("friend", tuple![3, 4]))
            .unwrap();
        assert_eq!(engine.shared.cache.purged(), 1);
        assert_eq!(engine.shared.cache.len(), 0);
        // Re-planning under the fresh epoch repopulates and stays put.
        engine.execute(&req(1)).unwrap();
        assert_eq!(engine.shared.cache.len(), 1);
        assert_eq!(engine.shared.cache.purged(), 1);
    }

    /// Boots one [`ShardReplica`] per shard over in-process duplex pipes
    /// and attaches them to the engine.
    fn attach_replica_fleet(engine: &Engine, shards: usize) -> Vec<Arc<ShardReplica>> {
        let mut replicas = Vec::new();
        for shard in 0..shards {
            let (primary_end, replica_end) = si_wire::Duplex::pair();
            let replica = Arc::new(ShardReplica::new(8));
            let conn = Arc::new(si_wire::Connection::new(Arc::new(replica_end)));
            replica.spawn(conn);
            engine.attach_replica(shard, Arc::new(primary_end)).unwrap();
            replicas.push(replica);
        }
        replicas
    }

    #[test]
    fn replicated_execution_matches_local_sharded_execution() {
        let config = EngineConfig {
            materialize_after: u64::MAX, // keep both paths on the plan path
            ..EngineConfig::default()
        };
        let engine = sharded_engine(2, config);
        let replicas = attach_replica_fleet(&engine, 2);
        for p in 1..=4 {
            let local = engine.execute(&req(p)).unwrap();
            let remote = engine.execute_replicated(&req(p)).unwrap();
            let mut a = local.answers.clone();
            let mut b = remote.answers.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b, "p={p}");
            assert_eq!(local.accesses, remote.accesses, "p={p}");
            assert_eq!(local.epoch, remote.epoch);
            assert_eq!(local.static_cost, remote.static_cost);
        }
        // Read-your-writes: the commit is visible through the replicas
        // immediately after `commit` returns.
        engine
            .commit(Delta::new().insert("friend", tuple![2, 1]))
            .unwrap();
        let local = engine.execute(&req(2)).unwrap();
        let remote = engine.execute_replicated(&req(2)).unwrap();
        let mut a = local.answers.clone();
        let mut b = remote.answers.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(local.accesses, remote.accesses);
        assert_eq!(remote.epoch, 1);
        for replica in &replicas {
            assert_eq!(replica.newest_epoch(), Some(1));
        }
        let statuses = engine.replica_statuses();
        assert_eq!(statuses.len(), 2);
        for status in statuses {
            assert!(status.connected);
            assert_eq!(status.acked_epoch, 1);
        }
    }

    #[test]
    fn lagging_replica_refuses_then_serves_after_catching_up() {
        let engine = sharded_engine(2, EngineConfig::default());
        let replicas = attach_replica_fleet(&engine, 2);
        // Freeze shard 0's WAL application and commit: the replica cannot
        // acknowledge the new epoch, so the epoch-wait times out with a
        // typed refusal instead of serving a stale version.
        replicas[0].pause();
        engine.set_replica_epoch_wait(Duration::from_millis(50));
        engine
            .commit(Delta::new().insert("friend", tuple![2, 1]))
            .unwrap();
        assert_eq!(
            engine.execute_replicated(&req(2)).unwrap_err(),
            EngineError::EpochUnavailable {
                requested: 1,
                newest: 0
            }
        );
        // Resume: the queued record applies, the ack lands, and the same
        // read now serves the committed epoch.
        replicas[0].resume();
        engine.set_replica_epoch_wait(Duration::from_secs(5));
        let served = engine.execute_replicated(&req(2)).unwrap();
        assert_eq!(served.epoch, 1);
        let mut answers = served.answers;
        answers.sort();
        assert_eq!(answers, vec![tuple!["ann"], tuple!["dan"]]);
    }

    #[test]
    fn submit_serves_through_the_pool() {
        let engine = engine(EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        });
        let pending: Vec<PendingResponse> =
            (1..=4).map(|p| engine.submit(req(p)).unwrap()).collect();
        let responses: Vec<QueryResponse> =
            pending.into_iter().map(|p| p.wait().unwrap()).collect();
        assert_eq!(responses.len(), 4);
        let mut a0 = responses[0].answers.clone();
        a0.sort();
        assert_eq!(a0, vec![tuple!["bob"], tuple!["dan"]]);
        assert!(responses[3].answers.is_empty());
        assert_eq!(engine.metrics().requests, 4);
    }

    #[test]
    fn materialized_answers_serve_with_zero_accesses_and_survive_commits() {
        let engine = engine(EngineConfig {
            materialize_capacity: 16,
            materialize_after: 1,
            ..EngineConfig::default()
        });
        let first = engine.execute(&req(1)).unwrap();
        assert!(!first.materialized);
        assert!(first.accesses.tuples_fetched > 0);
        // Admitted on the first execution (threshold 1): the repeat is
        // served from maintained answers without touching data.
        let second = engine.execute(&req(1)).unwrap();
        assert!(second.materialized);
        assert!(!second.cache_hit);
        assert_eq!(second.accesses, MeterSnapshot::default());
        assert_eq!(second.answers, first.answers);
        assert_eq!(second.static_cost, first.static_cost);

        // A commit touching `friend` is *maintained* into the entry: the
        // next request is still a materialized hit and sees the new answer.
        engine
            .commit(Delta::new().insert("friend", tuple![1, 1]))
            .unwrap();
        let third = engine.execute(&req(1)).unwrap();
        assert!(third.materialized, "maintenance must keep the entry warm");
        assert_eq!(third.epoch, 1);
        let mut answers = third.answers.clone();
        answers.sort();
        assert_eq!(answers, vec![tuple!["ann"], tuple!["bob"], tuple!["dan"]]);

        let m = engine.metrics();
        assert_eq!(m.materialized_hits, 2);
        assert_eq!(m.materialized_entries, 1);
        assert_eq!(m.maintenance_runs, 1);
        assert_eq!(m.maintenance_fallbacks, 0);
        // The maintenance work was bounded (a point probe, not a re-run) and
        // is accounted on the write path, not in the serve meter.
        assert!(m.maintenance_accesses.tuples_fetched >= 1);
        assert!(m.maintenance_accesses.tuples_fetched <= 4);
        assert_eq!(m.maintenance_accesses.full_scans, 0);
    }

    #[test]
    fn materialization_threshold_counts_executions() {
        let engine = engine(EngineConfig {
            materialize_capacity: 16,
            materialize_after: 3,
            ..EngineConfig::default()
        });
        assert!(!engine.execute(&req(1)).unwrap().materialized);
        assert!(!engine.execute(&req(1)).unwrap().materialized);
        // Third execution admits; the fourth is the first materialized hit.
        assert!(!engine.execute(&req(1)).unwrap().materialized);
        assert!(engine.execute(&req(1)).unwrap().materialized);
        // A different parameter value is a separate hotness counter.
        assert!(!engine.execute(&req(2)).unwrap().materialized);
    }

    #[test]
    fn uneconomical_entries_are_evicted_back_to_the_plan_path() {
        let engine = engine(EngineConfig {
            materialize_capacity: 16,
            materialize_after: 1,
            ..EngineConfig::default()
        });
        // Person 5 has no friends: re-execution fetches 0 tuples, so *any*
        // maintenance work is costlier than recomputing on demand.
        let zero = engine.execute(&req(5)).unwrap();
        assert_eq!(zero.accesses.tuples_fetched, 0);
        assert!(engine.execute(&req(5)).unwrap().materialized);
        // The commit gives person 5 a friend; maintenance fetches ≥ 1 tuple
        // and the cost comparison evicts the entry.
        engine
            .commit(Delta::new().insert("friend", tuple![5, 2]))
            .unwrap();
        let m = engine.metrics();
        assert_eq!(m.maintenance_runs, 1);
        assert_eq!(m.materialized_evictions, 1);
        assert_eq!(m.materialized_entries, 0);
        // The next request falls back to the bounded-plan path — with the
        // maintained-then-evicted answer still correct via re-execution.
        let after = engine.execute(&req(5)).unwrap();
        assert!(!after.materialized);
        assert_eq!(after.answers, vec![tuple!["bob"]]);
    }

    #[test]
    fn execute_at_old_versions_bypasses_materialized_answers() {
        let engine = engine(EngineConfig {
            materialize_capacity: 16,
            materialize_after: 1,
            ..EngineConfig::default()
        });
        engine.execute(&req(1)).unwrap();
        let pinned = engine.snapshot();
        engine
            .commit(Delta::new().insert("friend", tuple![1, 1]))
            .unwrap();
        // The entry was maintained to epoch 1; the pinned epoch-0 read must
        // not be served from it.
        let old = engine.execute_at(&pinned, &req(1)).unwrap();
        assert!(!old.materialized);
        let mut answers = old.answers;
        answers.sort();
        assert_eq!(answers, vec![tuple!["bob"], tuple!["dan"]]);
        // The current version is served from the maintained entry.
        let new = engine.execute(&req(1)).unwrap();
        assert!(new.materialized);
        let mut answers = new.answers;
        answers.sort();
        assert_eq!(answers, vec![tuple!["ann"], tuple!["bob"], tuple!["dan"]]);
    }

    #[test]
    fn sharded_execution_matches_unsharded() {
        let sharded = engine(EngineConfig {
            shards_per_query: 4,
            ..EngineConfig::default()
        });
        let plain = engine(EngineConfig::default());
        let a = sharded.execute(&req(1)).unwrap();
        let b = plain.execute(&req(1)).unwrap();
        assert_eq!(a.answers, b.answers);
        assert_eq!(a.accesses, b.accesses);
    }

    fn social_partition() -> PartitionMap {
        PartitionMap::new()
            .with("person", "id")
            .with("friend", "id1")
            .with("visit", "id")
            .with("restr", "rid")
    }

    fn sharded_engine(shards: usize, config: EngineConfig) -> Engine {
        Engine::new_sharded(
            small_db(),
            si_access::facebook_access_schema(5000),
            social_partition(),
            shards,
            config,
        )
        .unwrap()
    }

    #[test]
    fn data_sharded_engine_is_answer_epoch_and_meter_identical() {
        let plain = engine(EngineConfig::default());
        for shards in [1usize, 2, 3, 8] {
            let sharded = sharded_engine(shards, EngineConfig::default());
            assert_eq!(sharded.data_shards(), shards);
            for p in 1..=4 {
                let a = sharded.execute(&req(p)).unwrap();
                let b = plain.execute(&req(p)).unwrap();
                let mut sa = a.answers.clone();
                let mut sb = b.answers.clone();
                sa.sort();
                sb.sort();
                assert_eq!(sa, sb, "shards={shards} p={p}");
                assert_eq!(a.accesses, b.accesses, "shards={shards} p={p}");
                assert_eq!(a.epoch, b.epoch);
                assert_eq!(a.static_cost, b.static_cost);
            }
            // Same commit, same epochs, same post-commit answers.
            let delta = Delta::new().insert("friend", tuple![2, 1]).clone();
            let es = sharded.commit(&delta).unwrap();
            assert_eq!(es, 1);
            let after = sharded.execute(&req(2)).unwrap();
            let mut answers = after.answers.clone();
            answers.sort();
            assert_eq!(answers, vec![tuple!["ann"], tuple!["dan"]]);
            assert_eq!(after.epoch, 1);
        }
        assert_eq!(plain.data_shards(), 1);
        assert!(plain.shard_stats().is_empty());
    }

    #[test]
    fn sharded_engine_reports_shard_balance_and_merged_snapshots() {
        let engine = sharded_engine(3, EngineConfig::default());
        let stats = engine.shard_stats();
        assert_eq!(stats.len(), 3);
        assert_eq!(
            stats.iter().map(|s| s.rows).sum::<usize>(),
            small_db().size()
        );
        let snapshot = engine.snapshot();
        assert_eq!(snapshot.size(), small_db().size());
        // Merged statistics equal unsharded collection exactly.
        assert_eq!(snapshot.statistics(), small_db().statistics());
        let merged = snapshot.to_database();
        assert!(merged.contains_database(&small_db()));
        assert_eq!(merged.size(), small_db().size());
    }

    #[test]
    fn sharded_engine_serves_pinned_old_versions() {
        let engine = sharded_engine(3, EngineConfig::default());
        let pinned = engine.snapshot();
        engine
            .commit(Delta::new().delete("friend", tuple![1, 2]))
            .unwrap();
        let old = engine.execute_at(&pinned, &req(1)).unwrap();
        let new = engine.execute(&req(1)).unwrap();
        assert_eq!(old.epoch, 0);
        assert_eq!(new.epoch, 1);
        let mut old_answers = old.answers;
        old_answers.sort();
        assert_eq!(old_answers, vec![tuple!["bob"], tuple!["dan"]]);
        assert_eq!(new.answers, vec![tuple!["dan"]]);
    }

    #[test]
    fn sharded_engine_maintains_materialized_answers_per_shard_delta() {
        let engine = sharded_engine(
            3,
            EngineConfig {
                materialize_capacity: 16,
                materialize_after: 1,
                ..EngineConfig::default()
            },
        );
        let first = engine.execute(&req(1)).unwrap();
        assert!(!first.materialized);
        assert!(engine.execute(&req(1)).unwrap().materialized);
        // A multi-tuple commit that splits across shards is maintained into
        // the entry; the next request is still a zero-access hit.
        let mut delta = Delta::new();
        delta.insert("friend", tuple![1, 1]);
        delta.insert("visit", tuple![2, 10]);
        engine.commit(&delta).unwrap();
        let third = engine.execute(&req(1)).unwrap();
        assert!(third.materialized, "maintenance must keep the entry warm");
        assert_eq!(third.epoch, 1);
        let mut answers = third.answers.clone();
        answers.sort();
        assert_eq!(answers, vec![tuple!["ann"], tuple!["bob"], tuple!["dan"]]);
        let m = engine.metrics();
        assert_eq!(m.maintenance_runs, 1);
        assert_eq!(m.maintenance_fallbacks, 0);
        assert_eq!(m.maintenance_accesses.full_scans, 0);
    }

    #[test]
    fn group_commit_coalesces_into_one_epoch_bump() {
        let engine = engine(EngineConfig::default());
        let deltas = vec![
            Delta::new().insert("friend", tuple![3, 1]).clone(),
            Delta::new().delete("friend", tuple![3, 1]).clone(),
            Delta::new().insert("friend", tuple![3, 1]).clone(),
            Delta::new().insert("friend", tuple![4, 1]).clone(),
        ];
        let outcomes = engine.commit_group(&deltas);
        assert_eq!(outcomes.len(), 4);
        for outcome in &outcomes {
            assert_eq!(outcome.as_ref().copied(), Ok(1), "one shared epoch");
        }
        assert_eq!(engine.epoch(), 1);
        let m = engine.metrics();
        assert_eq!(m.commits, 4);
        assert_eq!(m.group_commits, 1);
        assert_eq!(m.deltas_coalesced, 4);
        // The final state is what four sequential commits would have left.
        let answers = engine.execute(&req(3)).unwrap().answers;
        let mut answers = answers;
        answers.sort();
        assert_eq!(answers, vec![tuple!["ann"]]);
        assert_eq!(
            engine.execute(&req(4)).unwrap().answers,
            vec![tuple!["ann"]]
        );
    }

    #[test]
    fn group_commit_rejects_bad_deltas_individually() {
        let engine = engine(EngineConfig::default());
        let deltas = vec![
            // Valid: new edge.
            Delta::new().insert("friend", tuple![3, 1]).clone(),
            // Invalid: deletes a tuple that does not exist (not even after
            // the first delta).
            Delta::new().delete("friend", tuple![9, 9]).clone(),
            // Valid, and depends on the first delta's insertion.
            Delta::new().delete("friend", tuple![3, 1]).clone(),
        ];
        let outcomes = engine.commit_group(&deltas);
        assert_eq!(outcomes[0].as_ref().copied(), Ok(1));
        assert!(matches!(outcomes[1], Err(EngineError::Data(_))));
        assert_eq!(outcomes[2].as_ref().copied(), Ok(1));
        let m = engine.metrics();
        assert_eq!(m.commits, 2);
        assert_eq!(m.group_commits, 1);
        assert_eq!(m.deltas_coalesced, 2);
        // Net effect of the accepted pair is empty: state unchanged.
        assert!(engine.execute(&req(3)).unwrap().answers.is_empty());
    }

    #[test]
    fn sync_commit_is_a_group_of_one() {
        let engine = engine(EngineConfig::default());
        engine
            .commit(Delta::new().insert("friend", tuple![2, 1]))
            .unwrap();
        let m = engine.metrics();
        assert_eq!(m.commits, 1);
        assert_eq!(m.group_commits, 1);
        assert_eq!(m.deltas_coalesced, 0, "a pass of one coalesces nothing");
        // Error kinds match the sequential path.
        let err = engine
            .commit(Delta::new().delete("friend", tuple![9, 9]))
            .unwrap_err();
        assert!(matches!(err, EngineError::Data(_)));
        assert_eq!(engine.epoch(), 1);
    }

    #[test]
    fn commit_async_coalesces_queued_deltas() {
        let engine = engine(EngineConfig {
            commit_linger: Duration::from_millis(500),
            commit_batch_max: 64,
            ..EngineConfig::default()
        });
        let tickets: Vec<CommitTicket> = (0..8)
            .map(|i| {
                engine
                    .commit_async(Delta::new().insert("friend", tuple![4, i]).clone())
                    .unwrap()
            })
            .collect();
        engine.flush_commits().unwrap();
        for ticket in tickets {
            assert_eq!(ticket.wait().unwrap(), 1, "all eight share one epoch");
        }
        let m = engine.metrics();
        assert_eq!(m.snapshot_epoch, 1);
        assert_eq!(m.commits, 8);
        assert_eq!(m.group_commits, 1);
        assert_eq!(m.deltas_coalesced, 8);
    }

    #[test]
    fn dropping_the_engine_resolves_every_queued_commit_ticket() {
        // A long linger guarantees teardown lands while the committer is
        // still gathering: shutdown must drain the queue, not strand it.
        let engine = engine(EngineConfig {
            commit_linger: Duration::from_secs(5),
            commit_batch_max: 3,
            ..EngineConfig::default()
        });
        let tickets: Vec<CommitTicket> = (0..8)
            .map(|i| {
                engine
                    .commit_async(Delta::new().insert("friend", tuple![4, i]).clone())
                    .unwrap()
            })
            .collect();
        drop(engine);
        let mut epochs = Vec::new();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let epoch = ticket
                .wait()
                .unwrap_or_else(|e| panic!("ticket {i} stranded by shutdown: {e:?}"));
            epochs.push(epoch);
        }
        // Every delta was applied, in order, across the drained batches.
        assert!(epochs.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*epochs.last().unwrap(), 3, "8 deltas in batches of 3");
    }

    #[test]
    fn dropping_a_durable_engine_resolves_every_queued_commit_ticket() {
        let disk = SimDisk::new();
        let engine = durable_engine(
            &disk,
            EngineConfig {
                commit_linger: Duration::from_secs(5),
                commit_batch_max: 64,
                ..EngineConfig::default()
            },
        );
        let tickets: Vec<CommitTicket> = (0..4)
            .map(|i| {
                engine
                    .commit_async(Delta::new().insert("friend", tuple![4, i]).clone())
                    .unwrap()
            })
            .collect();
        drop(engine);
        for (i, ticket) in tickets.into_iter().enumerate() {
            assert_eq!(
                ticket
                    .wait()
                    .unwrap_or_else(|e| panic!("durable ticket {i} stranded by shutdown: {e:?}")),
                1,
                "the drained batch shares one epoch"
            );
        }
        // The drained commits are durable: recovery sees all four rows.
        let recovered = Engine::recover(
            Box::new(disk),
            si_access::facebook_access_schema(5000),
            EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(recovered.epoch(), 1);
        // Person 4's new friends 0..4 resolve to the NYC persons 1 and 2.
        let mut answers = recovered.execute(&req(4)).unwrap().answers;
        answers.sort();
        assert_eq!(answers, vec![tuple!["ann"], tuple!["bob"]]);
    }

    #[test]
    fn flush_commits_on_an_idle_queue_returns_immediately() {
        let engine = engine(EngineConfig::default());
        engine.flush_commits().unwrap();
        assert_eq!(engine.metrics().group_commits, 0);
    }

    #[test]
    fn execute_batch_shares_the_fetch_and_attributes_exact_shares() {
        let engine = engine(EngineConfig::default());
        let baseline = engine.execute(&req(1)).unwrap();
        let fetch_cost = baseline.accesses;
        assert!(fetch_cost.tuples_fetched > 0);
        let before = engine.metrics().accesses;

        let batch: Vec<Request> = (0..5).map(|_| req(1)).collect();
        let responses = engine.execute_batch(&batch);
        let responses: Vec<QueryResponse> = responses.into_iter().map(|r| r.unwrap()).collect();
        for response in &responses {
            assert_eq!(response.answers, baseline.answers);
            assert!(!response.materialized);
        }
        // The engine meter was charged the fetch cost ONCE for the group.
        let after = engine.metrics().accesses;
        assert_eq!(
            after.tuples_fetched - before.tuples_fetched,
            fetch_cost.tuples_fetched
        );
        // Per-response attributed shares sum to exactly the fetch cost.
        let summed: u64 = responses.iter().map(|r| r.accesses.tuples_fetched).sum();
        assert_eq!(summed, fetch_cost.tuples_fetched);
        // The first sharer carries the remainder; later ones report C/5.
        assert_eq!(
            responses[1].accesses.tuples_fetched,
            fetch_cost.tuples_fetched / 5
        );
        let m = engine.metrics();
        assert_eq!(m.shared_fetches, 1);
        assert_eq!(m.batched_requests, 5);
        assert_eq!(m.requests, 6);
    }

    #[test]
    fn execute_batch_mixes_groups_and_singletons_in_request_order() {
        let engine = engine(EngineConfig::default());
        let batch = vec![req(1), req(2), req(1), req(3), req(1)];
        let responses = engine.execute_batch(&batch);
        assert_eq!(responses.len(), 5);
        for (i, p) in [(0usize, 1i64), (1, 2), (2, 1), (3, 3), (4, 1)] {
            let lone = engine.execute(&req(p)).unwrap();
            assert_eq!(
                responses[i].as_ref().unwrap().answers,
                lone.answers,
                "i={i}"
            );
        }
        let m = engine.metrics();
        // One group of three plus two singletons.
        assert_eq!(m.shared_fetches, 1);
        assert_eq!(m.batched_requests, 3);
    }

    #[test]
    fn execute_batch_matches_unbatched_materialization_exactly() {
        let config = EngineConfig {
            materialize_capacity: 16,
            materialize_after: 2,
            ..EngineConfig::default()
        };
        let batched = engine(config.clone());
        let unbatched = engine(config);
        let batch: Vec<Request> = (0..4).map(|_| req(1)).collect();
        let batched_responses: Vec<QueryResponse> = batched
            .execute_batch(&batch)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        let unbatched_responses: Vec<QueryResponse> = batch
            .iter()
            .map(|r| unbatched.execute(r).unwrap())
            .collect();
        for (b, u) in batched_responses.iter().zip(&unbatched_responses) {
            assert_eq!(b.answers, u.answers);
            assert_eq!(b.materialized, u.materialized);
            assert_eq!(b.cache_hit, u.cache_hit);
        }
        // Members 1–2 execute (hotness below threshold, then admission),
        // members 3–4 are materialized hits — in both engines.
        assert_eq!(
            batched.metrics().materialized_hits,
            unbatched.metrics().materialized_hits
        );
        assert_eq!(batched.metrics().materialized_hits, 2);
        // The two executing members shared one fetch.
        assert_eq!(batched.metrics().shared_fetches, 1);
    }

    #[test]
    fn batched_pool_submissions_answer_identically_and_release_queue_slots() {
        let engine = engine(EngineConfig {
            workers: 2,
            batch_requests: true,
            ..EngineConfig::default()
        });
        let pending: Vec<PendingResponse> = (0..12)
            .map(|i| engine.submit(req(1 + (i % 2))).unwrap())
            .collect();
        let responses: Vec<QueryResponse> =
            pending.into_iter().map(|p| p.wait().unwrap()).collect();
        for (i, response) in responses.iter().enumerate() {
            let lone = engine.execute(&req(1 + (i as i64 % 2))).unwrap();
            assert_eq!(response.answers, lone.answers, "i={i}");
        }
        // Every reply was delivered, so every queue slot comes back.  The
        // worker releases the slot just *after* sending the reply, so give
        // the last decrement a moment to land.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while engine.shared.queued.load(Ordering::Relaxed) != 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "queue slots leaked: {} still held",
                engine.shared.queued.load(Ordering::Relaxed)
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn queue_depth_gauge_is_bounded_by_max_queue_and_excess_is_shed() {
        let engine = engine(EngineConfig {
            workers: 1,
            max_queue: 2,
            ..EngineConfig::default()
        });
        // Wedge the single worker mid-request: every serve takes the stats
        // read lock inside `plan_for`, so holding the write lock here parks
        // the pool deterministically with its queue slots still held.
        let gate = engine.shared.stats.write().expect("stats lock");
        let a = engine.submit(req(1)).unwrap();
        let b = engine.submit(req(2)).unwrap();
        // The wedged request shows up on the in-flight gauge once the worker
        // picks it up (it enters the serve path before blocking on stats).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while engine.shared.telemetry.in_flight.load(Ordering::Relaxed) != 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "worker never entered the serve path"
            );
            std::thread::yield_now();
        }
        // Both slots are held, so the third submission is shed — and the
        // gauge's backing counter sits exactly at the bound, never past it
        // (`metrics()` itself needs the stats lock this test is holding, so
        // the counter is read directly here).
        let err = engine.submit(req(3)).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Overloaded {
                queued: 2,
                max_queue: 2
            }
        ));
        assert_eq!(engine.shared.queued.load(Ordering::Relaxed), 2);
        drop(gate);
        a.wait().unwrap();
        b.wait().unwrap();
        // Replies delivered: the queue drains, the gauges return to zero and
        // the shed is visible both on `metrics()` and the rendered page.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let m = engine.metrics();
            assert!(
                m.queue_depth <= 2,
                "queue depth {} past bound",
                m.queue_depth
            );
            if m.queue_depth == 0 && m.in_flight == 0 {
                assert_eq!(m.shed_overload, 1);
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "queue slots leaked: depth {}",
                m.queue_depth
            );
            std::thread::yield_now();
        }
        let page = engine.telemetry().render();
        assert!(page.contains("si_queue_depth 0"));
        assert!(page.contains("si_in_flight 0"));
        assert!(page.contains("si_shed_overload_total 1"));
    }

    #[test]
    fn metrics_epoch_pair_reads_coherently_under_concurrent_commits() {
        const COMMITS: u64 = 200;
        // Drift threshold 0 re-collects statistics on every commit, so each
        // commit bumps both epochs — the tightest possible interleaving for
        // the coherence contract (`stats_epoch <= snapshot_epoch`, exact
        // equality at rest).
        let engine = engine(EngineConfig {
            stats_drift_threshold: 0.0,
            ..EngineConfig::default()
        });
        std::thread::scope(|s| {
            let committer = s.spawn(|| {
                for i in 0..COMMITS {
                    let mut delta = Delta::new();
                    if i % 2 == 0 {
                        delta.insert("friend", tuple![9, 1]);
                    } else {
                        delta.delete("friend", tuple![9, 1]);
                    }
                    engine.commit(&delta).unwrap();
                }
            });
            loop {
                let m = engine.metrics();
                // The acquire pair can never observe a fresh statistics
                // epoch against a stale snapshot epoch.
                assert!(
                    m.stats_epoch <= m.snapshot_epoch,
                    "incoherent read: stats epoch {} vs snapshot epoch {}",
                    m.stats_epoch,
                    m.snapshot_epoch
                );
                if m.snapshot_epoch >= COMMITS {
                    break;
                }
                std::thread::yield_now();
            }
            committer.join().unwrap();
        });
        // At rest the pair is exact, not merely ordered: every commit
        // drifted, so both epochs advanced in lock-step.
        let m = engine.metrics();
        assert_eq!(m.snapshot_epoch, COMMITS);
        assert_eq!(m.stats_epoch, COMMITS);
        assert_eq!(m.commits, COMMITS);
        assert_eq!(m.stats_refreshes, COMMITS);
    }

    #[test]
    fn sharded_engine_group_commit_and_batched_serving_match_unsharded() {
        let sharded = sharded_engine(3, EngineConfig::default());
        let plain = engine(EngineConfig::default());
        let deltas = vec![
            Delta::new().insert("friend", tuple![3, 1]).clone(),
            Delta::new().delete("friend", tuple![3, 1]).clone(),
            Delta::new().insert("visit", tuple![2, 10]).clone(),
        ];
        let a = sharded.commit_group(&deltas);
        let b = plain.commit_group(&deltas);
        assert!(a.iter().all(|r| r.as_ref().copied() == Ok(1)));
        assert!(b.iter().all(|r| r.as_ref().copied() == Ok(1)));
        let batch: Vec<Request> = (0..3).map(|_| req(1)).collect();
        for (s, p) in sharded
            .execute_batch(&batch)
            .into_iter()
            .zip(plain.execute_batch(&batch))
        {
            let mut sa = s.unwrap().answers;
            let mut pa = p.unwrap().answers;
            sa.sort();
            pa.sort();
            assert_eq!(sa, pa);
        }
        assert_eq!(sharded.metrics().shared_fetches, 1);
    }

    #[test]
    fn sharded_engine_composes_with_morsel_parallelism() {
        let engine = sharded_engine(
            3,
            EngineConfig {
                shards_per_query: 4,
                ..EngineConfig::default()
            },
        );
        let plain = engine_with_budget(None);
        let a = engine.execute(&req(1)).unwrap();
        let b = plain.execute(&req(1)).unwrap();
        let mut sa = a.answers.clone();
        let mut sb = b.answers.clone();
        sa.sort();
        sb.sort();
        assert_eq!(sa, sb);
        assert_eq!(a.accesses, b.accesses);
    }

    use si_durability::SimDisk;

    fn durable_engine(disk: &SimDisk, config: EngineConfig) -> Engine {
        Engine::new_durable(
            small_db(),
            si_access::facebook_access_schema(5000),
            Box::new(disk.clone()),
            config,
        )
        .unwrap()
    }

    #[test]
    fn durable_engine_logs_commits_and_recovers_identically() {
        let disk = SimDisk::new();
        let engine = durable_engine(&disk, EngineConfig::default());
        assert!(engine.is_durable());
        let before_crash = engine.execute(&req(1)).unwrap();
        engine
            .commit(Delta::new().insert("friend", tuple![3, 1]))
            .unwrap();
        engine
            .commit(Delta::new().insert("person", tuple![9, "eve", "NYC"]))
            .unwrap();
        let m = engine.metrics();
        assert_eq!(m.wal_records, 2);
        assert_eq!(m.checkpoints, 1); // the initial one
        assert_eq!(m.wal_syncs, 1 + 2); // initial checkpoint + 2 commits
        let pre = engine.execute(&req(3)).unwrap();
        drop(engine);

        let recovered = Engine::recover(
            Box::new(disk),
            si_access::facebook_access_schema(5000),
            EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(recovered.epoch(), 2);
        let post = recovered.execute(&req(3)).unwrap();
        let mut a = pre.answers.clone();
        let mut b = post.answers.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(pre.epoch, post.epoch);
        // Statistics were re-collected from the recovered data, so the
        // recovered engine plans like the pre-crash one.
        assert_eq!(pre.static_cost, post.static_cost);
        // The recovered WAL keeps appending where the durable history ends.
        recovered
            .commit(Delta::new().insert("visit", tuple![2, 10]))
            .unwrap();
        assert_eq!(recovered.epoch(), 3);
        let _ = before_crash;
    }

    #[test]
    fn durable_engine_auto_checkpoints_and_group_commits_share_one_record() {
        let disk = SimDisk::new();
        let engine = durable_engine(
            &disk,
            EngineConfig {
                durability: Some(si_durability::DurabilityConfig {
                    checkpoint_every: 2,
                    keep_checkpoints: 1,
                }),
                ..EngineConfig::default()
            },
        );
        // One group of three deltas: one WAL record, one fsync.
        let deltas = vec![
            Delta::new().insert("friend", tuple![3, 1]).clone(),
            Delta::new().insert("friend", tuple![3, 2]).clone(),
            Delta::new().insert("visit", tuple![2, 10]).clone(),
        ];
        for r in engine.commit_group(&deltas) {
            r.unwrap();
        }
        let m = engine.metrics();
        assert_eq!((m.commits, m.wal_records), (3, 1));
        assert_eq!(m.checkpoints, 1);

        // Second pass trips `checkpoint_every = 2`.
        engine
            .commit(Delta::new().insert("friend", tuple![4, 1]))
            .unwrap();
        assert_eq!(engine.metrics().checkpoints, 2);

        // Recovery starts from that checkpoint: nothing left to replay.
        drop(engine);
        let recovered = Engine::recover(
            Box::new(disk),
            si_access::facebook_access_schema(5000),
            EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(recovered.epoch(), 2);
    }

    #[test]
    fn sharded_durable_engine_recovers_layout_and_shard_epochs() {
        let disk = SimDisk::new();
        let durable = Engine::new_sharded_durable(
            small_db(),
            si_access::facebook_access_schema(5000),
            social_partition(),
            3,
            Box::new(disk.clone()),
            EngineConfig::default(),
        )
        .unwrap();
        durable
            .commit(Delta::new().insert("friend", tuple![3, 1]))
            .unwrap();
        drop(durable);
        let recovered = Engine::recover(
            Box::new(disk),
            si_access::facebook_access_schema(5000),
            EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(recovered.data_shards(), 3);
        let snapshot = recovered.snapshot();
        assert_eq!(snapshot.shard_count(), 3);
        // Coherence: every shard's local epoch equals the global epoch.
        assert_eq!(snapshot.shard_epochs(), vec![1, 1, 1]);
        let plain = engine(EngineConfig::default());
        plain
            .commit(Delta::new().insert("friend", tuple![3, 1]))
            .unwrap();
        let mut a = recovered.execute(&req(3)).unwrap().answers;
        let mut b = plain.execute(&req(3)).unwrap().answers;
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn wal_failure_fails_the_commit_and_leaves_the_store_untouched() {
        let disk = SimDisk::new();
        let engine = durable_engine(&disk, EngineConfig::default());
        engine
            .commit(Delta::new().insert("friend", tuple![3, 1]))
            .unwrap();
        disk.kill_after(disk.written()); // every further write dies
        let err = engine
            .commit(Delta::new().insert("friend", tuple![4, 1]))
            .unwrap_err();
        assert!(matches!(err, EngineError::Durability(_)));
        // Nothing undurable is served: the store still sits at epoch 1.
        assert_eq!(engine.epoch(), 1);
        assert_eq!(engine.metrics().wal_records, 1);
    }

    #[test]
    fn checkpoint_requires_a_durable_engine() {
        let plain = engine(EngineConfig::default());
        assert!(matches!(
            plain.checkpoint().unwrap_err(),
            EngineError::Durability(_)
        ));
        let disk = SimDisk::new();
        let durable = durable_engine(&disk, EngineConfig::default());
        durable
            .commit(Delta::new().insert("friend", tuple![3, 1]))
            .unwrap();
        durable.checkpoint().unwrap();
        assert_eq!(durable.metrics().checkpoints, 2);
    }

    /// The subscribed key of `req(p)`.
    fn sub_key(p: i64) -> MaterializedKey {
        (canonicalize(&q1(), &["p".into()]).key, vec![Value::int(p)])
    }

    /// A query whose maintenance over `friend` is broken both ways: the
    /// rest-query `visit(b, c)` has no access constraint, so the Corollary
    /// 5.3 gate rejects it when consulted, and a run slipping past a cached
    /// verdict errors when it plans the rest-query lazily.
    fn unmaintainable_query() -> ConjunctiveQuery {
        parse_cq("B(a, c) :- friend(a, b), visit(b, c)").unwrap()
    }

    #[test]
    fn subscriptions_stream_epoch_stamped_changesets() {
        let engine = engine(EngineConfig::default());
        let sub = engine.subscribe(&req(1)).unwrap();
        // Registration hands the full answer at the fenced epoch.
        let mut state: Vec<Tuple> = match sub.try_recv().expect("initial resync") {
            AnswerUpdate::Resync { epoch, full_answer } => {
                assert_eq!(epoch, 0);
                let mut full = full_answer.as_ref().clone();
                full.sort();
                assert_eq!(full, vec![tuple!["bob"], tuple!["dan"]]);
                full
            }
            other => panic!("expected the initial resync, got {other:?}"),
        };
        // A commit that changes the answer pushes one epoch-stamped delta.
        engine
            .commit(Delta::new().insert("friend", tuple![1, 1]))
            .unwrap();
        match sub.try_recv().expect("change-set for epoch 1") {
            AnswerUpdate::Changes(set) => {
                assert_eq!(set.epoch, 1);
                assert_eq!(set.added, vec![tuple!["ann"]]);
                assert!(set.removed.is_empty());
                AnswerUpdate::Changes(set).apply_to(&mut state);
            }
            other => panic!("expected a change-set, got {other:?}"),
        }
        // A commit that does not touch the answer is elided entirely.
        engine
            .commit(Delta::new().insert("friend", tuple![3, 4]))
            .unwrap();
        assert!(sub.try_recv().is_none(), "no-op commits must be elided");
        // A deletion flows through `removed`.
        engine
            .commit(Delta::new().delete("friend", tuple![1, 2]))
            .unwrap();
        match sub.try_recv().expect("change-set for epoch 3") {
            AnswerUpdate::Changes(set) => {
                assert_eq!(set.epoch, 3);
                assert!(set.added.is_empty());
                assert_eq!(set.removed, vec![tuple!["bob"]]);
                AnswerUpdate::Changes(set).apply_to(&mut state);
            }
            other => panic!("expected a change-set, got {other:?}"),
        }
        // The replayed state equals what a cold query answers now.
        let mut cold = engine.execute(&req(1)).unwrap().answers;
        cold.sort();
        assert_eq!(state, cold);
        let m = engine.metrics();
        assert_eq!(m.subscribers, 1);
        assert_eq!(m.subscription_deliveries, 2);
        assert_eq!(m.subscription_resyncs, 1);
        assert_eq!(m.subscription_overflows, 0);
        // Subscription seeding is write-path work, not a served request.
        assert_eq!(m.requests, 1);
        // Dropping the handle unregisters and unpins.
        drop(sub);
        assert_eq!(engine.metrics().subscribers, 0);
        assert!(engine.subscriptions().is_empty());
    }

    #[test]
    fn fallback_by_drop_notifies_subscribers_on_each_trigger() {
        // Trigger 1 — stale entry: a commit raced the recording, the answers
        // are for some other epoch and cannot be maintained.
        let stale = engine(EngineConfig::default());
        let sub = stale.subscribe(&req(1)).unwrap();
        sub.drain();
        stale
            .shared
            .materialized
            .force_valid_epoch(&sub_key(1), 999);
        stale
            .commit(Delta::new().insert("friend", tuple![2, 3]))
            .unwrap();
        assert_eq!(stale.metrics().maintenance_fallbacks, 1);
        match sub.try_recv().expect("resync after the stale drop") {
            AnswerUpdate::Resync { epoch, full_answer } => {
                assert_eq!(epoch, 1);
                let mut full = full_answer.as_ref().clone();
                full.sort();
                assert_eq!(full, vec![tuple!["bob"], tuple!["dan"]]);
            }
            other => panic!("stale drop must resync, got {other:?}"),
        }
        // The re-seeded entry resumes incremental delivery.
        stale
            .commit(Delta::new().insert("friend", tuple![1, 1]))
            .unwrap();
        match sub.try_recv().expect("change-set after re-seeding") {
            AnswerUpdate::Changes(set) => assert_eq!(set.added, vec![tuple!["ann"]]),
            other => panic!("expected a change-set, got {other:?}"),
        }

        // Trigger 2 — gate rejection: the entry's evaluator is not
        // maintainable for the touched relation (Corollary 5.3 fails).
        let gated = engine(EngineConfig::default());
        let q2 = parse_cq("Q2(f) :- friend(p, f)").unwrap();
        let sub = gated
            .subscribe(&Request::new(
                q2.clone(),
                vec!["p".into()],
                vec![Value::int(1)],
            ))
            .unwrap();
        sub.drain();
        let key = (canonicalize(&q2, &["p".into()]).key, vec![Value::int(1)]);
        gated.shared.materialized.record(
            key,
            &unmaintainable_query(),
            &[],
            &[],
            0,
            0,
            si_access::StaticCost::default(),
            MeterSnapshot::default(),
        );
        gated
            .commit(Delta::new().insert("friend", tuple![2, 3]))
            .unwrap();
        assert_eq!(gated.metrics().maintenance_fallbacks, 1);
        match sub.try_recv().expect("resync after the gate rejection") {
            AnswerUpdate::Resync { epoch, full_answer } => {
                assert_eq!(epoch, 1);
                let mut full = full_answer.as_ref().clone();
                full.sort();
                assert_eq!(full, vec![tuple![2], tuple![3], tuple![4]]);
            }
            other => panic!("gate rejection must resync, got {other:?}"),
        }

        // Trigger 3 — maintenance error: the shape's cached gate verdict
        // (earned by the healthy evaluator) lets the broken one through, and
        // its lazy rest-query planning fails mid-run.
        let errored = engine(EngineConfig::default());
        let sub = errored.subscribe(&req(1)).unwrap();
        sub.drain();
        errored
            .commit(Delta::new().insert("friend", tuple![1, 1]))
            .unwrap();
        assert!(matches!(sub.try_recv(), Some(AnswerUpdate::Changes(_))));
        errored.shared.materialized.record(
            sub_key(1),
            &unmaintainable_query(),
            &[],
            &[],
            1,
            0,
            si_access::StaticCost::default(),
            MeterSnapshot::default(),
        );
        errored
            .commit(Delta::new().insert("friend", tuple![2, 3]))
            .unwrap();
        assert_eq!(errored.metrics().maintenance_fallbacks, 1);
        match sub.try_recv().expect("resync after the maintenance error") {
            AnswerUpdate::Resync { epoch, full_answer } => {
                assert_eq!(epoch, 2);
                let mut full = full_answer.as_ref().clone();
                full.sort();
                assert_eq!(full, vec![tuple!["ann"], tuple!["bob"], tuple!["dan"]]);
            }
            other => panic!("maintenance error must resync, got {other:?}"),
        }
    }

    #[test]
    fn subscription_overflow_collapses_to_a_single_resync() {
        let engine = engine(EngineConfig {
            subscriber_queue_capacity: 2,
            ..EngineConfig::default()
        });
        let sub = engine.subscribe(&req(1)).unwrap();
        // Nobody drains: each commit below changes the answer, so updates
        // pile up past the capacity of 2 and collapse.
        engine
            .commit(Delta::new().insert("friend", tuple![1, 1]))
            .unwrap();
        engine
            .commit(Delta::new().delete("friend", tuple![1, 1]))
            .unwrap();
        engine
            .commit(Delta::new().insert("friend", tuple![1, 1]))
            .unwrap();
        assert!(sub.queue_len() <= 2, "queue must stay bounded");
        assert_eq!(sub.overflows(), 1);
        let updates = sub.drain();
        // The tail update is one resync carrying the current full answer —
        // replaying it lands on exactly the cold answer.
        let resyncs = updates
            .iter()
            .filter(|u| matches!(u, AnswerUpdate::Resync { .. }))
            .count();
        assert_eq!(resyncs, 1, "overflow must collapse into one resync");
        let mut state = Vec::new();
        for update in &updates {
            update.apply_to(&mut state);
        }
        let mut cold = engine.execute(&req(1)).unwrap().answers;
        cold.sort();
        assert_eq!(state, cold);
        assert_eq!(engine.metrics().subscription_overflows, 1);
    }

    #[test]
    fn group_commits_deliver_the_net_effect_changeset() {
        let engine = engine(EngineConfig::default());
        let sub = engine.subscribe(&req(1)).unwrap();
        sub.drain();
        // A storm that cancels out entirely is elided: the group advances
        // the epoch but the answer never changed.
        let outcomes = engine.commit_group(&[
            Delta::new().insert("friend", tuple![1, 1]).clone(),
            Delta::new().delete("friend", tuple![1, 1]).clone(),
        ]);
        assert!(outcomes.iter().all(|o| o.is_ok()));
        assert!(
            sub.try_recv().is_none(),
            "a cancelled-out group must deliver nothing"
        );
        // A group with a net effect delivers exactly one change-set.
        let outcomes = engine.commit_group(&[
            Delta::new()
                .insert("person", tuple![5, "eve", "NYC"])
                .clone(),
            Delta::new().insert("friend", tuple![1, 5]).clone(),
        ]);
        assert!(outcomes.iter().all(|o| o.is_ok()));
        let updates = sub.drain();
        assert_eq!(updates.len(), 1, "one net change-set per group");
        match &updates[0] {
            AnswerUpdate::Changes(set) => {
                assert_eq!(set.epoch, engine.epoch());
                assert_eq!(set.added, vec![tuple!["eve"]]);
                assert!(set.removed.is_empty());
            }
            other => panic!("expected the net change-set, got {other:?}"),
        }
    }

    #[test]
    fn subscribed_shapes_are_pinned_past_admission_and_eviction() {
        // Capacity 0 disables the materialized layer for ordinary requests,
        // yet a subscription must still be maintained incrementally.
        let engine = engine(EngineConfig {
            materialize_capacity: 0,
            materialize_after: 1,
            ..EngineConfig::default()
        });
        let sub = engine.subscribe(&req(1)).unwrap();
        sub.drain();
        // The pinned entry even serves ordinary requests for the same key...
        assert!(engine.execute(&req(1)).unwrap().materialized);
        // ...while unsubscribed keys still see a zero-capacity layer.
        engine.execute(&req(2)).unwrap();
        assert!(!engine.execute(&req(2)).unwrap().materialized);
        engine
            .commit(Delta::new().insert("friend", tuple![1, 1]))
            .unwrap();
        assert!(matches!(sub.try_recv(), Some(AnswerUpdate::Changes(_))));
        assert_eq!(engine.metrics().maintenance_runs, 1);
        // Unsubscribing releases the pin; with capacity 0 the layer is
        // disabled again and the next commit maintains nothing.
        drop(sub);
        engine
            .commit(Delta::new().insert("friend", tuple![4, 1]))
            .unwrap();
        assert_eq!(engine.metrics().maintenance_runs, 1);
    }

    #[test]
    fn recovery_resyncs_surviving_subscribers_at_the_recovered_epoch() {
        let disk = SimDisk::new();
        let engine = durable_engine(&disk, EngineConfig::default());
        let sub = engine.subscribe(&req(1)).unwrap();
        let registry = engine.subscriptions();
        engine
            .commit(Delta::new().insert("friend", tuple![1, 1]))
            .unwrap();
        sub.drain();
        drop(engine);
        let recovered = Engine::recover_with_subscriptions(
            Box::new(disk),
            si_access::facebook_access_schema(5000),
            EngineConfig::default(),
            registry,
        )
        .unwrap();
        assert_eq!(recovered.epoch(), 1);
        // The handle survived the crash: it is told exactly where the
        // durable prefix ends, with the full answer to restart from.
        match sub.try_recv().expect("resync at the recovered epoch") {
            AnswerUpdate::Resync { epoch, full_answer } => {
                assert_eq!(epoch, 1);
                let mut full = full_answer.as_ref().clone();
                full.sort();
                assert_eq!(full, vec![tuple!["ann"], tuple!["bob"], tuple!["dan"]]);
            }
            other => panic!("recovery must resync, got {other:?}"),
        }
        // And the stream continues incrementally on the recovered engine.
        recovered
            .commit(Delta::new().delete("friend", tuple![1, 1]))
            .unwrap();
        match sub.try_recv().expect("post-recovery change-set") {
            AnswerUpdate::Changes(set) => {
                assert_eq!(set.epoch, 2);
                assert_eq!(set.removed, vec![tuple!["ann"]]);
            }
            other => panic!("expected a change-set, got {other:?}"),
        }
        assert_eq!(recovered.metrics().subscribers, 1);
    }
}
