//! The materialized answer cache: incrementally maintained answers for hot
//! (query shape, parameter values) pairs.
//!
//! The plan cache ([`crate::cache::PlanCache`]) removes *planning* from the
//! hot path; this layer removes *execution*.  A pair that has been requested
//! often enough (the threshold of [`MaterializedSet::new`]) is admitted: its
//! answer tuples are kept alongside per-shape maintenance state, and every
//! later request
//! whose pinned snapshot epoch matches the entry's `valid_epoch` is served
//! with **zero base-data accesses**.
//!
//! On [`Engine::commit`](crate::Engine::commit) the engine *maintains*
//! admitted answers instead of invalidating them: the paper's delta-rule
//! machinery, specialised to bounded CQ maintenance
//! ([`IncrementalBoundedEvaluator::maintain_across`]), runs against the two
//! pinned snapshot versions around the commit and touches `O(|∆D|)` base
//! tuples.  The engine falls back to the bounded-plan path — the entry is
//! dropped and the next request re-executes and re-records — whenever
//!
//! * the entry is **stale** (its `valid_epoch` is not the commit's base
//!   version: a concurrent commit raced the recording request),
//! * [`maintenance_is_bounded`](si_core::maintenance_is_bounded) rejects the
//!   update for some touched relation (Corollary 5.3 — for shapes admitted
//!   through the bounded planner the check passes by plan monotonicity, but
//!   it is the contract, so it is enforced, cached per *shape*),
//! * maintenance itself errors (the evaluator's answers may then be
//!   partially maintained and are unusable), or
//! * maintenance has become **uneconomical**: once the tuples fetched by
//!   maintenance since the entry's last hit exceed the tuples its last full
//!   execution fetched, keeping the answer warm costs more base-data access
//!   than recomputing it on demand, and the entry is evicted
//!   (cost-based eviction; the [`MeterSnapshot`]s make both sides exact).
//!
//! Statistics epochs never invalidate materialized answers — answers are
//! exact, only plan *choice* depends on statistics — but each entry records
//! the stats epoch of the execution that populated it, so a re-recording
//! after a stats refresh also refreshes the re-execution cost that the
//! eviction economics compare against.
//!
//! Capacity eviction is FIFO in admission order, matching the plan cache.

use crate::shape::ShapeKey;
use si_access::StaticCost;
use si_core::{CoreError, IncrementalBoundedEvaluator};
use si_data::{MeterSnapshot, Tuple, Value};
use si_query::{ConjunctiveQuery, Var};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Key of a materialized answer: the canonical query shape plus the
/// invocation's parameter values (the values are what the shape key
/// deliberately excludes).
pub type MaterializedKey = (ShapeKey, Vec<Value>);

/// A materialized-cache hit, ready to be returned without touching data.
#[derive(Debug, Clone)]
pub struct MaterializedAnswer {
    /// The maintained answer tuples for the pinned epoch, shared with the
    /// entry (a hit is an `Arc` clone; materialise with
    /// [`MaterializedAnswer::into_answers`]).
    pub answers: Arc<Vec<Tuple>>,
    /// The static cost of the plan that originally produced the answers
    /// (what admission control re-checks).
    pub static_cost: StaticCost,
}

impl MaterializedAnswer {
    /// The answer tuples as an owned vector — one clone per hit, taken
    /// outside any cache lock (the entry keeps sharing the original).
    pub fn into_answers(self) -> Vec<Tuple> {
        (*self.answers).clone()
    }
}

/// One admitted answer with its maintenance state.
#[derive(Debug)]
struct Entry {
    /// The maintained answers.  `None` while maintenance runs outside the
    /// lock ([`MaterializedSet::maintain_with`] phase 2): readers treat an
    /// absent evaluator as a miss and fall back to the plan path, so the
    /// write-path data accesses never stall the read path.
    evaluator: Option<IncrementalBoundedEvaluator>,
    /// The evaluator's answers rendered once per change, so a hit shares
    /// them by `Arc` instead of rebuilding the vector under the read lock.
    answers: Arc<Vec<Tuple>>,
    /// The snapshot epoch the answers are exact for.
    valid_epoch: u64,
    /// The statistics epoch of the execution that (re-)populated the entry.
    stats_epoch: u64,
    /// Static cost of the producing plan (served back on hits).
    static_cost: StaticCost,
    /// Measured cost of the last full execution — the re-execution side of
    /// the eviction economics.
    reexec_cost: MeterSnapshot,
    /// Cumulative maintenance cost over the entry's lifetime (observability).
    maintain_cost: MeterSnapshot,
    /// Commits this entry survived through maintenance.
    maintained_commits: u64,
    /// Tuples fetched by maintenance since the entry was last *hit* — the
    /// keep-warm side of the eviction economics (atomic so hits can reset it
    /// under the read lock).
    maintain_tuples_since_hit: AtomicU64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<MaterializedKey, Entry>,
    /// Admission order, for FIFO eviction.
    order: VecDeque<MaterializedKey>,
    /// Requests seen per key before admission — atomic so the common case
    /// (bumping an already-tracked key) happens under the *read* lock.
    seen: HashMap<MaterializedKey, AtomicU64>,
    /// Per-*shape* maintenance-boundedness decisions, keyed by touched
    /// relation: every entry of a shape shares one set of Corollary-5.3
    /// verdicts.
    boundedness: HashMap<ShapeKey, HashMap<String, bool>>,
}

/// Reference-counted set of materialized keys that must survive eviction.
///
/// The subscription registry pins every subscribed (shape, values) pair;
/// the [`MaterializedSet`] consults the set to bypass admission thresholds
/// and to exempt pinned entries from capacity and cost-based eviction — a
/// subscriber's answer must stay incrementally maintained even when the
/// eviction economics would drop it.  The `Arc` is owned by the registry so
/// pins survive an [`Engine::recover`](crate::Engine::recover), which builds
/// a fresh `MaterializedSet` around the same pin set.
#[derive(Debug, Default)]
pub struct PinSet {
    /// Distinct pinned keys with their subscriber refcounts.
    keys: RwLock<HashMap<MaterializedKey, usize>>,
    /// Number of distinct pinned keys, so the hot-path check is one relaxed
    /// load when nothing is pinned.
    count: AtomicUsize,
}

impl PinSet {
    /// Adds one reference to `key`.
    pub fn pin(&self, key: &MaterializedKey) {
        let mut keys = self.keys.write().expect("pin set poisoned");
        let slot = keys.entry(key.clone()).or_insert(0);
        if *slot == 0 {
            self.count.fetch_add(1, Ordering::Relaxed);
        }
        *slot += 1;
    }

    /// Drops one reference to `key`; the pin disappears at refcount zero.
    pub fn unpin(&self, key: &MaterializedKey) {
        let mut keys = self.keys.write().expect("pin set poisoned");
        if let Some(slot) = keys.get_mut(key) {
            *slot -= 1;
            if *slot == 0 {
                keys.remove(key);
                self.count.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// True iff `key` currently holds at least one pin.
    pub fn is_pinned(&self, key: &MaterializedKey) -> bool {
        if self.count.load(Ordering::Relaxed) == 0 {
            return false;
        }
        self.keys
            .read()
            .expect("pin set poisoned")
            .contains_key(key)
    }

    /// True iff nothing is pinned (one relaxed load).
    pub fn is_empty(&self) -> bool {
        self.count.load(Ordering::Relaxed) == 0
    }

    /// Number of distinct pinned keys.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }
}

/// The answer delta of one maintained entry across a commit, reported by
/// [`MaterializedSet::maintain_tracked`] for keys its `track` predicate
/// selects (the subscribed ones).  `added`/`removed` are the net effect of
/// the commit on the entry's answers; `full` shares the entry's complete
/// post-commit answer (what a queue-overflow Resync carries).
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerChange {
    /// The maintained entry's key.
    pub key: MaterializedKey,
    /// Tuples that entered the answer (sorted).
    pub added: Vec<Tuple>,
    /// Tuples that left the answer (sorted).
    pub removed: Vec<Tuple>,
    /// The complete answer after the commit, shared with the entry.
    pub full: Arc<Vec<Tuple>>,
}

/// What a maintenance pass did, for the engine's metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MaintenanceSummary {
    /// Entries maintained to the new epoch.
    pub maintained: u64,
    /// Entries dropped (stale, gate-rejected, or errored) — the next request
    /// falls back to the bounded-plan path.
    pub fallbacks: u64,
    /// Entries evicted because maintenance became costlier than
    /// re-execution.
    pub cost_evictions: u64,
    /// Total base-data accesses of every *completed* maintenance run,
    /// whether or not its result could be published.  An errored run's
    /// partial fetches are not in here — its cost never reaches this layer
    /// (the engine accounts them on its own write-path meter inside the
    /// `run` closure).
    pub accesses: MeterSnapshot,
    /// Per-entry answer deltas for tracked keys
    /// ([`MaterializedSet::maintain_tracked`]'s `track` predicate).
    pub changes: Vec<AnswerChange>,
    /// Every key this pass dropped or evicted (stale, gate-rejected,
    /// errored, or cost-evicted) — what the subscription registry turns into
    /// Resync markers.
    pub dropped: Vec<MaterializedKey>,
}

/// The concurrent (shape, values) → maintained answers cache.
///
/// `capacity == 0` disables the layer: every call is a cheap no-op and the
/// engine behaves exactly as the pure plan-cache path.
#[derive(Debug)]
pub struct MaterializedSet {
    inner: RwLock<Inner>,
    capacity: usize,
    threshold: u64,
    hits: AtomicU64,
    evictions: AtomicU64,
    /// Keys pinned by the subscription registry: admitted unconditionally,
    /// never capacity- or cost-evicted, and kept maintained even when
    /// `capacity == 0`.
    pins: Arc<PinSet>,
}

impl MaterializedSet {
    /// Creates a set holding at most `capacity` answers; a key is admitted
    /// once it has been requested `threshold` times (`threshold <= 1` admits
    /// on first execution).
    pub fn new(capacity: usize, threshold: u64) -> Self {
        Self::with_pins(capacity, threshold, Arc::new(PinSet::default()))
    }

    /// Like [`MaterializedSet::new`], sharing an externally owned pin set
    /// (the subscription registry's, so pins survive engine recovery).
    pub fn with_pins(capacity: usize, threshold: u64, pins: Arc<PinSet>) -> Self {
        MaterializedSet {
            inner: RwLock::new(Inner::default()),
            capacity,
            threshold: threshold.max(1),
            hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            pins,
        }
    }

    /// True iff the layer is disabled: capacity 0 *and* no pinned keys.
    /// Subscribed shapes are pinned, so an engine configured without a
    /// materialized cache still maintains exactly its subscribers' answers.
    pub fn is_disabled(&self) -> bool {
        self.capacity == 0 && self.pins.is_empty()
    }

    /// The shared pin set (cloned into the subscription registry).
    pub fn pins(&self) -> &Arc<PinSet> {
        &self.pins
    }

    /// Looks up maintained answers for `key`, provided they are exact for
    /// `epoch`.  A hit resets the entry's keep-warm cost counter.
    pub fn get(&self, key: &MaterializedKey, epoch: u64) -> Option<MaterializedAnswer> {
        if self.is_disabled() {
            return None;
        }
        let inner = self.inner.read().expect("materialized set poisoned");
        let entry = inner.map.get(key)?;
        // An entry whose evaluator is out for maintenance is a miss.
        entry.evaluator.as_ref()?;
        if entry.valid_epoch != epoch {
            return None;
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        entry.maintain_tuples_since_hit.store(0, Ordering::Relaxed);
        Some(MaterializedAnswer {
            answers: Arc::clone(&entry.answers),
            static_cost: entry.static_cost,
        })
    }

    /// Records a plan-path execution: refreshes an existing (stale) entry in
    /// place, or counts the key towards admission and admits it at the
    /// threshold (evicting the oldest admitted key beyond capacity).
    ///
    /// `answers` must be exact for snapshot `epoch`; `reexec_cost` is the
    /// measured cost of the execution that produced them.
    ///
    /// The common cold-key case — bumping the hotness counter of a key that
    /// is tracked but below the threshold — runs under the *read* lock
    /// (atomic counters); the write lock is taken only at a key's first
    /// sighting, at admission, and for stale-entry refreshes, so hotness
    /// bookkeeping does not serialize concurrent serve threads.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        key: MaterializedKey,
        query: &ConjunctiveQuery,
        parameters: &[Var],
        answers: &[Tuple],
        epoch: u64,
        stats_epoch: u64,
        static_cost: StaticCost,
        reexec_cost: MeterSnapshot,
    ) {
        if self.is_disabled() {
            return;
        }
        let pinned = self.pins.is_pinned(&key);
        // Read-lock fast path.
        let mut counted = false;
        {
            let inner = self.inner.read().expect("materialized set poisoned");
            if let Some(entry) = inner.map.get(&key) {
                // Never refresh an entry backwards: a read on an *older*
                // pinned version must not clobber answers maintained past it
                // (re-checked under the write lock below).
                if entry.valid_epoch > epoch {
                    return;
                }
            } else if !pinned {
                if let Some(counter) = inner.seen.get(&key) {
                    counted = true;
                    if counter.fetch_add(1, Ordering::Relaxed) + 1 < self.threshold {
                        return;
                    }
                }
            }
        }
        let mut inner = self.inner.write().expect("materialized set poisoned");
        let admitted = inner.map.contains_key(&key);
        if admitted {
            if inner.map[&key].valid_epoch > epoch {
                return;
            }
        } else if pinned {
            // Subscribed keys bypass the hotness threshold: the registry
            // needs the entry maintained from its first recording.
            inner.seen.remove(&key);
        } else if counted {
            // Counted to the threshold on the fast path: admit.
            inner.seen.remove(&key);
        } else {
            // First sighting of the key (or its counter was reset while the
            // lock was dropped).  Bound the hotness tracker: counters are
            // advisory, so when a long tail of distinct cold keys outgrows
            // the budget the map is simply reset — a cold key then needs its
            // request streak again, as on a fresh engine.
            if inner.seen.len() >= self.seen_budget() && !inner.seen.contains_key(&key) {
                inner.seen.clear();
            }
            let counter = inner
                .seen
                .entry(key.clone())
                .or_insert_with(|| AtomicU64::new(0));
            if counter.fetch_add(1, Ordering::Relaxed) + 1 < self.threshold {
                return;
            }
            inner.seen.remove(&key);
        }
        let evaluator = IncrementalBoundedEvaluator::from_materialized(
            query.clone(),
            parameters.to_vec(),
            key.1.clone(),
            answers.iter().cloned(),
            reexec_cost,
        );
        let entry = Entry {
            evaluator: Some(evaluator),
            answers: Arc::new(answers.to_vec()),
            valid_epoch: epoch,
            stats_epoch,
            static_cost,
            reexec_cost,
            maintain_cost: MeterSnapshot::default(),
            maintained_commits: 0,
            maintain_tuples_since_hit: AtomicU64::new(0),
        };
        if inner.map.insert(key.clone(), entry).is_none() {
            inner.order.push_back(key);
            // Capacity counts only unpinned entries: subscribed keys are
            // pinned by the registry and never capacity-evicted.
            loop {
                let unpinned = if self.pins.is_empty() {
                    inner.map.len()
                } else {
                    inner
                        .order
                        .iter()
                        .filter(|k| !self.pins.is_pinned(k))
                        .count()
                };
                if unpinned <= self.capacity {
                    break;
                }
                let Some(pos) = inner.order.iter().position(|k| !self.pins.is_pinned(k)) else {
                    break;
                };
                let oldest = inner.order.remove(pos).expect("position is in range");
                Self::purge(&mut inner, &oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Maintains every admitted entry across a commit from `base_epoch` to
    /// `next_epoch`.
    ///
    /// `gate` answers "is maintenance of this shape bounded when `relation`
    /// is updated?" (consulted once per shape per relation, cached); `run`
    /// performs the actual bounded maintenance of one entry's evaluator and
    /// returns its measured cost.  Entries that are stale, gate-rejected or
    /// whose maintenance errors are dropped; entries whose keep-warm cost
    /// has overtaken their re-execution cost are evicted.
    ///
    /// The base-data accesses of `run` happen **outside** the set's lock:
    /// phase 1 triages entries and takes the maintainable evaluators out
    /// under a brief write lock, phase 2 runs maintenance lock-free (readers
    /// miss on the in-flight entries and fall back to the plan path instead
    /// of waiting), phase 3 publishes the results.  Callers are expected to
    /// serialise maintenance passes themselves (the engine's commit lock
    /// does); a racing [`MaterializedSet::record`] that re-populates an
    /// in-flight entry against the committed version wins over the
    /// maintained result.
    pub fn maintain_with<G, R>(
        &self,
        base_epoch: u64,
        next_epoch: u64,
        touched: &[String],
        gate: G,
        run: R,
    ) -> MaintenanceSummary
    where
        G: FnMut(&ConjunctiveQuery, &[Var], &str) -> bool,
        R: FnMut(&mut IncrementalBoundedEvaluator) -> Result<MeterSnapshot, CoreError>,
    {
        self.maintain_tracked(base_epoch, next_epoch, touched, gate, run, |_| false)
    }

    /// [`MaterializedSet::maintain_with`] plus per-entry answer deltas: for
    /// every maintained key that `track` selects (the subscribed ones), the
    /// summary carries an [`AnswerChange`] with the tuples that entered and
    /// left the answer across the commit — computed by diffing the sorted
    /// pre- and post-maintenance answer sets during publication, so a
    /// `DeltaBatch`-cancelled storm nets out to an empty change.  Dropped
    /// and evicted keys are reported in `dropped` regardless of `track`.
    pub fn maintain_tracked<G, R, T>(
        &self,
        base_epoch: u64,
        next_epoch: u64,
        touched: &[String],
        mut gate: G,
        mut run: R,
        track: T,
    ) -> MaintenanceSummary
    where
        G: FnMut(&ConjunctiveQuery, &[Var], &str) -> bool,
        R: FnMut(&mut IncrementalBoundedEvaluator) -> Result<MeterSnapshot, CoreError>,
        T: Fn(&MaterializedKey) -> bool,
    {
        let mut summary = MaintenanceSummary::default();
        if self.is_disabled() {
            return summary;
        }

        // Phase 1 — triage under the write lock, no data access: drop stale
        // and gate-rejected entries, take the evaluators of the rest.
        let mut work: Vec<(MaterializedKey, IncrementalBoundedEvaluator)> = Vec::new();
        {
            let mut inner = self.inner.write().expect("materialized set poisoned");
            let inner = &mut *inner;
            let keys: Vec<MaterializedKey> = inner.order.iter().cloned().collect();
            let mut dropped: Vec<MaterializedKey> = Vec::new();
            for key in keys {
                let Some(entry) = inner.map.get_mut(&key) else {
                    continue;
                };
                let Some(evaluator) = entry.evaluator.as_ref() else {
                    continue;
                };
                if entry.valid_epoch == next_epoch {
                    // A racing reader already re-recorded the entry against
                    // the committed version: current, nothing to maintain.
                    continue;
                }
                if entry.valid_epoch != base_epoch {
                    // A commit raced the recording request: the answers are
                    // for some other version and cannot be maintained here.
                    summary.fallbacks += 1;
                    dropped.push(key);
                    continue;
                }
                // Corollary 5.3 gate, cached per shape and touched relation.
                let verdicts = inner.boundedness.entry(key.0.clone()).or_default();
                let bounded = touched.iter().all(|relation| {
                    *verdicts.entry(relation.clone()).or_insert_with(|| {
                        gate(evaluator.query(), evaluator.parameters(), relation)
                    })
                });
                if !bounded {
                    summary.fallbacks += 1;
                    dropped.push(key);
                    continue;
                }
                let evaluator = entry.evaluator.take().expect("checked Some above");
                work.push((key, evaluator));
            }
            for key in dropped {
                Self::purge(inner, &key);
                summary.dropped.push(key);
            }
        }

        // Phase 2 — bounded maintenance against the two pinned versions,
        // without holding the lock.
        let results: Vec<(
            MaterializedKey,
            IncrementalBoundedEvaluator,
            Result<MeterSnapshot, CoreError>,
        )> = work
            .into_iter()
            .map(|(key, mut evaluator)| {
                let result = run(&mut evaluator);
                (key, evaluator, result)
            })
            .collect();

        // Phase 3 — publish under the write lock.
        {
            let mut inner = self.inner.write().expect("materialized set poisoned");
            let inner = &mut *inner;
            let mut dropped: Vec<MaterializedKey> = Vec::new();
            for (key, evaluator, result) in results {
                // The base-data work of phase 2 happened whether or not the
                // result can be published below; account for it first so
                // `accesses` never undercounts the write path.
                if let Ok(cost) = &result {
                    summary.accesses = summary.accesses.plus(cost);
                }
                let Some(entry) = inner.map.get_mut(&key) else {
                    // Evicted (capacity) while in flight: nothing to publish.
                    continue;
                };
                if entry.evaluator.is_some() && entry.valid_epoch >= next_epoch {
                    // A racing reader re-recorded the entry against the
                    // committed version; its answers are at least as fresh.
                    continue;
                }
                match result {
                    Ok(cost) => {
                        let new_answers = Arc::new(evaluator.answers());
                        if track(&key) {
                            let (added, removed) = diff_answers(&entry.answers, &new_answers);
                            summary.changes.push(AnswerChange {
                                key: key.clone(),
                                added,
                                removed,
                                full: Arc::clone(&new_answers),
                            });
                        }
                        entry.answers = new_answers;
                        entry.evaluator = Some(evaluator);
                        entry.valid_epoch = next_epoch;
                        entry.maintained_commits += 1;
                        entry.maintain_cost = entry.maintain_cost.plus(&cost);
                        let since_hit = entry
                            .maintain_tuples_since_hit
                            .fetch_add(cost.tuples_fetched, Ordering::Relaxed)
                            + cost.tuples_fetched;
                        summary.maintained += 1;
                        if since_hit > entry.reexec_cost.tuples_fetched
                            && !self.pins.is_pinned(&key)
                        {
                            summary.cost_evictions += 1;
                            dropped.push(key);
                        }
                    }
                    Err(_) => {
                        // The evaluator may be partially maintained: unusable.
                        summary.fallbacks += 1;
                        dropped.push(key);
                    }
                }
            }
            for key in dropped {
                Self::purge(inner, &key);
                summary.dropped.push(key);
            }
        }
        self.evictions
            .fetch_add(summary.cost_evictions, Ordering::Relaxed);
        summary
    }

    /// Maintained answers for `key`, exact for `epoch`, without counting a
    /// hit or resetting the keep-warm economics — the subscription fan-out
    /// reads entries through this so delivery never perturbs eviction.
    pub fn current_answers(&self, key: &MaterializedKey, epoch: u64) -> Option<Arc<Vec<Tuple>>> {
        let inner = self.inner.read().expect("materialized set poisoned");
        let entry = inner.map.get(key)?;
        entry.evaluator.as_ref()?;
        if entry.valid_epoch != epoch {
            return None;
        }
        Some(Arc::clone(&entry.answers))
    }

    /// Test hook: forces an entry's `valid_epoch`, simulating the race where
    /// a commit lands between a request's execution and its recording (the
    /// "stale entry" maintenance drop trigger).
    #[cfg(test)]
    pub(crate) fn force_valid_epoch(&self, key: &MaterializedKey, epoch: u64) {
        let mut inner = self.inner.write().expect("materialized set poisoned");
        if let Some(entry) = inner.map.get_mut(key) {
            entry.valid_epoch = epoch;
        }
    }

    /// The bound on the pre-admission hotness tracker (see
    /// [`MaterializedSet::record`]).
    fn seen_budget(&self) -> usize {
        self.capacity.saturating_mul(16).max(1024)
    }

    /// Removes `key` and, when it was the shape's last entry, the shape's
    /// cached boundedness verdicts.
    fn purge(inner: &mut Inner, key: &MaterializedKey) {
        inner.map.remove(key);
        inner.order.retain(|k| k != key);
        if !inner.map.keys().any(|(shape, _)| *shape == key.0) {
            inner.boundedness.remove(&key.0);
        }
    }

    /// The statistics epoch of the execution that (re-)populated `key`'s
    /// entry — observability for the eviction economics: answers are exact
    /// regardless, but the re-execution cost they are compared against was
    /// measured under this epoch's plan ranking.
    pub fn stats_epoch_of(&self, key: &MaterializedKey) -> Option<u64> {
        self.inner
            .read()
            .expect("materialized set poisoned")
            .map
            .get(key)
            .map(|e| e.stats_epoch)
    }

    /// Number of admitted answers.
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .expect("materialized set poisoned")
            .map
            .len()
    }

    /// True iff nothing is admitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Requests served from maintained answers so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Entries evicted so far (FIFO capacity + cost-based).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// Set difference of two answer vectors: `(new − old, old − new)`, both
/// sorted.  `new` arrives sorted (the evaluator renders from a `BTreeSet`);
/// `old` may be in plan-execution order, so it is sorted here first.
fn diff_answers(old: &[Tuple], new: &[Tuple]) -> (Vec<Tuple>, Vec<Tuple>) {
    let mut old_sorted: Vec<&Tuple> = old.iter().collect();
    old_sorted.sort();
    let mut added = Vec::new();
    let mut removed = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < old_sorted.len() && j < new.len() {
        match old_sorted[i].cmp(&new[j]) {
            std::cmp::Ordering::Less => {
                removed.push((*old_sorted[i]).clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                added.push(new[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    removed.extend(old_sorted[i..].iter().map(|t| (*t).clone()));
    added.extend(new[j..].iter().cloned());
    (added, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_data::tuple;
    use si_query::parse_cq;

    fn q() -> ConjunctiveQuery {
        parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap()
    }

    fn key(shape: &str, p: i64) -> MaterializedKey {
        (shape.to_string(), vec![Value::int(p)])
    }

    fn fetch_cost(tuples: u64) -> MeterSnapshot {
        MeterSnapshot {
            tuples_fetched: tuples,
            index_probes: 1,
            full_scans: 0,
            time_units: tuples,
        }
    }

    fn record(set: &MaterializedSet, k: MaterializedKey, epoch: u64, reexec_tuples: u64) {
        set.record(
            k,
            &q(),
            &["p".into()],
            &[tuple!["ann"]],
            epoch,
            0,
            StaticCost::default(),
            fetch_cost(reexec_tuples),
        );
    }

    #[test]
    fn threshold_gates_admission_and_epoch_gates_hits() {
        let set = MaterializedSet::new(8, 2);
        assert!(set.get(&key("s", 1), 0).is_none());
        // First execution: counted, not admitted.
        record(&set, key("s", 1), 0, 10);
        assert!(set.get(&key("s", 1), 0).is_none());
        assert!(set.is_empty());
        // Second execution: admitted.
        record(&set, key("s", 1), 0, 10);
        let hit = set.get(&key("s", 1), 0).expect("admitted at threshold");
        assert_eq!(hit.into_answers(), vec![tuple!["ann"]]);
        assert_eq!(set.len(), 1);
        assert_eq!(set.hits(), 1);
        // Same key, different values: separate hotness counter.
        assert!(set.get(&key("s", 2), 0).is_none());
        // A different epoch is never served.
        assert!(set.get(&key("s", 1), 1).is_none());
    }

    #[test]
    fn disabled_set_is_a_no_op() {
        let set = MaterializedSet::new(0, 1);
        assert!(set.is_disabled());
        record(&set, key("s", 1), 0, 10);
        record(&set, key("s", 1), 0, 10);
        assert!(set.get(&key("s", 1), 0).is_none());
        let summary = set.maintain_with(0, 1, &[], |_, _, _| true, |_| Ok(fetch_cost(0)));
        assert_eq!(summary, MaintenanceSummary::default());
    }

    #[test]
    fn the_hotness_tracker_is_bounded() {
        let set = MaterializedSet::new(4, 2);
        record(&set, key("hot", 1), 0, 10);
        // A long tail of distinct cold keys overflows the tracker's budget
        // (max(1024, 16 × capacity)) and resets it instead of growing it…
        for i in 0..1100 {
            record(&set, key(&format!("cold-{i}"), 1), 0, 10);
        }
        assert!(
            set.is_empty(),
            "single executions admit nothing at threshold 2"
        );
        // …so the hot key needs its full request streak again.
        record(&set, key("hot", 1), 0, 10);
        assert!(set.get(&key("hot", 1), 0).is_none());
        record(&set, key("hot", 1), 0, 10);
        assert!(set.get(&key("hot", 1), 0).is_some());
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let set = MaterializedSet::new(2, 1);
        record(&set, key("a", 1), 0, 10);
        record(&set, key("b", 1), 0, 10);
        record(&set, key("c", 1), 0, 10);
        assert_eq!(set.len(), 2);
        assert!(set.get(&key("a", 1), 0).is_none(), "oldest key evicted");
        assert!(set.get(&key("b", 1), 0).is_some());
        assert!(set.get(&key("c", 1), 0).is_some());
        assert_eq!(set.evictions(), 1);
    }

    #[test]
    fn maintenance_advances_epochs_and_applies_the_gate() {
        let set = MaterializedSet::new(8, 1);
        record(&set, key("s", 1), 0, 10);
        // Maintained: entry now valid at epoch 1.
        let touched = vec!["visit".to_string()];
        let summary = set.maintain_with(0, 1, &touched, |_, _, _| true, |_| Ok(fetch_cost(2)));
        assert_eq!(summary.maintained, 1);
        assert_eq!(summary.accesses.tuples_fetched, 2);
        assert!(set.get(&key("s", 1), 0).is_none());
        assert!(set.get(&key("s", 1), 1).is_some());
        // Gate rejection (for a relation with no cached verdict yet) drops
        // the entry.
        let other = vec!["person".to_string()];
        let summary = set.maintain_with(1, 2, &other, |_, _, _| false, |_| Ok(fetch_cost(0)));
        assert_eq!(summary.fallbacks, 1);
        assert!(set.is_empty());
    }

    #[test]
    fn gate_verdicts_are_cached_per_shape() {
        let set = MaterializedSet::new(8, 1);
        record(&set, key("s", 1), 0, 10);
        record(&set, key("s", 2), 0, 10);
        record(&set, key("t", 1), 0, 10);
        let touched = vec!["visit".to_string()];
        let mut calls = 0u32;
        set.maintain_with(
            0,
            1,
            &touched,
            |_, _, _| {
                calls += 1;
                true
            },
            |_| Ok(fetch_cost(0)),
        );
        // Three entries, two shapes: one verdict per shape.
        assert_eq!(calls, 2);
        // The cached verdict is reused on the next commit.
        set.maintain_with(
            1,
            2,
            &touched,
            |_, _, _| panic!("gate re-consulted"),
            |_| Ok(fetch_cost(0)),
        );
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn stale_entries_and_erroring_maintenance_fall_back() {
        let set = MaterializedSet::new(8, 1);
        record(&set, key("s", 1), 0, 10);
        // Entry valid at 0, but the commit bases at 3: stale, dropped.
        let summary = set.maintain_with(3, 4, &[], |_, _, _| true, |_| Ok(fetch_cost(0)));
        assert_eq!(summary.fallbacks, 1);
        assert!(set.is_empty());
        // Maintenance error drops too.
        record(&set, key("s", 1), 4, 10);
        let summary = set.maintain_with(
            4,
            5,
            &[],
            |_, _, _| true,
            |_| Err(CoreError::Invariant("boom".into())),
        );
        assert_eq!(summary.fallbacks, 1);
        assert!(set.is_empty());
    }

    #[test]
    fn cost_based_eviction_compares_keep_warm_against_reexecution() {
        let set = MaterializedSet::new(8, 1);
        // Re-execution fetched 6 tuples; each maintenance fetches 4.
        record(&set, key("s", 1), 0, 6);
        let s1 = set.maintain_with(0, 1, &[], |_, _, _| true, |_| Ok(fetch_cost(4)));
        assert_eq!(s1.cost_evictions, 0);
        assert!(set.get(&key("s", 1), 1).is_some()); // hit resets the counter
        let s2 = set.maintain_with(1, 2, &[], |_, _, _| true, |_| Ok(fetch_cost(4)));
        assert_eq!(
            s2.cost_evictions, 0,
            "one maintenance since the hit: 4 <= 6"
        );
        // No hit in between: 4 + 4 > 6 → evicted.
        let s3 = set.maintain_with(2, 3, &[], |_, _, _| true, |_| Ok(fetch_cost(4)));
        assert_eq!(s3.cost_evictions, 1);
        assert!(set.is_empty());
        assert_eq!(set.evictions(), 1);
    }

    #[test]
    fn re_recording_refreshes_the_stats_epoch_and_reexecution_cost() {
        let set = MaterializedSet::new(4, 1);
        record(&set, key("s", 1), 0, 10);
        assert_eq!(set.stats_epoch_of(&key("s", 1)), Some(0));
        // A later execution under a refreshed statistics epoch re-records
        // the entry: the cost basis (and its epoch) move with it.
        set.record(
            key("s", 1),
            &q(),
            &["p".into()],
            &[tuple!["ann"]],
            3,
            7,
            StaticCost::default(),
            fetch_cost(25),
        );
        assert_eq!(set.stats_epoch_of(&key("s", 1)), Some(7));
        assert_eq!(set.stats_epoch_of(&key("s", 2)), None);
    }

    #[test]
    fn pinned_keys_bypass_admission_and_survive_eviction() {
        let pins = Arc::new(PinSet::default());
        let set = MaterializedSet::with_pins(1, 3, Arc::clone(&pins));
        let hot = key("sub", 1);
        pins.pin(&hot);
        // Admitted on first recording despite threshold 3.
        record(&set, hot.clone(), 0, 1);
        assert!(set.get(&hot, 0).is_some());
        // Capacity 1 counts only unpinned entries: admitting two more keys
        // evicts among them, never the pinned one.
        record(&set, key("a", 1), 0, 10);
        record(&set, key("a", 1), 0, 10);
        record(&set, key("a", 1), 0, 10);
        record(&set, key("b", 1), 0, 10);
        record(&set, key("b", 1), 0, 10);
        record(&set, key("b", 1), 0, 10);
        assert!(set.get(&hot, 0).is_some(), "pinned key survives capacity");
        assert!(set.get(&key("a", 1), 0).is_none(), "unpinned FIFO evicted");
        assert!(set.get(&key("b", 1), 0).is_some());
        // Cost-based eviction also skips pinned keys: maintenance far above
        // the re-execution cost (1 tuple) with no hits in between.  The
        // unpinned `b` (re-execution cost 10) is evicted on the first pass.
        for e in 0..4 {
            let s = set.maintain_with(e, e + 1, &[], |_, _, _| true, |_| Ok(fetch_cost(50)));
            assert!(
                !s.dropped.contains(&hot),
                "pinned key never cost-evicted (pass {e})"
            );
        }
        assert!(set.get(&hot, 4).is_some());
        // Unpinning re-enables the economics.
        pins.unpin(&hot);
        let s = set.maintain_with(4, 5, &[], |_, _, _| true, |_| Ok(fetch_cost(50)));
        assert_eq!(s.cost_evictions, 1);
    }

    #[test]
    fn pins_override_the_disabled_state() {
        let pins = Arc::new(PinSet::default());
        let set = MaterializedSet::with_pins(0, 1, Arc::clone(&pins));
        assert!(set.is_disabled());
        let k = key("sub", 1);
        pins.pin(&k);
        assert!(!set.is_disabled(), "pinned keys keep the layer live");
        record(&set, k.clone(), 0, 10);
        assert!(set.get(&k, 0).is_some());
        // An unpinned key is immediately evicted again (capacity 0).
        record(&set, key("other", 1), 0, 10);
        assert!(set.get(&key("other", 1), 0).is_none());
        assert!(set.get(&k, 0).is_some());
        pins.unpin(&k);
        assert!(set.is_disabled());
    }

    #[test]
    fn pin_refcounts_nest() {
        let pins = PinSet::default();
        let k = key("s", 1);
        pins.pin(&k);
        pins.pin(&k);
        assert_eq!(pins.len(), 1);
        pins.unpin(&k);
        assert!(pins.is_pinned(&k), "one reference still held");
        pins.unpin(&k);
        assert!(!pins.is_pinned(&k));
        assert!(pins.is_empty());
    }

    #[test]
    fn tracked_maintenance_reports_answer_deltas() {
        let set = MaterializedSet::new(8, 1);
        let k = key("s", 1);
        set.record(
            k.clone(),
            &q(),
            &["p".into()],
            &[tuple!["bob"], tuple!["ann"]],
            0,
            0,
            StaticCost::default(),
            fetch_cost(10),
        );
        // The run closure mutates the evaluator's answers the way real
        // maintenance does: drop "bob", add "eve".
        let summary = set.maintain_tracked(
            0,
            1,
            &[],
            |_, _, _| true,
            |evaluator| {
                *evaluator = IncrementalBoundedEvaluator::from_materialized(
                    q(),
                    vec!["p".into()],
                    vec![Value::int(1)],
                    [tuple!["ann"], tuple!["eve"]],
                    fetch_cost(10),
                );
                Ok(fetch_cost(1))
            },
            |_| true,
        );
        assert_eq!(summary.changes.len(), 1);
        let change = &summary.changes[0];
        assert_eq!(change.key, k);
        assert_eq!(change.added, vec![tuple!["eve"]]);
        assert_eq!(change.removed, vec![tuple!["bob"]]);
        assert_eq!(*change.full, vec![tuple!["ann"], tuple!["eve"]]);
        // A no-op maintenance yields an elided (empty) change.
        let summary =
            set.maintain_tracked(1, 2, &[], |_, _, _| true, |_| Ok(fetch_cost(0)), |_| true);
        assert_eq!(summary.changes.len(), 1);
        assert!(summary.changes[0].added.is_empty());
        assert!(summary.changes[0].removed.is_empty());
        // Untracked keys produce no change records.
        let summary =
            set.maintain_tracked(2, 3, &[], |_, _, _| true, |_| Ok(fetch_cost(0)), |_| false);
        assert!(summary.changes.is_empty());
    }

    #[test]
    fn every_drop_trigger_reports_the_dropped_key() {
        // Trigger 1: stale epoch (entry at 0, commit bases at 3).
        let set = MaterializedSet::new(8, 1);
        let k = key("s", 1);
        record(&set, k.clone(), 0, 10);
        let summary = set.maintain_with(3, 4, &[], |_, _, _| true, |_| Ok(fetch_cost(0)));
        assert_eq!(summary.dropped, vec![k.clone()]);
        // Trigger 2: gate rejection.
        record(&set, k.clone(), 4, 10);
        let touched = vec!["visit".to_string()];
        let summary = set.maintain_with(4, 5, &touched, |_, _, _| false, |_| Ok(fetch_cost(0)));
        assert_eq!(summary.dropped, vec![k.clone()]);
        // Trigger 3: maintenance error.
        record(&set, k.clone(), 5, 10);
        let summary = set.maintain_with(
            5,
            6,
            &[],
            |_, _, _| true,
            |_| Err(CoreError::Invariant("boom".into())),
        );
        assert_eq!(summary.dropped, vec![k.clone()]);
        // Cost evictions are reported too.
        record(&set, k.clone(), 6, 1);
        let summary = set.maintain_with(6, 7, &[], |_, _, _| true, |_| Ok(fetch_cost(50)));
        assert_eq!(summary.cost_evictions, 1);
        assert_eq!(summary.dropped, vec![k]);
    }

    #[test]
    fn diff_answers_handles_unsorted_old_and_disjoint_sets() {
        let old = vec![tuple!["c"], tuple!["a"]];
        let new = vec![tuple!["a"], tuple!["b"]];
        let (added, removed) = diff_answers(&old, &new);
        assert_eq!(added, vec![tuple!["b"]]);
        assert_eq!(removed, vec![tuple!["c"]]);
        let (added, removed) = diff_answers(&[], &new);
        assert_eq!(added, new);
        assert!(removed.is_empty());
        let (added, removed) = diff_answers(&old, &[]);
        assert!(added.is_empty());
        assert_eq!(removed, vec![tuple!["a"], tuple!["c"]]);
    }

    #[test]
    fn refreshing_a_stale_entry_keeps_the_admission_order() {
        let set = MaterializedSet::new(2, 1);
        record(&set, key("a", 1), 0, 10);
        record(&set, key("b", 1), 0, 10);
        // `a` re-recorded at a later epoch: refresh in place, no re-admission.
        record(&set, key("a", 1), 5, 10);
        assert!(set.get(&key("a", 1), 5).is_some());
        // A third key still evicts `a` first (FIFO by admission).
        record(&set, key("c", 1), 5, 10);
        assert!(set.get(&key("a", 1), 5).is_none());
        assert!(set.get(&key("b", 1), 0).is_some());
        assert!(set.get(&key("c", 1), 5).is_some());
    }
}
