//! The materialized answer cache: incrementally maintained answers for hot
//! (query shape, parameter values) pairs.
//!
//! The plan cache ([`crate::cache::PlanCache`]) removes *planning* from the
//! hot path; this layer removes *execution*.  A pair that has been requested
//! often enough (the threshold of [`MaterializedSet::new`]) is admitted: its
//! answer tuples are kept alongside per-shape maintenance state, and every
//! later request
//! whose pinned snapshot epoch matches the entry's `valid_epoch` is served
//! with **zero base-data accesses**.
//!
//! On [`Engine::commit`](crate::Engine::commit) the engine *maintains*
//! admitted answers instead of invalidating them: the paper's delta-rule
//! machinery, specialised to bounded CQ maintenance
//! ([`IncrementalBoundedEvaluator::maintain_across`]), runs against the two
//! pinned snapshot versions around the commit and touches `O(|∆D|)` base
//! tuples.  The engine falls back to the bounded-plan path — the entry is
//! dropped and the next request re-executes and re-records — whenever
//!
//! * the entry is **stale** (its `valid_epoch` is not the commit's base
//!   version: a concurrent commit raced the recording request),
//! * [`maintenance_is_bounded`](si_core::maintenance_is_bounded) rejects the
//!   update for some touched relation (Corollary 5.3 — for shapes admitted
//!   through the bounded planner the check passes by plan monotonicity, but
//!   it is the contract, so it is enforced, cached per *shape*),
//! * maintenance itself errors (the evaluator's answers may then be
//!   partially maintained and are unusable), or
//! * maintenance has become **uneconomical**: once the tuples fetched by
//!   maintenance since the entry's last hit exceed the tuples its last full
//!   execution fetched, keeping the answer warm costs more base-data access
//!   than recomputing it on demand, and the entry is evicted
//!   (cost-based eviction; the [`MeterSnapshot`]s make both sides exact).
//!
//! Statistics epochs never invalidate materialized answers — answers are
//! exact, only plan *choice* depends on statistics — but each entry records
//! the stats epoch of the execution that populated it, so a re-recording
//! after a stats refresh also refreshes the re-execution cost that the
//! eviction economics compare against.
//!
//! Capacity eviction is FIFO in admission order, matching the plan cache.

use crate::shape::ShapeKey;
use si_access::StaticCost;
use si_core::{CoreError, IncrementalBoundedEvaluator};
use si_data::{MeterSnapshot, Tuple, Value};
use si_query::{ConjunctiveQuery, Var};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Key of a materialized answer: the canonical query shape plus the
/// invocation's parameter values (the values are what the shape key
/// deliberately excludes).
pub type MaterializedKey = (ShapeKey, Vec<Value>);

/// A materialized-cache hit, ready to be returned without touching data.
#[derive(Debug, Clone)]
pub struct MaterializedAnswer {
    /// The maintained answer tuples for the pinned epoch, shared with the
    /// entry (a hit is an `Arc` clone; materialise with
    /// [`MaterializedAnswer::into_answers`]).
    pub answers: Arc<Vec<Tuple>>,
    /// The static cost of the plan that originally produced the answers
    /// (what admission control re-checks).
    pub static_cost: StaticCost,
}

impl MaterializedAnswer {
    /// The answer tuples as an owned vector — one clone per hit, taken
    /// outside any cache lock (the entry keeps sharing the original).
    pub fn into_answers(self) -> Vec<Tuple> {
        (*self.answers).clone()
    }
}

/// One admitted answer with its maintenance state.
#[derive(Debug)]
struct Entry {
    /// The maintained answers.  `None` while maintenance runs outside the
    /// lock ([`MaterializedSet::maintain_with`] phase 2): readers treat an
    /// absent evaluator as a miss and fall back to the plan path, so the
    /// write-path data accesses never stall the read path.
    evaluator: Option<IncrementalBoundedEvaluator>,
    /// The evaluator's answers rendered once per change, so a hit shares
    /// them by `Arc` instead of rebuilding the vector under the read lock.
    answers: Arc<Vec<Tuple>>,
    /// The snapshot epoch the answers are exact for.
    valid_epoch: u64,
    /// The statistics epoch of the execution that (re-)populated the entry.
    stats_epoch: u64,
    /// Static cost of the producing plan (served back on hits).
    static_cost: StaticCost,
    /// Measured cost of the last full execution — the re-execution side of
    /// the eviction economics.
    reexec_cost: MeterSnapshot,
    /// Cumulative maintenance cost over the entry's lifetime (observability).
    maintain_cost: MeterSnapshot,
    /// Commits this entry survived through maintenance.
    maintained_commits: u64,
    /// Tuples fetched by maintenance since the entry was last *hit* — the
    /// keep-warm side of the eviction economics (atomic so hits can reset it
    /// under the read lock).
    maintain_tuples_since_hit: AtomicU64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<MaterializedKey, Entry>,
    /// Admission order, for FIFO eviction.
    order: VecDeque<MaterializedKey>,
    /// Requests seen per key before admission — atomic so the common case
    /// (bumping an already-tracked key) happens under the *read* lock.
    seen: HashMap<MaterializedKey, AtomicU64>,
    /// Per-*shape* maintenance-boundedness decisions, keyed by touched
    /// relation: every entry of a shape shares one set of Corollary-5.3
    /// verdicts.
    boundedness: HashMap<ShapeKey, HashMap<String, bool>>,
}

/// What a maintenance pass did, for the engine's metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MaintenanceSummary {
    /// Entries maintained to the new epoch.
    pub maintained: u64,
    /// Entries dropped (stale, gate-rejected, or errored) — the next request
    /// falls back to the bounded-plan path.
    pub fallbacks: u64,
    /// Entries evicted because maintenance became costlier than
    /// re-execution.
    pub cost_evictions: u64,
    /// Total base-data accesses of every *completed* maintenance run,
    /// whether or not its result could be published.  An errored run's
    /// partial fetches are not in here — its cost never reaches this layer
    /// (the engine accounts them on its own write-path meter inside the
    /// `run` closure).
    pub accesses: MeterSnapshot,
}

/// The concurrent (shape, values) → maintained answers cache.
///
/// `capacity == 0` disables the layer: every call is a cheap no-op and the
/// engine behaves exactly as the pure plan-cache path.
#[derive(Debug)]
pub struct MaterializedSet {
    inner: RwLock<Inner>,
    capacity: usize,
    threshold: u64,
    hits: AtomicU64,
    evictions: AtomicU64,
}

impl MaterializedSet {
    /// Creates a set holding at most `capacity` answers; a key is admitted
    /// once it has been requested `threshold` times (`threshold <= 1` admits
    /// on first execution).
    pub fn new(capacity: usize, threshold: u64) -> Self {
        MaterializedSet {
            inner: RwLock::new(Inner::default()),
            capacity,
            threshold: threshold.max(1),
            hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// True iff the layer is disabled (capacity 0).
    pub fn is_disabled(&self) -> bool {
        self.capacity == 0
    }

    /// Looks up maintained answers for `key`, provided they are exact for
    /// `epoch`.  A hit resets the entry's keep-warm cost counter.
    pub fn get(&self, key: &MaterializedKey, epoch: u64) -> Option<MaterializedAnswer> {
        if self.is_disabled() {
            return None;
        }
        let inner = self.inner.read().expect("materialized set poisoned");
        let entry = inner.map.get(key)?;
        // An entry whose evaluator is out for maintenance is a miss.
        entry.evaluator.as_ref()?;
        if entry.valid_epoch != epoch {
            return None;
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        entry.maintain_tuples_since_hit.store(0, Ordering::Relaxed);
        Some(MaterializedAnswer {
            answers: Arc::clone(&entry.answers),
            static_cost: entry.static_cost,
        })
    }

    /// Records a plan-path execution: refreshes an existing (stale) entry in
    /// place, or counts the key towards admission and admits it at the
    /// threshold (evicting the oldest admitted key beyond capacity).
    ///
    /// `answers` must be exact for snapshot `epoch`; `reexec_cost` is the
    /// measured cost of the execution that produced them.
    ///
    /// The common cold-key case — bumping the hotness counter of a key that
    /// is tracked but below the threshold — runs under the *read* lock
    /// (atomic counters); the write lock is taken only at a key's first
    /// sighting, at admission, and for stale-entry refreshes, so hotness
    /// bookkeeping does not serialize concurrent serve threads.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        key: MaterializedKey,
        query: &ConjunctiveQuery,
        parameters: &[Var],
        answers: &[Tuple],
        epoch: u64,
        stats_epoch: u64,
        static_cost: StaticCost,
        reexec_cost: MeterSnapshot,
    ) {
        if self.is_disabled() {
            return;
        }
        // Read-lock fast path.
        let mut counted = false;
        {
            let inner = self.inner.read().expect("materialized set poisoned");
            if let Some(entry) = inner.map.get(&key) {
                // Never refresh an entry backwards: a read on an *older*
                // pinned version must not clobber answers maintained past it
                // (re-checked under the write lock below).
                if entry.valid_epoch > epoch {
                    return;
                }
            } else if let Some(counter) = inner.seen.get(&key) {
                counted = true;
                if counter.fetch_add(1, Ordering::Relaxed) + 1 < self.threshold {
                    return;
                }
            }
        }
        let mut inner = self.inner.write().expect("materialized set poisoned");
        let admitted = inner.map.contains_key(&key);
        if admitted {
            if inner.map[&key].valid_epoch > epoch {
                return;
            }
        } else if counted {
            // Counted to the threshold on the fast path: admit.
            inner.seen.remove(&key);
        } else {
            // First sighting of the key (or its counter was reset while the
            // lock was dropped).  Bound the hotness tracker: counters are
            // advisory, so when a long tail of distinct cold keys outgrows
            // the budget the map is simply reset — a cold key then needs its
            // request streak again, as on a fresh engine.
            if inner.seen.len() >= self.seen_budget() && !inner.seen.contains_key(&key) {
                inner.seen.clear();
            }
            let counter = inner
                .seen
                .entry(key.clone())
                .or_insert_with(|| AtomicU64::new(0));
            if counter.fetch_add(1, Ordering::Relaxed) + 1 < self.threshold {
                return;
            }
            inner.seen.remove(&key);
        }
        let evaluator = IncrementalBoundedEvaluator::from_materialized(
            query.clone(),
            parameters.to_vec(),
            key.1.clone(),
            answers.iter().cloned(),
            reexec_cost,
        );
        let entry = Entry {
            evaluator: Some(evaluator),
            answers: Arc::new(answers.to_vec()),
            valid_epoch: epoch,
            stats_epoch,
            static_cost,
            reexec_cost,
            maintain_cost: MeterSnapshot::default(),
            maintained_commits: 0,
            maintain_tuples_since_hit: AtomicU64::new(0),
        };
        if inner.map.insert(key.clone(), entry).is_none() {
            inner.order.push_back(key);
            while inner.map.len() > self.capacity {
                let Some(oldest) = inner.order.pop_front() else {
                    break;
                };
                Self::purge(&mut inner, &oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Maintains every admitted entry across a commit from `base_epoch` to
    /// `next_epoch`.
    ///
    /// `gate` answers "is maintenance of this shape bounded when `relation`
    /// is updated?" (consulted once per shape per relation, cached); `run`
    /// performs the actual bounded maintenance of one entry's evaluator and
    /// returns its measured cost.  Entries that are stale, gate-rejected or
    /// whose maintenance errors are dropped; entries whose keep-warm cost
    /// has overtaken their re-execution cost are evicted.
    ///
    /// The base-data accesses of `run` happen **outside** the set's lock:
    /// phase 1 triages entries and takes the maintainable evaluators out
    /// under a brief write lock, phase 2 runs maintenance lock-free (readers
    /// miss on the in-flight entries and fall back to the plan path instead
    /// of waiting), phase 3 publishes the results.  Callers are expected to
    /// serialise maintenance passes themselves (the engine's commit lock
    /// does); a racing [`MaterializedSet::record`] that re-populates an
    /// in-flight entry against the committed version wins over the
    /// maintained result.
    pub fn maintain_with<G, R>(
        &self,
        base_epoch: u64,
        next_epoch: u64,
        touched: &[String],
        mut gate: G,
        mut run: R,
    ) -> MaintenanceSummary
    where
        G: FnMut(&ConjunctiveQuery, &[Var], &str) -> bool,
        R: FnMut(&mut IncrementalBoundedEvaluator) -> Result<MeterSnapshot, CoreError>,
    {
        let mut summary = MaintenanceSummary::default();
        if self.is_disabled() {
            return summary;
        }

        // Phase 1 — triage under the write lock, no data access: drop stale
        // and gate-rejected entries, take the evaluators of the rest.
        let mut work: Vec<(MaterializedKey, IncrementalBoundedEvaluator)> = Vec::new();
        {
            let mut inner = self.inner.write().expect("materialized set poisoned");
            let inner = &mut *inner;
            let keys: Vec<MaterializedKey> = inner.order.iter().cloned().collect();
            let mut dropped: Vec<MaterializedKey> = Vec::new();
            for key in keys {
                let Some(entry) = inner.map.get_mut(&key) else {
                    continue;
                };
                let Some(evaluator) = entry.evaluator.as_ref() else {
                    continue;
                };
                if entry.valid_epoch == next_epoch {
                    // A racing reader already re-recorded the entry against
                    // the committed version: current, nothing to maintain.
                    continue;
                }
                if entry.valid_epoch != base_epoch {
                    // A commit raced the recording request: the answers are
                    // for some other version and cannot be maintained here.
                    summary.fallbacks += 1;
                    dropped.push(key);
                    continue;
                }
                // Corollary 5.3 gate, cached per shape and touched relation.
                let verdicts = inner.boundedness.entry(key.0.clone()).or_default();
                let bounded = touched.iter().all(|relation| {
                    *verdicts.entry(relation.clone()).or_insert_with(|| {
                        gate(evaluator.query(), evaluator.parameters(), relation)
                    })
                });
                if !bounded {
                    summary.fallbacks += 1;
                    dropped.push(key);
                    continue;
                }
                let evaluator = entry.evaluator.take().expect("checked Some above");
                work.push((key, evaluator));
            }
            for key in dropped {
                Self::purge(inner, &key);
            }
        }

        // Phase 2 — bounded maintenance against the two pinned versions,
        // without holding the lock.
        let results: Vec<(
            MaterializedKey,
            IncrementalBoundedEvaluator,
            Result<MeterSnapshot, CoreError>,
        )> = work
            .into_iter()
            .map(|(key, mut evaluator)| {
                let result = run(&mut evaluator);
                (key, evaluator, result)
            })
            .collect();

        // Phase 3 — publish under the write lock.
        {
            let mut inner = self.inner.write().expect("materialized set poisoned");
            let inner = &mut *inner;
            let mut dropped: Vec<MaterializedKey> = Vec::new();
            for (key, evaluator, result) in results {
                // The base-data work of phase 2 happened whether or not the
                // result can be published below; account for it first so
                // `accesses` never undercounts the write path.
                if let Ok(cost) = &result {
                    summary.accesses = summary.accesses.plus(cost);
                }
                let Some(entry) = inner.map.get_mut(&key) else {
                    // Evicted (capacity) while in flight: nothing to publish.
                    continue;
                };
                if entry.evaluator.is_some() && entry.valid_epoch >= next_epoch {
                    // A racing reader re-recorded the entry against the
                    // committed version; its answers are at least as fresh.
                    continue;
                }
                match result {
                    Ok(cost) => {
                        entry.answers = Arc::new(evaluator.answers());
                        entry.evaluator = Some(evaluator);
                        entry.valid_epoch = next_epoch;
                        entry.maintained_commits += 1;
                        entry.maintain_cost = entry.maintain_cost.plus(&cost);
                        let since_hit = entry
                            .maintain_tuples_since_hit
                            .fetch_add(cost.tuples_fetched, Ordering::Relaxed)
                            + cost.tuples_fetched;
                        summary.maintained += 1;
                        if since_hit > entry.reexec_cost.tuples_fetched {
                            summary.cost_evictions += 1;
                            dropped.push(key);
                        }
                    }
                    Err(_) => {
                        // The evaluator may be partially maintained: unusable.
                        summary.fallbacks += 1;
                        dropped.push(key);
                    }
                }
            }
            for key in dropped {
                Self::purge(inner, &key);
            }
        }
        self.evictions
            .fetch_add(summary.cost_evictions, Ordering::Relaxed);
        summary
    }

    /// The bound on the pre-admission hotness tracker (see
    /// [`MaterializedSet::record`]).
    fn seen_budget(&self) -> usize {
        self.capacity.saturating_mul(16).max(1024)
    }

    /// Removes `key` and, when it was the shape's last entry, the shape's
    /// cached boundedness verdicts.
    fn purge(inner: &mut Inner, key: &MaterializedKey) {
        inner.map.remove(key);
        inner.order.retain(|k| k != key);
        if !inner.map.keys().any(|(shape, _)| *shape == key.0) {
            inner.boundedness.remove(&key.0);
        }
    }

    /// The statistics epoch of the execution that (re-)populated `key`'s
    /// entry — observability for the eviction economics: answers are exact
    /// regardless, but the re-execution cost they are compared against was
    /// measured under this epoch's plan ranking.
    pub fn stats_epoch_of(&self, key: &MaterializedKey) -> Option<u64> {
        self.inner
            .read()
            .expect("materialized set poisoned")
            .map
            .get(key)
            .map(|e| e.stats_epoch)
    }

    /// Number of admitted answers.
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .expect("materialized set poisoned")
            .map
            .len()
    }

    /// True iff nothing is admitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Requests served from maintained answers so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Entries evicted so far (FIFO capacity + cost-based).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_data::tuple;
    use si_query::parse_cq;

    fn q() -> ConjunctiveQuery {
        parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap()
    }

    fn key(shape: &str, p: i64) -> MaterializedKey {
        (shape.to_string(), vec![Value::int(p)])
    }

    fn fetch_cost(tuples: u64) -> MeterSnapshot {
        MeterSnapshot {
            tuples_fetched: tuples,
            index_probes: 1,
            full_scans: 0,
            time_units: tuples,
        }
    }

    fn record(set: &MaterializedSet, k: MaterializedKey, epoch: u64, reexec_tuples: u64) {
        set.record(
            k,
            &q(),
            &["p".into()],
            &[tuple!["ann"]],
            epoch,
            0,
            StaticCost::default(),
            fetch_cost(reexec_tuples),
        );
    }

    #[test]
    fn threshold_gates_admission_and_epoch_gates_hits() {
        let set = MaterializedSet::new(8, 2);
        assert!(set.get(&key("s", 1), 0).is_none());
        // First execution: counted, not admitted.
        record(&set, key("s", 1), 0, 10);
        assert!(set.get(&key("s", 1), 0).is_none());
        assert!(set.is_empty());
        // Second execution: admitted.
        record(&set, key("s", 1), 0, 10);
        let hit = set.get(&key("s", 1), 0).expect("admitted at threshold");
        assert_eq!(hit.into_answers(), vec![tuple!["ann"]]);
        assert_eq!(set.len(), 1);
        assert_eq!(set.hits(), 1);
        // Same key, different values: separate hotness counter.
        assert!(set.get(&key("s", 2), 0).is_none());
        // A different epoch is never served.
        assert!(set.get(&key("s", 1), 1).is_none());
    }

    #[test]
    fn disabled_set_is_a_no_op() {
        let set = MaterializedSet::new(0, 1);
        assert!(set.is_disabled());
        record(&set, key("s", 1), 0, 10);
        record(&set, key("s", 1), 0, 10);
        assert!(set.get(&key("s", 1), 0).is_none());
        let summary = set.maintain_with(0, 1, &[], |_, _, _| true, |_| Ok(fetch_cost(0)));
        assert_eq!(summary, MaintenanceSummary::default());
    }

    #[test]
    fn the_hotness_tracker_is_bounded() {
        let set = MaterializedSet::new(4, 2);
        record(&set, key("hot", 1), 0, 10);
        // A long tail of distinct cold keys overflows the tracker's budget
        // (max(1024, 16 × capacity)) and resets it instead of growing it…
        for i in 0..1100 {
            record(&set, key(&format!("cold-{i}"), 1), 0, 10);
        }
        assert!(
            set.is_empty(),
            "single executions admit nothing at threshold 2"
        );
        // …so the hot key needs its full request streak again.
        record(&set, key("hot", 1), 0, 10);
        assert!(set.get(&key("hot", 1), 0).is_none());
        record(&set, key("hot", 1), 0, 10);
        assert!(set.get(&key("hot", 1), 0).is_some());
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let set = MaterializedSet::new(2, 1);
        record(&set, key("a", 1), 0, 10);
        record(&set, key("b", 1), 0, 10);
        record(&set, key("c", 1), 0, 10);
        assert_eq!(set.len(), 2);
        assert!(set.get(&key("a", 1), 0).is_none(), "oldest key evicted");
        assert!(set.get(&key("b", 1), 0).is_some());
        assert!(set.get(&key("c", 1), 0).is_some());
        assert_eq!(set.evictions(), 1);
    }

    #[test]
    fn maintenance_advances_epochs_and_applies_the_gate() {
        let set = MaterializedSet::new(8, 1);
        record(&set, key("s", 1), 0, 10);
        // Maintained: entry now valid at epoch 1.
        let touched = vec!["visit".to_string()];
        let summary = set.maintain_with(0, 1, &touched, |_, _, _| true, |_| Ok(fetch_cost(2)));
        assert_eq!(summary.maintained, 1);
        assert_eq!(summary.accesses.tuples_fetched, 2);
        assert!(set.get(&key("s", 1), 0).is_none());
        assert!(set.get(&key("s", 1), 1).is_some());
        // Gate rejection (for a relation with no cached verdict yet) drops
        // the entry.
        let other = vec!["person".to_string()];
        let summary = set.maintain_with(1, 2, &other, |_, _, _| false, |_| Ok(fetch_cost(0)));
        assert_eq!(summary.fallbacks, 1);
        assert!(set.is_empty());
    }

    #[test]
    fn gate_verdicts_are_cached_per_shape() {
        let set = MaterializedSet::new(8, 1);
        record(&set, key("s", 1), 0, 10);
        record(&set, key("s", 2), 0, 10);
        record(&set, key("t", 1), 0, 10);
        let touched = vec!["visit".to_string()];
        let mut calls = 0u32;
        set.maintain_with(
            0,
            1,
            &touched,
            |_, _, _| {
                calls += 1;
                true
            },
            |_| Ok(fetch_cost(0)),
        );
        // Three entries, two shapes: one verdict per shape.
        assert_eq!(calls, 2);
        // The cached verdict is reused on the next commit.
        set.maintain_with(
            1,
            2,
            &touched,
            |_, _, _| panic!("gate re-consulted"),
            |_| Ok(fetch_cost(0)),
        );
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn stale_entries_and_erroring_maintenance_fall_back() {
        let set = MaterializedSet::new(8, 1);
        record(&set, key("s", 1), 0, 10);
        // Entry valid at 0, but the commit bases at 3: stale, dropped.
        let summary = set.maintain_with(3, 4, &[], |_, _, _| true, |_| Ok(fetch_cost(0)));
        assert_eq!(summary.fallbacks, 1);
        assert!(set.is_empty());
        // Maintenance error drops too.
        record(&set, key("s", 1), 4, 10);
        let summary = set.maintain_with(
            4,
            5,
            &[],
            |_, _, _| true,
            |_| Err(CoreError::Invariant("boom".into())),
        );
        assert_eq!(summary.fallbacks, 1);
        assert!(set.is_empty());
    }

    #[test]
    fn cost_based_eviction_compares_keep_warm_against_reexecution() {
        let set = MaterializedSet::new(8, 1);
        // Re-execution fetched 6 tuples; each maintenance fetches 4.
        record(&set, key("s", 1), 0, 6);
        let s1 = set.maintain_with(0, 1, &[], |_, _, _| true, |_| Ok(fetch_cost(4)));
        assert_eq!(s1.cost_evictions, 0);
        assert!(set.get(&key("s", 1), 1).is_some()); // hit resets the counter
        let s2 = set.maintain_with(1, 2, &[], |_, _, _| true, |_| Ok(fetch_cost(4)));
        assert_eq!(
            s2.cost_evictions, 0,
            "one maintenance since the hit: 4 <= 6"
        );
        // No hit in between: 4 + 4 > 6 → evicted.
        let s3 = set.maintain_with(2, 3, &[], |_, _, _| true, |_| Ok(fetch_cost(4)));
        assert_eq!(s3.cost_evictions, 1);
        assert!(set.is_empty());
        assert_eq!(set.evictions(), 1);
    }

    #[test]
    fn re_recording_refreshes_the_stats_epoch_and_reexecution_cost() {
        let set = MaterializedSet::new(4, 1);
        record(&set, key("s", 1), 0, 10);
        assert_eq!(set.stats_epoch_of(&key("s", 1)), Some(0));
        // A later execution under a refreshed statistics epoch re-records
        // the entry: the cost basis (and its epoch) move with it.
        set.record(
            key("s", 1),
            &q(),
            &["p".into()],
            &[tuple!["ann"]],
            3,
            7,
            StaticCost::default(),
            fetch_cost(25),
        );
        assert_eq!(set.stats_epoch_of(&key("s", 1)), Some(7));
        assert_eq!(set.stats_epoch_of(&key("s", 2)), None);
    }

    #[test]
    fn refreshing_a_stale_entry_keeps_the_admission_order() {
        let set = MaterializedSet::new(2, 1);
        record(&set, key("a", 1), 0, 10);
        record(&set, key("b", 1), 0, 10);
        // `a` re-recorded at a later epoch: refresh in place, no re-admission.
        record(&set, key("a", 1), 5, 10);
        assert!(set.get(&key("a", 1), 5).is_some());
        // A third key still evicts `a` first (FIFO by admission).
        record(&set, key("c", 1), 5, 10);
        assert!(set.get(&key("a", 1), 5).is_none());
        assert!(set.get(&key("b", 1), 0).is_some());
        assert!(set.get(&key("c", 1), 5).is_some());
    }
}
