//! The replicated serving plane: shard replica servers, the primary-side
//! wire clients that feed them, and the epoch-pinned prober the replicated
//! read path executes against.
//!
//! ## Roles
//!
//! * [`ShardReplica`] — one shard's replica *server*.  It sits behind a
//!   [`si_wire::Transport`] boundary, applies the primary's WAL stream in
//!   epoch order, retains a window of recent versions, and serves
//!   **epoch-pinned reads**: a probe pinned to epoch `e'` is answered from
//!   the retained version at exactly `e'`, and refused (never served from a
//!   different version) when `e'` is ahead of replication or past the
//!   retention window.
//! * [`ReplicaClient`] — the primary's per-shard wire client: a synchronous
//!   connect handshake (symbol-dictionary seed, WAL replay or snapshot
//!   resync), then a reader thread that routes replies to waiting callers
//!   and folds `WalAck`s into the acknowledged-epoch watermark.
//! * [`ReplicaSet`] — the primary's replication state: one client slot per
//!   shard, the bounded replay log of recently shipped records, the routing
//!   state shared with [`si_access::ReplicatedAccess`], and the epoch-wait
//!   that gives replicated reads read-your-writes.
//! * [`WireProber`] — [`si_access::ShardProber`] over a `ReplicaSet` at a
//!   pinned epoch; replicas execute only the raw pushed-down probe, so
//!   transport-backed accounting is byte-identical to in-process sharded
//!   accounting (see `si_access::remote`).
//!
//! ## Stream discipline
//!
//! The primary ships one [`Message::WalRecord`] per shard per commit — the
//! shard's split of the committed delta as [`codec::delta_bytes`], the same
//! record encoding the durability WAL frames.  Records apply strictly in
//! epoch order: an already-applied epoch acks idempotently (the resend after
//! a reconnect), a gap is refused with an error so the primary falls back to
//! a full [`Message::Snapshot`].  A torn connection never corrupts a
//! replica: frames are CRC-checked and a partial frame surfaces as
//! [`WireError::Closed`], so the replica's state is always the clean prefix
//! of applied records — exactly what the kill-at-any-byte harness pins.

use crate::error::EngineError;
use crate::Result;
use si_access::{AccessError, AccessSchema, ReplicatedAccess, ShardProber};
use si_data::codec;
use si_data::{
    Database, DatabaseSchema, DatabaseSnapshot, PartitionRouter, RelationPage, RelationSchema,
    ShardedSnapshotView, Tuple, Value,
};
use si_telemetry::LatencyHistogram;
use si_wire::{Connection, Message, Transport, WireError, WireResult, PROTOCOL_VERSION};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Versions a replica retains by default (the epoch-pinned read window).
pub const DEFAULT_RETAIN: usize = 8;

/// Shipped records the primary keeps for reconnect replay before falling
/// back to a full snapshot.
const REPLAY_LOG_CAP: usize = 1024;

/// How long a replicated read waits for every replica to acknowledge the
/// pinned epoch before failing with [`EngineError::EpochUnavailable`].
const DEFAULT_EPOCH_WAIT: Duration = Duration::from_secs(5);

/// How long a primary-side caller waits for one reply frame.
const DEFAULT_REPLY_TIMEOUT: Duration = Duration::from_secs(10);

/// The replica's mutable state: the retained version window plus the
/// lag-injection pause flag.
#[derive(Debug, Default)]
struct ReplicaState {
    /// Applied versions by epoch; empty until a snapshot bootstrap.
    retained: BTreeMap<u64, Arc<DatabaseSnapshot>>,
    /// While set, WAL application blocks (probes of retained epochs would
    /// still be served, but they share the connection's serve loop).
    paused: bool,
}

impl ReplicaState {
    fn newest(&self) -> Option<u64> {
        self.retained.keys().next_back().copied()
    }

    fn oldest(&self) -> Option<u64> {
        self.retained.keys().next().copied()
    }
}

/// One shard's replica server: applies the primary's WAL stream and serves
/// epoch-pinned reads from its retained version window.
///
/// State is independent of any one connection: [`ShardReplica::serve`] runs
/// one message loop per connection, and a replica whose wire tore resumes
/// from its clean applied prefix when the primary reconnects on a fresh
/// transport.
#[derive(Debug)]
pub struct ShardReplica {
    state: Mutex<ReplicaState>,
    resumed: Condvar,
    /// Number of recent versions retained for epoch-pinned reads (≥ 1).
    retain: usize,
}

impl ShardReplica {
    /// Creates an empty replica retaining up to `retain` recent versions.
    pub fn new(retain: usize) -> Self {
        ShardReplica {
            state: Mutex::new(ReplicaState::default()),
            resumed: Condvar::new(),
            retain: retain.max(1),
        }
    }

    /// Blocks WAL application (lag injection for tests): shipped records
    /// queue on the wire and stay unacknowledged until [`ShardReplica::resume`].
    pub fn pause(&self) {
        self.state.lock().expect("replica state poisoned").paused = true;
    }

    /// Unblocks WAL application.
    pub fn resume(&self) {
        self.state.lock().expect("replica state poisoned").paused = false;
        self.resumed.notify_all();
    }

    /// Newest epoch this replica has applied (`None` before bootstrap).
    pub fn newest_epoch(&self) -> Option<u64> {
        self.state.lock().expect("replica state poisoned").newest()
    }

    /// Oldest epoch still retained for pinned reads.
    pub fn oldest_epoch(&self) -> Option<u64> {
        self.state.lock().expect("replica state poisoned").oldest()
    }

    /// The retained epochs, oldest first.
    pub fn retained_epochs(&self) -> Vec<u64> {
        self.state
            .lock()
            .expect("replica state poisoned")
            .retained
            .keys()
            .copied()
            .collect()
    }

    /// Materialises the retained version at `epoch` (tests compare this
    /// against the primary shard's own snapshot).
    pub fn database_at(&self, epoch: u64) -> Option<Database> {
        self.state
            .lock()
            .expect("replica state poisoned")
            .retained
            .get(&epoch)
            .map(|snap| snap.to_database())
    }

    /// Runs one connection's message loop until the peer disconnects.
    ///
    /// A clean peer close (or a torn wire) returns `Ok(())` — the replica
    /// keeps its applied state and a later [`ShardReplica::serve`] on a
    /// fresh connection resumes from it.  Protocol violations return the
    /// wire error.
    pub fn serve(&self, conn: &Connection) -> WireResult<()> {
        let result = self.serve_loop(conn);
        // Tear down both directions on exit: a peer blocked on a reply
        // (e.g. mid-handshake across a torn wire) must wake with `Closed`
        // rather than hang on a response that will never come.
        conn.shutdown();
        result
    }

    fn serve_loop(&self, conn: &Connection) -> WireResult<()> {
        loop {
            let message = match conn.recv() {
                Ok(m) => m,
                Err(WireError::Closed) => return Ok(()),
                Err(e) => return Err(e),
            };
            match message {
                Message::Hello { version, .. } => {
                    if version != PROTOCOL_VERSION {
                        let _ = conn.send(&Message::Error {
                            id: 0,
                            message: format!(
                                "protocol version {version} unsupported (speaking {PROTOCOL_VERSION})"
                            ),
                        });
                        return Err(WireError::Protocol(format!(
                            "peer speaks protocol version {version}"
                        )));
                    }
                    let newest = self.newest_epoch().unwrap_or(0);
                    conn.send(&Message::HelloAck {
                        version: PROTOCOL_VERSION,
                        epoch: newest,
                    })?;
                }
                Message::Snapshot { epoch, pages } => match install_pages(&pages, epoch) {
                    Ok(snapshot) => {
                        let mut state = self.state.lock().expect("replica state poisoned");
                        state.retained = BTreeMap::from([(epoch, Arc::new(snapshot))]);
                        drop(state);
                        conn.send(&Message::SnapshotAck { epoch })?;
                    }
                    Err(message) => conn.send(&Message::Error { id: 0, message })?,
                },
                Message::WalRecord { epoch, delta } => {
                    let reply = self.apply_record(epoch, &delta);
                    conn.send(&reply)?;
                }
                Message::Probe {
                    id,
                    epoch,
                    relation,
                    attrs,
                    key,
                } => {
                    let reply = self.serve_probe(id, epoch, &relation, &attrs, &key);
                    conn.send(&reply)?;
                }
                Message::Scan {
                    id,
                    epoch,
                    relation,
                } => {
                    let reply = self.serve_probe(id, epoch, &relation, &[], &[]);
                    conn.send(&reply)?;
                }
                Message::Contains {
                    id,
                    epoch,
                    relation,
                    tuple,
                } => {
                    let reply = self.serve_contains(id, epoch, &relation, &tuple);
                    conn.send(&reply)?;
                }
                other => {
                    return Err(WireError::Protocol(format!(
                        "replica received a reply-direction message: {other:?}"
                    )))
                }
            }
        }
    }

    /// Spawns [`ShardReplica::serve`] on its own thread (test harness
    /// convenience; the connection's serve side is single-threaded anyway).
    pub fn spawn(
        self: &Arc<Self>,
        conn: Arc<Connection>,
    ) -> std::thread::JoinHandle<WireResult<()>> {
        let replica = Arc::clone(self);
        std::thread::spawn(move || replica.serve(&conn))
    }

    /// Applies one shipped WAL record in epoch order (blocking while
    /// paused), answering with the ack or the refusal.
    fn apply_record(&self, epoch: u64, delta: &[u8]) -> Message {
        let mut state = self.state.lock().expect("replica state poisoned");
        while state.paused {
            state = self.resumed.wait(state).expect("replica state poisoned");
        }
        let Some(newest) = state.newest() else {
            return Message::Error {
                id: 0,
                message: "wal record before snapshot bootstrap".to_owned(),
            };
        };
        if epoch <= newest {
            // Resent prefix after a reconnect: already applied, ack as held.
            return Message::WalAck { epoch: newest };
        }
        if epoch != newest + 1 {
            return Message::Error {
                id: 0,
                message: format!("wal gap: have epoch {newest}, record targets {epoch}"),
            };
        }
        let parsed = match codec::delta_from_bytes(delta) {
            Ok(d) => d,
            Err(e) => {
                return Message::Error {
                    id: 0,
                    message: format!("wal record decode failed: {e}"),
                }
            }
        };
        let base = state
            .retained
            .get(&newest)
            .expect("newest() came from the map")
            .clone();
        match base.apply(&parsed) {
            Ok(next) => {
                debug_assert_eq!(next.epoch(), epoch);
                state.retained.insert(epoch, Arc::new(next));
                while state.retained.len() > self.retain {
                    let oldest = *state.retained.keys().next().expect("non-empty");
                    state.retained.remove(&oldest);
                }
                Message::WalAck { epoch }
            }
            Err(e) => Message::Error {
                id: 0,
                message: format!("wal record apply failed: {e}"),
            },
        }
    }

    /// Runs the raw pushed-down probe against the retained version pinned
    /// to `epoch` (empty `attrs` = full iteration, the scan leg).
    fn serve_probe(
        &self,
        id: u64,
        epoch: u64,
        relation: &str,
        attrs: &[String],
        key: &[Value],
    ) -> Message {
        let state = self.state.lock().expect("replica state poisoned");
        let Some(snapshot) = state.retained.get(&epoch) else {
            return Message::Refused {
                id,
                requested: epoch,
                oldest: state.oldest().unwrap_or(0),
                newest: state.newest().unwrap_or(0),
            };
        };
        match snapshot
            .relation(relation)
            .map_err(AccessError::Data)
            .and_then(|rel| si_access::raw_index_probe(rel, attrs, key))
        {
            Ok(tuples) => Message::Rows { id, tuples },
            Err(e) => Message::Error {
                id,
                message: e.to_string(),
            },
        }
    }

    /// Membership probe against the retained version pinned to `epoch`.
    fn serve_contains(&self, id: u64, epoch: u64, relation: &str, tuple: &Tuple) -> Message {
        let state = self.state.lock().expect("replica state poisoned");
        let Some(snapshot) = state.retained.get(&epoch) else {
            return Message::Refused {
                id,
                requested: epoch,
                oldest: state.oldest().unwrap_or(0),
                newest: state.newest().unwrap_or(0),
            };
        };
        match snapshot.relation(relation) {
            Ok(rel) => Message::Found {
                id,
                found: rel.contains(tuple),
            },
            Err(e) => Message::Error {
                id,
                message: e.to_string(),
            },
        }
    }
}

/// Rebuilds a shard database from snapshot pages and pins it at `epoch`
/// (the same page → database pattern durability checkpoints use).
fn install_pages(
    pages: &[RelationPage],
    epoch: u64,
) -> std::result::Result<DatabaseSnapshot, String> {
    let schemas = pages
        .iter()
        .map(|page| {
            let attrs: Vec<&str> = page.attributes.iter().map(String::as_str).collect();
            RelationSchema::new(&page.name, &attrs)
        })
        .collect();
    let schema = DatabaseSchema::from_relations(schemas).map_err(|e| e.to_string())?;
    let mut db = Database::empty(schema);
    for page in pages {
        for attrs in &page.declared {
            db.declare_index(&page.name, attrs)
                .map_err(|e| e.to_string())?;
        }
        db.insert_all(&page.name, page.tuples.iter().cloned())
            .map_err(|e| e.to_string())?;
    }
    Ok(DatabaseSnapshot::from_database_at(db, epoch))
}

/// The primary's wire client for one shard replica.
///
/// Created by the connect handshake ([`crate::Engine::attach_replica`]): the
/// handshake is synchronous — hello, then WAL replay or snapshot resync,
/// each step waiting for its ack — and only then does the reader thread
/// start, so the replica is known to be at the primary's epoch before any
/// read is routed to it.
#[derive(Debug)]
pub struct ReplicaClient {
    shard: usize,
    conn: Arc<Connection>,
    /// In-flight request replies, routed by request id.
    pending: Mutex<HashMap<u64, mpsc::Sender<Message>>>,
    next_id: AtomicU64,
    /// Newest epoch the replica has acknowledged applying.
    acked: Mutex<u64>,
    acked_cv: Condvar,
    connected: AtomicBool,
    /// Ship instants of unacknowledged records, for the ack histogram.
    inflight_ship: Mutex<HashMap<u64, Instant>>,
    ack_histogram: Arc<LatencyHistogram>,
    reply_timeout: Duration,
}

impl ReplicaClient {
    /// Synchronous connect: handshake, bring the replica to `epoch` (WAL
    /// replay from `log` when it covers the gap, full snapshot otherwise),
    /// then start the reader thread.
    ///
    /// `pages` lazily serialises the primary shard's relations — only
    /// called when a snapshot bootstrap is actually needed.
    #[allow(clippy::too_many_arguments)]
    fn connect(
        conn: Arc<Connection>,
        shard: usize,
        epoch: u64,
        seed: Vec<String>,
        pages: impl FnOnce() -> Vec<RelationPage>,
        log: &BTreeMap<u64, Arc<Vec<Vec<u8>>>>,
        ack_histogram: Arc<LatencyHistogram>,
        reply_timeout: Duration,
    ) -> std::result::Result<Arc<ReplicaClient>, WireError> {
        conn.send(&Message::Hello {
            version: PROTOCOL_VERSION,
            shard: shard as u32,
            epoch,
            seed,
        })?;
        let replica_epoch = match conn.recv()? {
            Message::HelloAck { version, epoch } => {
                if version != PROTOCOL_VERSION {
                    return Err(WireError::Protocol(format!(
                        "replica speaks protocol version {version}"
                    )));
                }
                epoch
            }
            other => {
                return Err(WireError::Protocol(format!(
                    "expected HelloAck, got {other:?}"
                )))
            }
        };

        // Resync: replay the logged tail when it bridges the replica's
        // epoch to ours, otherwise ship a full snapshot.  `epoch == 0`
        // always snapshots — a replica reporting 0 may simply hold no
        // state yet.
        let replayable = replica_epoch > 0
            && replica_epoch <= epoch
            && ((replica_epoch + 1)..=epoch).all(|e| log.contains_key(&e));
        if replayable {
            for e in (replica_epoch + 1)..=epoch {
                let record = &log[&e][shard];
                conn.send(&Message::WalRecord {
                    epoch: e,
                    delta: record.clone(),
                })?;
                match conn.recv()? {
                    Message::WalAck { epoch: acked } if acked >= e => {}
                    other => {
                        return Err(WireError::Protocol(format!(
                            "expected WalAck({e}), got {other:?}"
                        )))
                    }
                }
            }
        } else if replica_epoch != epoch || epoch == 0 {
            conn.send(&Message::Snapshot {
                epoch,
                pages: pages(),
            })?;
            match conn.recv()? {
                Message::SnapshotAck { epoch: acked } if acked == epoch => {}
                other => {
                    return Err(WireError::Protocol(format!(
                        "expected SnapshotAck({epoch}), got {other:?}"
                    )))
                }
            }
        }

        let client = Arc::new(ReplicaClient {
            shard,
            conn,
            pending: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            acked: Mutex::new(epoch),
            acked_cv: Condvar::new(),
            connected: AtomicBool::new(true),
            inflight_ship: Mutex::new(HashMap::new()),
            ack_histogram,
            reply_timeout,
        });
        client.start_reader();
        Ok(client)
    }

    /// The reader thread: routes replies to waiting callers, folds WAL
    /// acks into the watermark, and severs the client on any wire failure
    /// (dropping pending senders so callers fail fast instead of timing
    /// out).
    fn start_reader(self: &Arc<Self>) {
        let client = Arc::clone(self);
        std::thread::spawn(move || {
            loop {
                match client.conn.recv() {
                    Ok(Message::WalAck { epoch }) => {
                        if let Some(shipped) = client
                            .inflight_ship
                            .lock()
                            .expect("ship clock poisoned")
                            .remove(&epoch)
                        {
                            let nanos =
                                u64::try_from(shipped.elapsed().as_nanos()).unwrap_or(u64::MAX);
                            client.ack_histogram.record(nanos);
                        }
                        let mut acked = client.acked.lock().expect("ack watermark poisoned");
                        if epoch > *acked {
                            *acked = epoch;
                            client.acked_cv.notify_all();
                        }
                    }
                    Ok(message) => match message.reply_id() {
                        Some(id) if id != 0 => {
                            let sender = client
                                .pending
                                .lock()
                                .expect("pending map poisoned")
                                .remove(&id);
                            if let Some(tx) = sender {
                                let _ = tx.send(message);
                            }
                        }
                        // `Error { id: 0 }` (stream-level failure) or an
                        // unexpected request-direction message: sever.
                        _ => break,
                    },
                    Err(_) => break,
                }
            }
            client.sever();
        });
    }

    /// Marks the client dead and fails everything waiting on it.
    fn sever(&self) {
        self.connected.store(false, Ordering::SeqCst);
        // Close both directions so the replica's serve loop (and anything
        // else blocked on this wire) observes the death promptly.
        self.conn.shutdown();
        self.pending.lock().expect("pending map poisoned").clear();
        self.inflight_ship
            .lock()
            .expect("ship clock poisoned")
            .clear();
        // Wake epoch waiters so they observe the disconnect.
        self.acked_cv.notify_all();
    }

    /// True while the reader thread believes the wire is healthy.
    pub fn is_connected(&self) -> bool {
        self.connected.load(Ordering::SeqCst)
    }

    /// Newest epoch the replica has acknowledged.
    pub fn acked_epoch(&self) -> u64 {
        *self.acked.lock().expect("ack watermark poisoned")
    }

    /// Ships one WAL record without waiting for its ack (replication lag is
    /// natural; reads wait on the watermark instead).
    fn ship(&self, epoch: u64, delta: &[u8]) {
        if !self.is_connected() {
            return;
        }
        self.inflight_ship
            .lock()
            .expect("ship clock poisoned")
            .insert(epoch, Instant::now());
        let record = Message::WalRecord {
            epoch,
            delta: delta.to_vec(),
        };
        if self.conn.send(&record).is_err() {
            self.sever();
        }
    }

    /// Blocks until the replica acknowledges `epoch`, the client severs, or
    /// `timeout` elapses.  Returns whether the epoch was acknowledged.
    pub fn wait_for_epoch(&self, epoch: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut acked = self.acked.lock().expect("ack watermark poisoned");
        while *acked < epoch {
            if !self.is_connected() {
                return false;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _timeout) = self
                .acked_cv
                .wait_timeout(acked, deadline - now)
                .expect("ack watermark poisoned");
            acked = guard;
        }
        true
    }

    /// One request/reply round trip, correlated by request id.
    fn call(
        &self,
        build: impl FnOnce(u64) -> Message,
    ) -> std::result::Result<Message, AccessError> {
        if !self.is_connected() {
            return Err(AccessError::Remote(format!(
                "shard {} replica disconnected",
                self.shard
            )));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        self.pending
            .lock()
            .expect("pending map poisoned")
            .insert(id, tx);
        if let Err(e) = self.conn.send(&build(id)) {
            self.pending
                .lock()
                .expect("pending map poisoned")
                .remove(&id);
            self.sever();
            return Err(AccessError::Remote(format!(
                "shard {} send failed: {e}",
                self.shard
            )));
        }
        match rx.recv_timeout(self.reply_timeout) {
            Ok(message) => Ok(message),
            Err(_) => {
                self.pending
                    .lock()
                    .expect("pending map poisoned")
                    .remove(&id);
                Err(AccessError::Remote(format!(
                    "shard {} reply timed out or connection died",
                    self.shard
                )))
            }
        }
    }

    /// Maps a reply carrying rows, folding refusals and remote failures
    /// into the access-error surface the executors understand.
    fn expect_rows(&self, reply: Message) -> std::result::Result<Vec<Tuple>, AccessError> {
        match reply {
            Message::Rows { tuples, .. } => Ok(tuples),
            Message::Refused {
                requested,
                oldest,
                newest,
                ..
            } => Err(AccessError::EpochUnavailable {
                requested,
                oldest,
                newest,
            }),
            Message::Error { message, .. } => Err(AccessError::Remote(message)),
            other => Err(AccessError::Remote(format!("unexpected reply {other:?}"))),
        }
    }

    /// Epoch-pinned pushed-down probe on the replica.
    pub fn probe(
        &self,
        epoch: u64,
        relation: &str,
        attrs: &[String],
        key: &[Value],
    ) -> std::result::Result<Vec<Tuple>, AccessError> {
        let reply = self.call(|id| Message::Probe {
            id,
            epoch,
            relation: relation.to_owned(),
            attrs: attrs.to_vec(),
            key: key.to_vec(),
        })?;
        self.expect_rows(reply)
    }

    /// Epoch-pinned full iteration on the replica.
    pub fn scan(&self, epoch: u64, relation: &str) -> std::result::Result<Vec<Tuple>, AccessError> {
        let reply = self.call(|id| Message::Scan {
            id,
            epoch,
            relation: relation.to_owned(),
        })?;
        self.expect_rows(reply)
    }

    /// Epoch-pinned membership probe on the replica.
    pub fn contains(
        &self,
        epoch: u64,
        relation: &str,
        tuple: &Tuple,
    ) -> std::result::Result<bool, AccessError> {
        let reply = self.call(|id| Message::Contains {
            id,
            epoch,
            relation: relation.to_owned(),
            tuple: tuple.clone(),
        })?;
        match reply {
            Message::Found { found, .. } => Ok(found),
            Message::Refused {
                requested,
                oldest,
                newest,
                ..
            } => Err(AccessError::EpochUnavailable {
                requested,
                oldest,
                newest,
            }),
            Message::Error { message, .. } => Err(AccessError::Remote(message)),
            other => Err(AccessError::Remote(format!("unexpected reply {other:?}"))),
        }
    }
}

/// One replica's liveness and replication watermark, as the lag gauges and
/// tests observe it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// The shard this replica serves.
    pub shard: usize,
    /// Whether a client is attached and its wire is healthy.
    pub connected: bool,
    /// Newest epoch the replica has acknowledged (0 when never attached).
    pub acked_epoch: u64,
}

/// The primary's replication state: per-shard client slots, the bounded
/// replay log, and the routing state replicated reads share with
/// [`ReplicatedAccess`].
#[derive(Debug)]
pub struct ReplicaSet {
    schema: Arc<DatabaseSchema>,
    access: Arc<AccessSchema>,
    router: Arc<PartitionRouter>,
    slots: Vec<Mutex<Option<Arc<ReplicaClient>>>>,
    /// Recently shipped records: epoch → per-shard `delta_bytes`.  Bounded
    /// by [`REPLAY_LOG_CAP`]; reconnects beyond it snapshot instead.
    log: Mutex<BTreeMap<u64, Arc<Vec<Vec<u8>>>>>,
    ack_histogram: Arc<LatencyHistogram>,
    /// Read-your-writes wait budget, in milliseconds.
    wait_millis: AtomicU64,
}

impl ReplicaSet {
    pub(crate) fn new(
        schema: Arc<DatabaseSchema>,
        access: Arc<AccessSchema>,
        router: Arc<PartitionRouter>,
        ack_histogram: Arc<LatencyHistogram>,
    ) -> Self {
        let shards = router.shards();
        ReplicaSet {
            schema,
            access,
            router,
            slots: (0..shards).map(|_| Mutex::new(None)).collect(),
            log: Mutex::new(BTreeMap::new()),
            ack_histogram,
            wait_millis: AtomicU64::new(
                u64::try_from(DEFAULT_EPOCH_WAIT.as_millis()).unwrap_or(u64::MAX),
            ),
        }
    }

    /// Number of shards (and client slots).
    pub fn shard_count(&self) -> usize {
        self.slots.len()
    }

    /// Adjusts how long replicated reads wait for acknowledgement before
    /// refusing with [`EngineError::EpochUnavailable`].
    pub fn set_epoch_wait(&self, timeout: Duration) {
        self.wait_millis.store(
            u64::try_from(timeout.as_millis()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
    }

    /// Per-shard liveness and watermark.
    pub fn statuses(&self) -> Vec<ReplicaStatus> {
        self.slots
            .iter()
            .enumerate()
            .map(|(shard, slot)| {
                let client = slot.lock().expect("replica slot poisoned").clone();
                match client {
                    Some(c) => ReplicaStatus {
                        shard,
                        connected: c.is_connected(),
                        acked_epoch: c.acked_epoch(),
                    },
                    None => ReplicaStatus {
                        shard,
                        connected: false,
                        acked_epoch: 0,
                    },
                }
            })
            .collect()
    }

    /// Connects (or reconnects) the replica serving `shard` over
    /// `transport`, syncing it to `view`'s epoch before the slot swaps.
    pub(crate) fn attach(
        &self,
        shard: usize,
        transport: Arc<dyn Transport>,
        view: &ShardedSnapshotView,
    ) -> Result<()> {
        if shard >= self.slots.len() {
            return Err(EngineError::Replication(format!(
                "shard {shard} out of range ({} shards)",
                self.slots.len()
            )));
        }
        let conn = Arc::new(Connection::new(transport));
        let seed = seed_symbols(&self.schema);
        let log = self.log.lock().expect("replay log poisoned").clone();
        let shard_snapshot = Arc::clone(view.shard(shard));
        let pages = move || {
            shard_snapshot
                .relations()
                .map(RelationPage::from_relation)
                .collect()
        };
        let client = ReplicaClient::connect(
            conn,
            shard,
            view.epoch(),
            seed,
            pages,
            &log,
            Arc::clone(&self.ack_histogram),
            DEFAULT_REPLY_TIMEOUT,
        )
        .map_err(|e| EngineError::Replication(format!("shard {shard} attach failed: {e}")))?;
        *self.slots[shard].lock().expect("replica slot poisoned") = Some(client);
        Ok(())
    }

    /// Ships one committed delta: splits it per shard, records the encoded
    /// records in the replay log, and sends each shard's record to its
    /// attached client without waiting for acks.
    pub(crate) fn ship(&self, view: &ShardedSnapshotView, merged: &si_data::Delta) {
        let epoch = view.epoch();
        let parts: Vec<Vec<u8>> = view.split(merged).iter().map(codec::delta_bytes).collect();
        let parts = Arc::new(parts);
        {
            let mut log = self.log.lock().expect("replay log poisoned");
            log.insert(epoch, Arc::clone(&parts));
            while log.len() > REPLAY_LOG_CAP {
                let oldest = *log.keys().next().expect("non-empty");
                log.remove(&oldest);
            }
        }
        for (shard, slot) in self.slots.iter().enumerate() {
            let client = slot.lock().expect("replica slot poisoned").clone();
            if let Some(client) = client {
                client.ship(epoch, &parts[shard]);
            }
        }
    }

    /// Read-your-writes: blocks until every shard's replica acknowledges
    /// `epoch`, refusing with [`EngineError::EpochUnavailable`] on timeout
    /// or disconnect and with [`EngineError::Replication`] when a shard has
    /// no replica attached at all.
    pub(crate) fn wait_read_your_writes(&self, epoch: u64) -> Result<()> {
        let timeout = Duration::from_millis(self.wait_millis.load(Ordering::Relaxed));
        for (shard, slot) in self.slots.iter().enumerate() {
            let client = slot
                .lock()
                .expect("replica slot poisoned")
                .clone()
                .ok_or_else(|| {
                    EngineError::Replication(format!("no replica attached for shard {shard}"))
                })?;
            if !client.wait_for_epoch(epoch, timeout) {
                return Err(EngineError::EpochUnavailable {
                    requested: epoch,
                    newest: client.acked_epoch(),
                });
            }
        }
        Ok(())
    }

    /// Builds the epoch-pinned transport-backed [`AccessSource`] replicated
    /// reads execute against.
    ///
    /// [`AccessSource`]: si_access::AccessSource
    pub(crate) fn source_at(&self, epoch: u64) -> Result<ReplicatedAccess<WireProber>> {
        let clients = self
            .slots
            .iter()
            .enumerate()
            .map(|(shard, slot)| {
                slot.lock()
                    .expect("replica slot poisoned")
                    .clone()
                    .ok_or_else(|| {
                        EngineError::Replication(format!("no replica attached for shard {shard}"))
                    })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(ReplicatedAccess::new(
            Arc::clone(&self.schema),
            Arc::clone(&self.access),
            Arc::clone(&self.router),
            WireProber { clients, epoch },
        ))
    }
}

/// Seeds both directions' symbol dictionaries with the schema's stable
/// vocabulary (relation and attribute names), so steady-state probe traffic
/// never re-ships them as strings.
fn seed_symbols(schema: &DatabaseSchema) -> Vec<String> {
    let mut seed: Vec<String> = Vec::new();
    for relation in schema.relations() {
        seed.push(relation.name().to_owned());
        for attr in relation.attributes() {
            seed.push(attr.clone());
        }
    }
    seed.sort();
    seed.dedup();
    seed
}

/// [`ShardProber`] over a [`ReplicaSet`]'s clients at a pinned epoch: each
/// probe travels the wire and executes `raw_index_probe` on the replica's
/// retained version at exactly that epoch.
#[derive(Debug)]
pub struct WireProber {
    clients: Vec<Arc<ReplicaClient>>,
    epoch: u64,
}

impl ShardProber for WireProber {
    fn shard_count(&self) -> usize {
        self.clients.len()
    }

    fn probe(
        &self,
        shard: usize,
        relation: &str,
        attrs: &[String],
        key: &[Value],
    ) -> std::result::Result<Vec<Tuple>, AccessError> {
        self.clients[shard].probe(self.epoch, relation, attrs, key)
    }

    fn contains(
        &self,
        shard: usize,
        relation: &str,
        tuple: &Tuple,
    ) -> std::result::Result<bool, AccessError> {
        self.clients[shard].contains(self.epoch, relation, tuple)
    }

    fn scan(&self, shard: usize, relation: &str) -> std::result::Result<Vec<Tuple>, AccessError> {
        self.clients[shard].scan(self.epoch, relation)
    }
}
