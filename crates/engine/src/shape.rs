//! Query-shape canonicalization: the prepared-statement key.
//!
//! Two requests should share one cached plan exactly when they are the same
//! query *up to variable renaming and query name* with the same parameter
//! positions — the varying part of a prepared query travels in the parameter
//! *values*, which never enter the plan.  [`canonicalize`] rewrites a
//! conjunctive query into that canonical shape (variables renamed `v0, v1, …`
//! in first-occurrence order over head → atoms → equalities → parameters)
//! and renders a deterministic [`ShapeKey`] string from it.
//!
//! Constants are part of the shape: `person(id, n, "NYC")` and
//! `person(id, n, "LA")` plan differently (the constant is baked into the
//! plan's probe), so they must not collide.  Callers that want one plan for
//! both write the city as a parameter instead — that is the whole point of
//! prepared queries.

use si_data::Value;
use si_query::{ConjunctiveQuery, Term, Var};
use std::collections::HashMap;
use std::fmt::Write as _;

/// The cache key of a query shape (a deterministic rendering of the
/// canonical query plus the canonical parameter list).
pub type ShapeKey = String;

/// The canonical form of a request's query: alpha-renamed query, renamed
/// parameters (order preserved), and the cache key.
#[derive(Debug, Clone)]
pub struct CanonicalQuery {
    /// The cache key.
    pub key: ShapeKey,
    /// The alpha-renamed query (name `q`, variables `v0, v1, …`).
    pub query: ConjunctiveQuery,
    /// The renamed parameters, in the request's parameter order.
    pub parameters: Vec<Var>,
}

fn render_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "b:{b}");
        }
        Value::Int(i) => {
            let _ = write!(out, "i:{i}");
        }
        // Debug-quote the resolved text so symbols can never collide with
        // the other tags or with each other.
        Value::Sym(s) => {
            let _ = write!(out, "s:{:?}", s.as_str());
        }
    }
}

/// Canonicalizes `(query, parameters)` into a [`CanonicalQuery`].
///
/// Alpha-equivalent inputs (same atoms/equalities/head/parameter structure,
/// any variable names, any query name) produce byte-identical keys; anything
/// that changes plan choice — constants, atom order, head order, parameter
/// order — changes the key.
pub fn canonicalize(query: &ConjunctiveQuery, parameters: &[Var]) -> CanonicalQuery {
    let mut names: HashMap<String, Var> = HashMap::new();
    let rename = |v: &str, names: &mut HashMap<String, Var>| -> Var {
        if let Some(n) = names.get(v) {
            return n.clone();
        }
        let fresh = format!("v{}", names.len());
        names.insert(v.to_owned(), fresh.clone());
        fresh
    };
    // First-occurrence order: head, then atom terms, then equalities, then
    // parameters (parameters usually occur in the body already).
    let mut head: Vec<Var> = Vec::with_capacity(query.head.len());
    for v in &query.head {
        head.push(rename(v, &mut names));
    }
    let mut atoms = Vec::with_capacity(query.atoms.len());
    for atom in &query.atoms {
        let terms: Vec<Term> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => Term::Var(rename(v, &mut names)),
                Term::Const(c) => Term::Const(*c),
            })
            .collect();
        atoms.push(si_query::Atom {
            relation: atom.relation.clone(),
            terms,
        });
    }
    let equalities: Vec<(Term, Term)> = query
        .equalities
        .iter()
        .map(|(l, r)| {
            let mut m = |t: &Term| match t {
                Term::Var(v) => Term::Var(rename(v, &mut names)),
                Term::Const(c) => Term::Const(*c),
            };
            (m(l), m(r))
        })
        .collect();
    let canonical_parameters: Vec<Var> = parameters.iter().map(|p| rename(p, &mut names)).collect();

    let canonical = ConjunctiveQuery {
        name: "q".to_string(),
        head,
        atoms,
        equalities,
    };

    // Render the key.
    let mut key = String::new();
    key.push_str("h(");
    key.push_str(&canonical.head.join(","));
    key.push(')');
    for atom in &canonical.atoms {
        key.push('|');
        key.push_str(&atom.relation);
        key.push('(');
        for (i, t) in atom.terms.iter().enumerate() {
            if i > 0 {
                key.push(',');
            }
            match t {
                Term::Var(v) => key.push_str(v),
                Term::Const(c) => render_value(&mut key, c),
            }
        }
        key.push(')');
    }
    for (l, r) in &canonical.equalities {
        key.push_str("|eq:");
        for t in [l, r] {
            match t {
                Term::Var(v) => key.push_str(v),
                Term::Const(c) => render_value(&mut key, c),
            }
            key.push('=');
        }
    }
    key.push_str("|params(");
    key.push_str(&canonical_parameters.join(","));
    key.push(')');

    CanonicalQuery {
        key,
        query: canonical,
        parameters: canonical_parameters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_query::parse_cq;

    #[test]
    fn alpha_equivalent_queries_share_a_key() {
        let a = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        let b = parse_cq(r#"Zed(x, y) :- friend(x, z), person(z, y, "NYC")"#).unwrap();
        let ca = canonicalize(&a, &["p".into()]);
        let cb = canonicalize(&b, &["x".into()]);
        assert_eq!(ca.key, cb.key);
        assert_eq!(ca.parameters, cb.parameters);
        assert_eq!(ca.query, cb.query);
    }

    #[test]
    fn constants_and_structure_distinguish_keys() {
        let q = |s: &str| parse_cq(s).unwrap();
        let base = canonicalize(
            &q(r#"Q(p, n) :- friend(p, i), person(i, n, "NYC")"#),
            &["p".into()],
        );
        // Different constant.
        let la = canonicalize(
            &q(r#"Q(p, n) :- friend(p, i), person(i, n, "LA")"#),
            &["p".into()],
        );
        assert_ne!(base.key, la.key);
        // Integer vs string constant of the same rendering.
        let int1 = canonicalize(&q("Q(a) :- friend(a, 1)"), &["a".into()]);
        let str1 = canonicalize(&q(r#"Q(a) :- friend(a, "1")"#), &["a".into()]);
        assert_ne!(int1.key, str1.key);
        // Different parameter choice.
        let other_param = canonicalize(
            &q(r#"Q(p, n) :- friend(p, i), person(i, n, "NYC")"#),
            &["n".into()],
        );
        assert_ne!(base.key, other_param.key);
        // Atom order matters (it is part of the planner's input).
        let swapped = canonicalize(
            &q(r#"Q(p, n) :- person(i, n, "NYC"), friend(p, i)"#),
            &["p".into()],
        );
        assert_ne!(base.key, swapped.key);
    }

    #[test]
    fn equalities_and_boolean_heads_render() {
        let q = parse_cq("Q() :- friend(a, b), a = b").unwrap();
        let c = canonicalize(&q, &["a".into()]);
        assert!(c.key.contains("eq:"));
        assert!(c.key.starts_with("h()"));
        assert_eq!(c.parameters, vec!["v0".to_string()]);
        // The canonical query still validates and means the same thing.
        assert_eq!(c.query.atoms.len(), 1);
        assert_eq!(c.query.equalities.len(), 1);
    }

    #[test]
    fn canonical_query_evaluates_identically() {
        use si_data::schema::social_schema;
        use si_data::{tuple, Database};
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![tuple![1, "ann", "NYC"], tuple![2, "bob", "NYC"]],
        )
        .unwrap();
        db.insert_all("friend", vec![tuple![1, 2]]).unwrap();
        let q = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        let c = canonicalize(&q, &[]);
        let orig = si_query::evaluate_cq(&q, &db, None).unwrap();
        let canon = si_query::evaluate_cq(&c.query, &db, None).unwrap();
        assert_eq!(orig, canon);
    }
}
