//! Flat variable bindings: the query-side half of the copy-cheap data plane.
//!
//! Partial assignments are the structure every join and the Theorem-4.2
//! executor clone at *every extension step*, so they must be flat and
//! allocation-free rather than pointer-chasing tree maps:
//!
//! * [`VarTable`] — variables of a query numbered **once**, at plan/validate
//!   time, mapping names to dense [`VarId`]s;
//! * [`Binding`] — a flat `Vec<Option<Value>>` slab indexed by [`VarId`].
//!   `Value` is `Copy`, so cloning a binding to extend it is a single
//!   `memcpy` with no per-entry allocation, and reads are array indexing
//!   instead of tree walks.
//!
//! All evaluators (`cq_eval`, `fo_eval`, the bounded executor, incremental
//! maintenance and view-based execution) share this representation; names
//! only reappear at the edges, via [`VarTable::name_of`] /
//! [`Binding::to_named`].

use crate::ast::Var;
use si_data::{Tuple, Value};
use std::collections::HashMap;
use std::fmt;

/// Dense index of a variable within a [`VarTable`].
pub type VarId = u32;

/// A query's variables, numbered once in first-occurrence order.
#[derive(Debug, Clone, Default)]
pub struct VarTable {
    names: Vec<Var>,
    ids: HashMap<Var, VarId>,
}

impl VarTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        VarTable::default()
    }

    /// Builds a table from an ordered list of names (duplicates collapse to
    /// their first occurrence).
    pub fn from_names<I: IntoIterator<Item = Var>>(names: I) -> Self {
        let mut table = VarTable::new();
        for name in names {
            table.intern(&name);
        }
        table
    }

    /// Numbers `name`, returning its existing id when already present.
    pub fn intern(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("too many variables");
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// The id of `name`, if it was numbered.
    pub fn id_of(&self, name: &str) -> Option<VarId> {
        self.ids.get(name).copied()
    }

    /// The name carried by `id`.
    pub fn name_of(&self, id: VarId) -> &str {
        &self.names[id as usize]
    }

    /// Ids for a slice of names, failing on the first unknown one.
    pub fn ids_of(&self, names: &[Var]) -> Option<Vec<VarId>> {
        names.iter().map(|n| self.id_of(n)).collect()
    }

    /// Number of variables in the table.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True iff no variable has been numbered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The names in id order.
    pub fn names(&self) -> &[Var] {
        &self.names
    }
}

/// A partial assignment of a query's variables: one slot per [`VarId`].
///
/// Cloning is a flat copy (no allocation per entry), which is what makes
/// "extend by copy" cheap in the join loops.
#[derive(Clone, PartialEq, Eq)]
pub struct Binding {
    slots: Vec<Option<Value>>,
}

impl Binding {
    /// An all-unbound binding with one slot per variable of `table`.
    pub fn for_table(table: &VarTable) -> Self {
        Binding {
            slots: vec![None; table.len()],
        }
    }

    /// An all-unbound binding with `n` slots.
    pub fn with_slots(n: usize) -> Self {
        Binding {
            slots: vec![None; n],
        }
    }

    /// Number of slots (bound or not).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True iff the binding has no slots at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The value bound at `id`, if any.
    #[inline]
    pub fn get(&self, id: VarId) -> Option<Value> {
        self.slots[id as usize]
    }

    /// True iff `id` carries a value.
    #[inline]
    pub fn is_bound(&self, id: VarId) -> bool {
        self.slots[id as usize].is_some()
    }

    /// Binds `id` to `value`; returns `false` when `id` is already bound to a
    /// *different* value (the caller's join/unification failed).
    #[inline]
    pub fn bind(&mut self, id: VarId, value: Value) -> bool {
        match &self.slots[id as usize] {
            Some(existing) => *existing == value,
            None => {
                self.slots[id as usize] = Some(value);
                true
            }
        }
    }

    /// Unconditionally overwrites the slot for `id`.
    #[inline]
    pub fn set(&mut self, id: VarId, value: Value) {
        self.slots[id as usize] = Some(value);
    }

    /// Clears the slot for `id`, returning the previous value.
    #[inline]
    pub fn unset(&mut self, id: VarId) -> Option<Value> {
        self.slots[id as usize].take()
    }

    /// Projects the binding onto `ids`, in order; `None` when any is unbound.
    pub fn project(&self, ids: &[VarId]) -> Option<Tuple> {
        ids.iter().map(|&id| self.get(id)).collect()
    }

    /// Number of bound slots.
    pub fn bound_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Resolves the binding back to `(name, value)` pairs, in id order.
    /// For witnesses, error messages and planner APIs — not for hot loops.
    pub fn to_named(&self, table: &VarTable) -> Vec<(Var, Value)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(id, slot)| slot.map(|v| (table.name_of(id as VarId).to_owned(), v)))
            .collect()
    }
}

impl fmt::Debug for Binding {
    /// Renders bound slots as `#id=value` (names live in the [`VarTable`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Binding{{")?;
        let mut first = true;
        for (id, slot) in self.slots.iter().enumerate() {
            if let Some(v) = slot {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "#{id}={v}")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_table_numbers_in_first_occurrence_order() {
        let mut t = VarTable::new();
        assert_eq!(t.intern("p"), 0);
        assert_eq!(t.intern("id"), 1);
        assert_eq!(t.intern("p"), 0);
        assert_eq!(t.intern("name"), 2);
        assert_eq!(t.len(), 3);
        assert_eq!(t.id_of("id"), Some(1));
        assert_eq!(t.id_of("zzz"), None);
        assert_eq!(t.name_of(2), "name");
        assert_eq!(t.names(), &["p", "id", "name"]);
        assert_eq!(t.ids_of(&["name".into(), "p".into()]), Some(vec![2, 0]));
        assert_eq!(t.ids_of(&["nope".into()]), None);
    }

    #[test]
    fn from_names_collapses_duplicates() {
        let t = VarTable::from_names(["x".to_string(), "y".into(), "x".into()]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert!(VarTable::new().is_empty());
    }

    #[test]
    fn binding_bind_detects_conflicts() {
        let t = VarTable::from_names(["x".to_string(), "y".into()]);
        let mut b = Binding::for_table(&t);
        assert_eq!(b.len(), 2);
        assert!(!b.is_bound(0));
        assert!(b.bind(0, Value::int(1)));
        assert!(b.bind(0, Value::int(1)), "re-binding same value is fine");
        assert!(!b.bind(0, Value::int(2)), "conflicting value must fail");
        assert_eq!(b.get(0), Some(Value::int(1)));
        assert_eq!(b.get(1), None);
        assert_eq!(b.bound_count(), 1);
    }

    #[test]
    fn binding_clone_is_independent() {
        let mut a = Binding::with_slots(3);
        a.set(0, Value::str("NYC"));
        let mut b = a.clone();
        b.set(1, Value::int(7));
        assert_eq!(a.get(1), None);
        assert_eq!(b.get(0), Some(Value::str("NYC")));
        assert_eq!(b.unset(1), Some(Value::int(7)));
        assert_eq!(b.get(1), None);
    }

    #[test]
    fn projection_and_naming() {
        let t = VarTable::from_names(["p".to_string(), "name".into()]);
        let mut b = Binding::for_table(&t);
        b.set(0, Value::int(1));
        assert_eq!(b.project(&[0, 1]), None, "unbound slot aborts projection");
        b.set(1, Value::str("ann"));
        assert_eq!(b.project(&[1, 0]).unwrap(), si_data::tuple!["ann", 1]);
        assert_eq!(
            b.to_named(&t),
            vec![
                ("p".to_string(), Value::int(1)),
                ("name".to_string(), Value::str("ann"))
            ]
        );
        assert!(format!("{b:?}").contains("#0=1"));
    }
}
