//! Evaluation of relational algebra expressions.
//!
//! [`RaEvaluator`] evaluates an [`RaExpr`] against a [`Database`] and,
//! optionally, a [`Delta`] providing the `∆R` / `∇R` relations used by the
//! incremental machinery of Section 5.  The result is a [`NamedRelation`]
//! carrying its attribute names, so that natural joins and set operations can
//! be checked and aligned by name.

use crate::algebra::{Condition, RaExpr};
use crate::error::QueryError;
use si_data::{AccessMeter, Database, Delta, Tuple, TupleSet, Value};
use std::collections::{HashMap, HashSet};

/// An evaluation result: attribute names plus a set of tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedRelation {
    /// Output attribute names, in order.
    pub attributes: Vec<String>,
    /// The tuples, deduplicated, in first-derivation order.
    pub tuples: Vec<Tuple>,
}

impl NamedRelation {
    /// Creates an empty result with the given attributes.
    pub fn empty(attributes: Vec<String>) -> Self {
        NamedRelation {
            attributes,
            tuples: Vec::new(),
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff there are no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Position of an attribute name.
    pub fn position_of(&self, attribute: &str) -> Result<usize, QueryError> {
        self.attributes
            .iter()
            .position(|a| a == attribute)
            .ok_or_else(|| QueryError::UnknownAttribute(attribute.to_owned()))
    }

    /// Reorders the columns to match `target` attribute order.
    pub fn align_to(&self, target: &[String]) -> Result<NamedRelation, QueryError> {
        let positions: Result<Vec<usize>, QueryError> =
            target.iter().map(|a| self.position_of(a)).collect();
        let positions = positions?;
        Ok(NamedRelation {
            attributes: target.to_vec(),
            tuples: self.tuples.iter().map(|t| t.project(&positions)).collect(),
        })
    }

    /// Deduplicates tuples preserving first occurrences.
    ///
    /// Goes through the shared insertion-ordered [`TupleSet`], which hashes
    /// interned values instead of deep-comparing them in a `BTreeSet` and
    /// moves (rather than clones) every tuple.
    fn dedup(self) -> Self {
        let set: TupleSet = self.tuples.into_iter().collect();
        NamedRelation {
            attributes: self.attributes,
            tuples: set.into_vec(),
        }
    }
}

/// Evaluates relational algebra expressions over a database (and optional
/// update) while charging base-data accesses to an optional meter.
pub struct RaEvaluator<'a> {
    db: &'a Database,
    delta: Option<&'a Delta>,
    meter: Option<&'a AccessMeter>,
}

impl<'a> RaEvaluator<'a> {
    /// Creates an evaluator over `db` with no update and no meter.
    pub fn new(db: &'a Database) -> Self {
        RaEvaluator {
            db,
            delta: None,
            meter: None,
        }
    }

    /// Attaches the update providing `∆R` / `∇R`.
    pub fn with_delta(mut self, delta: &'a Delta) -> Self {
        self.delta = Some(delta);
        self
    }

    /// Attaches an access meter.
    pub fn with_meter(mut self, meter: &'a AccessMeter) -> Self {
        self.meter = Some(meter);
        self
    }

    /// Evaluates `expr`, returning a named relation.
    pub fn evaluate(&self, expr: &RaExpr) -> Result<NamedRelation, QueryError> {
        let attributes = expr.attributes(self.db.schema())?;
        let result = match expr {
            RaExpr::Relation(name) => {
                let rel = self.db.relation(name)?;
                if let Some(m) = self.meter {
                    m.add_scan();
                    m.add_tuples(rel.len() as u64);
                }
                NamedRelation {
                    attributes,
                    tuples: rel.iter().cloned().collect(),
                }
            }
            RaExpr::DeltaRelation(name) => {
                self.db.relation(name)?; // validate existence
                let tuples = self
                    .delta
                    .and_then(|d| d.relation_delta(name))
                    .map(|d| d.insertions.clone())
                    .unwrap_or_default();
                NamedRelation { attributes, tuples }
            }
            RaExpr::NablaRelation(name) => {
                self.db.relation(name)?;
                let tuples = self
                    .delta
                    .and_then(|d| d.relation_delta(name))
                    .map(|d| d.deletions.clone())
                    .unwrap_or_default();
                NamedRelation { attributes, tuples }
            }
            RaExpr::Select(input, conditions) => {
                let inner = self.evaluate(input)?;
                let mut out = NamedRelation::empty(inner.attributes.clone());
                for t in &inner.tuples {
                    if conditions
                        .iter()
                        .all(|c| Self::check_condition(c, &inner, t).unwrap_or(false))
                    {
                        out.tuples.push(t.clone());
                    }
                }
                out
            }
            RaExpr::Project(input, attrs) => {
                let inner = self.evaluate(input)?;
                let positions: Result<Vec<usize>, QueryError> =
                    attrs.iter().map(|a| inner.position_of(a)).collect();
                let positions = positions?;
                NamedRelation {
                    attributes: attrs.clone(),
                    tuples: inner.tuples.iter().map(|t| t.project(&positions)).collect(),
                }
            }
            RaExpr::Rename(input, _) => {
                let inner = self.evaluate(input)?;
                NamedRelation {
                    attributes,
                    tuples: inner.tuples,
                }
            }
            RaExpr::Join(left, right) => {
                let l = self.evaluate(left)?;
                let r = self.evaluate(right)?;
                Self::natural_join(&l, &r, &attributes)?
            }
            RaExpr::Union(left, right) => {
                let l = self.evaluate(left)?;
                let r = self.evaluate(right)?.align_to(&l.attributes)?;
                let mut out = l;
                out.tuples.extend(r.tuples);
                out
            }
            RaExpr::Diff(left, right) => {
                let l = self.evaluate(left)?;
                let r = self.evaluate(right)?.align_to(&l.attributes)?;
                let exclude: HashSet<Tuple> = r.tuples.into_iter().collect();
                NamedRelation {
                    attributes: l.attributes,
                    tuples: l
                        .tuples
                        .into_iter()
                        .filter(|t| !exclude.contains(t))
                        .collect(),
                }
            }
            RaExpr::Intersect(left, right) => {
                let l = self.evaluate(left)?;
                let r = self.evaluate(right)?.align_to(&l.attributes)?;
                let keep: HashSet<Tuple> = r.tuples.into_iter().collect();
                NamedRelation {
                    attributes: l.attributes,
                    tuples: l.tuples.into_iter().filter(|t| keep.contains(t)).collect(),
                }
            }
        };
        Ok(result.dedup())
    }

    fn check_condition(
        condition: &Condition,
        rel: &NamedRelation,
        tuple: &Tuple,
    ) -> Result<bool, QueryError> {
        let value_of =
            |attr: &str| -> Result<Value, QueryError> { Ok(tuple[rel.position_of(attr)?]) };
        Ok(match condition {
            Condition::EqConst(a, v) => &value_of(a)? == v,
            Condition::NeqConst(a, v) => &value_of(a)? != v,
            Condition::EqAttr(a, b) => value_of(a)? == value_of(b)?,
            Condition::NeqAttr(a, b) => value_of(a)? != value_of(b)?,
        })
    }

    fn natural_join(
        left: &NamedRelation,
        right: &NamedRelation,
        output_attributes: &[String],
    ) -> Result<NamedRelation, QueryError> {
        // Shared attributes drive the join; right-only attributes are appended.
        let shared: Vec<String> = right
            .attributes
            .iter()
            .filter(|a| left.attributes.contains(a))
            .cloned()
            .collect();
        let shared_left: Vec<usize> = shared
            .iter()
            .map(|a| left.position_of(a))
            .collect::<Result<_, _>>()?;
        let shared_right: Vec<usize> = shared
            .iter()
            .map(|a| right.position_of(a))
            .collect::<Result<_, _>>()?;
        let right_only: Vec<usize> = right
            .attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| !left.attributes.contains(a))
            .map(|(i, _)| i)
            .collect();

        let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
        for t in &right.tuples {
            let key: Vec<Value> = shared_right.iter().map(|&p| t[p]).collect();
            table.entry(key).or_default().push(t);
        }

        let mut out = NamedRelation::empty(output_attributes.to_vec());
        for lt in &left.tuples {
            let key: Vec<Value> = shared_left.iter().map(|&p| lt[p]).collect();
            if let Some(matches) = table.get(&key) {
                for rt in matches {
                    let extra: Tuple = right_only.iter().map(|&p| rt[p]).collect();
                    out.tuples.push(lt.concat(&extra));
                }
            }
        }
        Ok(out)
    }
}

/// Convenience wrapper evaluating `expr` over `db` without delta or meter.
pub fn evaluate_ra(expr: &RaExpr, db: &Database) -> Result<NamedRelation, QueryError> {
    RaEvaluator::new(db).evaluate(expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_data::schema::social_schema;
    use si_data::tuple;

    fn db() -> Database {
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "NYC"],
                tuple![3, "cat", "LA"],
            ],
        )
        .unwrap();
        db.insert_all("friend", vec![tuple![1, 2], tuple![1, 3], tuple![2, 3]])
            .unwrap();
        db.insert_all(
            "restr",
            vec![
                tuple![10, "sushi", "NYC", "A"],
                tuple![11, "taco", "LA", "B"],
            ],
        )
        .unwrap();
        db.insert_all("visit", vec![tuple![2, 10], tuple![3, 11]])
            .unwrap();
        db
    }

    #[test]
    fn base_relation_scan_is_metered() {
        let db = db();
        let meter = AccessMeter::new();
        let ev = RaEvaluator::new(&db).with_meter(&meter);
        let out = ev.evaluate(&RaExpr::relation("person")).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.attributes, vec!["id", "name", "city"]);
        assert_eq!(meter.full_scans(), 1);
        assert_eq!(meter.tuples_fetched(), 3);
    }

    #[test]
    fn selection_filters_by_constant_and_attribute() {
        let db = db();
        let nyc = evaluate_ra(&RaExpr::relation("person").select_eq("city", "NYC"), &db).unwrap();
        assert_eq!(nyc.len(), 2);
        let self_friend = evaluate_ra(
            &RaExpr::relation("friend").select(vec![Condition::EqAttr("id1".into(), "id2".into())]),
            &db,
        )
        .unwrap();
        assert!(self_friend.is_empty());
        let neq = evaluate_ra(
            &RaExpr::relation("person")
                .select(vec![Condition::NeqConst("city".into(), Value::str("NYC"))]),
            &db,
        )
        .unwrap();
        assert_eq!(neq.len(), 1);
        let neq_attr = evaluate_ra(
            &RaExpr::relation("friend")
                .select(vec![Condition::NeqAttr("id1".into(), "id2".into())]),
            &db,
        )
        .unwrap();
        assert_eq!(neq_attr.len(), 3);
    }

    #[test]
    fn projection_deduplicates() {
        let db = db();
        let cities = evaluate_ra(&RaExpr::relation("person").project(&["city"]), &db).unwrap();
        assert_eq!(cities.len(), 2);
        assert_eq!(cities.attributes, vec!["city"]);
    }

    #[test]
    fn rename_then_join_implements_q1() {
        let db = db();
        // Q1 for p = 1: π[name](σ[id1=1](friend) ⋈ ρ[id→id2, …](σ[city=NYC](person)))
        let expr = RaExpr::relation("friend")
            .select_eq("id1", 1)
            .join(
                RaExpr::relation("person")
                    .select_eq("city", "NYC")
                    .rename(&[("id", "id2")]),
            )
            .project(&["name"]);
        let out = evaluate_ra(&expr, &db).unwrap();
        assert_eq!(out.tuples, vec![tuple!["bob"]]);
    }

    #[test]
    fn join_with_no_shared_attributes_is_cartesian_product() {
        let db = db();
        let expr = RaExpr::relation("friend").join(RaExpr::relation("visit"));
        let out = evaluate_ra(&expr, &db).unwrap();
        assert_eq!(out.len(), 3 * 2);
        assert_eq!(out.attributes, vec!["id1", "id2", "id", "rid"]);
    }

    #[test]
    fn union_diff_intersect_respect_set_semantics() {
        let db = db();
        let visits = RaExpr::relation("visit");
        let union = evaluate_ra(&visits.clone().union(visits.clone()), &db).unwrap();
        assert_eq!(union.len(), 2);
        let diff = evaluate_ra(&visits.clone().diff(visits.clone()), &db).unwrap();
        assert!(diff.is_empty());
        let inter = evaluate_ra(&visits.clone().intersect(visits.clone()), &db).unwrap();
        assert_eq!(inter.len(), 2);
    }

    #[test]
    fn union_aligns_attribute_orders() {
        let db = db();
        // friend(id1,id2) ∪ ρ[id1↔id2](friend) — reversed edges.
        let reversed = RaExpr::relation("friend")
            .rename(&[("id1", "tmp"), ("id2", "id1")])
            .rename(&[("tmp", "id2")]);
        let expr = RaExpr::relation("friend").union(reversed);
        let out = evaluate_ra(&expr, &db).unwrap();
        assert_eq!(out.len(), 6);
        assert!(out.tuples.contains(&tuple![2, 1]));
    }

    #[test]
    fn delta_and_nabla_relations_read_from_update() {
        let db = db();
        let mut delta = Delta::new();
        delta.insert("visit", tuple![1, 10]);
        delta.delete("visit", tuple![3, 11]);
        let ev = RaEvaluator::new(&db).with_delta(&delta);
        let ins = ev.evaluate(&RaExpr::delta("visit")).unwrap();
        assert_eq!(ins.tuples, vec![tuple![1, 10]]);
        let del = ev.evaluate(&RaExpr::nabla("visit")).unwrap();
        assert_eq!(del.tuples, vec![tuple![3, 11]]);
        // Without an update attached both are empty.
        let ev = RaEvaluator::new(&db);
        assert!(ev.evaluate(&RaExpr::delta("visit")).unwrap().is_empty());
        assert!(ev.evaluate(&RaExpr::nabla("visit")).unwrap().is_empty());
        // Unknown relations still error.
        assert!(ev.evaluate(&RaExpr::delta("enemy")).is_err());
    }

    #[test]
    fn incremental_identity_holds_for_simple_join() {
        // (E over D ⊕ ∆D) = (E over D) ∪ (∆-part), for E = friend ⋈ visit
        // restricted to insertions into visit only.
        let db = db();
        let mut delta = Delta::new();
        delta.insert("visit", tuple![3, 10]);
        let updated = delta.apply(&db).unwrap();

        let e = RaExpr::relation("friend")
            .rename(&[("id2", "id")])
            .join(RaExpr::relation("visit"));
        let full = evaluate_ra(&e, &updated).unwrap();

        let e_delta = RaExpr::relation("friend")
            .rename(&[("id2", "id")])
            .join(RaExpr::delta("visit"));
        let old = evaluate_ra(&e, &db).unwrap();
        let inc = RaEvaluator::new(&db)
            .with_delta(&delta)
            .evaluate(&e_delta)
            .unwrap();

        let mut combined: Vec<Tuple> = old.tuples;
        combined.extend(inc.tuples);
        combined.sort();
        combined.dedup();
        let mut expected = full.tuples.clone();
        expected.sort();
        assert_eq!(combined, expected);
    }

    #[test]
    fn named_relation_align_and_position_errors() {
        let db = db();
        let out = evaluate_ra(&RaExpr::relation("friend"), &db).unwrap();
        assert!(out.position_of("nope").is_err());
        assert!(out.align_to(&["id2".into(), "id1".into()]).is_ok());
        assert!(out.align_to(&["id1".into(), "nope".into()]).is_err());
    }
}
