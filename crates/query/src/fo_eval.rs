//! Active-domain evaluation of first-order queries.
//!
//! The paper defines `Q(D)` as the set of tuples over `adom(D)` satisfying
//! `Q` (Section 2).  [`FoEvaluator`] implements exactly that semantics by
//! recursive evaluation with quantifiers ranging over the active domain.
//!
//! This evaluator is exponential in the number of quantified variables and is
//! intended for the *decision procedures* of Section 3 (which operate on
//! small instances) and for cross-checking the optimised evaluators on small
//! inputs — not for the large-scale experiments, which use CQ/RA evaluation.
//!
//! Environments are flat [`Binding`]s over a per-formula [`VarTable`]
//! (quantifier shadowing is save/restore on a slot), so the quantifier loops
//! never allocate or clone a tree — the same copy-cheap data plane as the
//! hash-join evaluator.

use crate::ast::{Atom, FoQuery, Formula, Term, Var};
use crate::binding::{Binding, VarId, VarTable};
use crate::error::QueryError;
use si_data::{AccessMeter, Database, Tuple, Value};
use std::collections::BTreeSet;

/// Evaluates FO formulas and queries over a fixed database.
pub struct FoEvaluator<'a> {
    db: &'a Database,
    adom: Vec<Value>,
    meter: Option<&'a AccessMeter>,
}

/// Collects every variable name occurring in `formula` (free or bound) into
/// `vars`, so one table covers every slot the evaluation can touch.
fn collect_all_vars(formula: &Formula, vars: &mut VarTable) {
    match formula {
        Formula::True | Formula::False => {}
        Formula::Atom(a) => {
            for t in &a.terms {
                if let Term::Var(v) = t {
                    vars.intern(v);
                }
            }
        }
        Formula::Eq(l, r) => {
            for t in [l, r] {
                if let Term::Var(v) = t {
                    vars.intern(v);
                }
            }
        }
        Formula::Not(f) => collect_all_vars(f, vars),
        Formula::And(f, g) | Formula::Or(f, g) | Formula::Implies(f, g) => {
            collect_all_vars(f, vars);
            collect_all_vars(g, vars);
        }
        Formula::Exists(qs, f) | Formula::Forall(qs, f) => {
            for v in qs {
                vars.intern(v);
            }
            collect_all_vars(f, vars);
        }
    }
}

impl<'a> FoEvaluator<'a> {
    /// Creates an evaluator for `db`.
    pub fn new(db: &'a Database) -> Self {
        let mut adom: Vec<Value> = db.active_domain().into_iter().collect();
        adom.sort();
        FoEvaluator {
            db,
            adom,
            meter: None,
        }
    }

    /// Attaches an access meter; every atom check charges one tuple fetch.
    pub fn with_meter(mut self, meter: &'a AccessMeter) -> Self {
        self.meter = Some(meter);
        self
    }

    /// The active domain used for quantification, in sorted order.
    pub fn active_domain(&self) -> &[Value] {
        &self.adom
    }

    /// Evaluates a sentence (closed formula).  Free variables are treated as
    /// an error to avoid silently returning wrong answers.
    pub fn holds(&self, formula: &Formula) -> Result<bool, QueryError> {
        let free = formula.free_variables();
        if !free.is_empty() {
            return Err(QueryError::UnboundVariable(
                free.into_iter().collect::<Vec<_>>().join(", "),
            ));
        }
        let mut vars = VarTable::new();
        collect_all_vars(formula, &mut vars);
        let mut env = Binding::for_table(&vars);
        self.eval(formula, &mut env, &vars)
    }

    /// Evaluates a formula under a (total-enough) assignment of its free
    /// variables, given as `(name, value)` pairs.
    pub fn holds_under(
        &self,
        formula: &Formula,
        assignment: &[(Var, Value)],
    ) -> Result<bool, QueryError> {
        let mut vars = VarTable::new();
        collect_all_vars(formula, &mut vars);
        for (name, _) in assignment {
            vars.intern(name);
        }
        let mut env = Binding::for_table(&vars);
        for (name, value) in assignment {
            let id = vars.id_of(name).expect("just interned");
            env.set(id, *value);
        }
        self.eval(formula, &mut env, &vars)
    }

    /// Computes the answer `Q(D)` of a data-selecting query: all tuples
    /// `a̅ ∈ adom(D)^m` with `D ⊨ Q(a̅)`.
    ///
    /// Boolean queries return the empty tuple when true and nothing when
    /// false, so that `answers(Q).is_empty()` coincides with falsity.
    pub fn answers(&self, query: &FoQuery) -> Result<Vec<Tuple>, QueryError> {
        query.validate()?;
        if query.is_boolean() {
            return Ok(if self.holds(&query.body)? {
                vec![Tuple::empty()]
            } else {
                vec![]
            });
        }
        let mut vars = VarTable::new();
        for v in &query.head {
            vars.intern(v);
        }
        collect_all_vars(&query.body, &mut vars);
        let head_ids: Vec<VarId> = query
            .head
            .iter()
            .map(|v| vars.id_of(v).expect("head interned above"))
            .collect();
        let mut env = Binding::for_table(&vars);
        let mut out = Vec::new();
        self.enumerate(query, &head_ids, 0, &mut env, &vars, &mut out)?;
        Ok(out)
    }

    /// True iff the sentence obtained by fully binding `query`'s head with
    /// `values` holds.
    pub fn satisfies(&self, query: &FoQuery, values: &Tuple) -> Result<bool, QueryError> {
        if values.arity() != query.arity() {
            return Err(QueryError::SchemaMismatch(format!(
                "query `{}` has arity {} but was probed with a tuple of arity {}",
                query.name,
                query.arity(),
                values.arity()
            )));
        }
        let mut vars = VarTable::new();
        for v in &query.head {
            vars.intern(v);
        }
        collect_all_vars(&query.body, &mut vars);
        let mut env = Binding::for_table(&vars);
        for (v, value) in query.head.iter().zip(values.iter()) {
            env.set(vars.id_of(v).expect("head interned above"), *value);
        }
        self.eval(&query.body, &mut env, &vars)
    }

    fn enumerate(
        &self,
        query: &FoQuery,
        head_ids: &[VarId],
        depth: usize,
        env: &mut Binding,
        vars: &VarTable,
        out: &mut Vec<Tuple>,
    ) -> Result<(), QueryError> {
        if depth == head_ids.len() {
            if self.eval(&query.body, env, vars)? {
                let tuple = env
                    .project(head_ids)
                    .expect("all head slots bound during enumeration");
                out.push(tuple);
            }
            return Ok(());
        }
        let id = head_ids[depth];
        for value in &self.adom {
            env.set(id, *value);
            self.enumerate(query, head_ids, depth + 1, env, vars, out)?;
        }
        env.unset(id);
        Ok(())
    }

    fn eval(
        &self,
        formula: &Formula,
        env: &mut Binding,
        vars: &VarTable,
    ) -> Result<bool, QueryError> {
        match formula {
            Formula::True => Ok(true),
            Formula::False => Ok(false),
            Formula::Atom(atom) => self.eval_atom(atom, env, vars),
            Formula::Eq(l, r) => {
                let lv = self.term_value(l, env, vars)?;
                let rv = self.term_value(r, env, vars)?;
                Ok(lv == rv)
            }
            Formula::Not(f) => Ok(!self.eval(f, env, vars)?),
            Formula::And(f, g) => Ok(self.eval(f, env, vars)? && self.eval(g, env, vars)?),
            Formula::Or(f, g) => Ok(self.eval(f, env, vars)? || self.eval(g, env, vars)?),
            Formula::Implies(f, g) => Ok(!self.eval(f, env, vars)? || self.eval(g, env, vars)?),
            Formula::Exists(qs, f) => self.eval_quantifier(qs, f, env, vars, true),
            Formula::Forall(qs, f) => self.eval_quantifier(qs, f, env, vars, false),
        }
    }

    fn eval_quantifier(
        &self,
        quantified: &[Var],
        body: &Formula,
        env: &mut Binding,
        vars: &VarTable,
        existential: bool,
    ) -> Result<bool, QueryError> {
        // Recursive enumeration over adom^|quantified|, shadowing each slot by
        // save/restore — no environment cloning.
        fn go(
            ev: &FoEvaluator<'_>,
            ids: &[VarId],
            body: &Formula,
            env: &mut Binding,
            vars: &VarTable,
            existential: bool,
        ) -> Result<bool, QueryError> {
            match ids.split_first() {
                None => ev.eval(body, env, vars),
                Some((&first, rest)) => {
                    let shadowed = env.get(first);
                    for value in &ev.adom {
                        env.set(first, *value);
                        let holds = go(ev, rest, body, env, vars, existential)?;
                        if existential == holds {
                            restore(env, first, shadowed);
                            return Ok(holds);
                        }
                    }
                    restore(env, first, shadowed);
                    // Exhausted the domain without an early exit: ∃ is false,
                    // ∀ is true (this also covers the empty active domain).
                    Ok(!existential)
                }
            }
        }
        fn restore(env: &mut Binding, id: VarId, shadowed: Option<Value>) {
            match shadowed {
                Some(v) => env.set(id, v),
                None => {
                    env.unset(id);
                }
            }
        }
        let ids: Vec<VarId> = quantified
            .iter()
            .map(|v| vars.id_of(v).expect("quantified variable in table"))
            .collect();
        go(self, &ids, body, env, vars, existential)
    }

    fn eval_atom(
        &self,
        atom: &Atom,
        env: &mut Binding,
        vars: &VarTable,
    ) -> Result<bool, QueryError> {
        let relation = self.db.relation(&atom.relation)?;
        if relation.schema().arity() != atom.terms.len() {
            return Err(QueryError::AtomArity {
                relation: atom.relation.clone(),
                expected: relation.schema().arity(),
                actual: atom.terms.len(),
            });
        }
        let tuple: Result<Tuple, QueryError> = atom
            .terms
            .iter()
            .map(|t| self.term_value(t, env, vars))
            .collect();
        let tuple = tuple?;
        if let Some(m) = self.meter {
            m.add_tuples(1);
        }
        Ok(relation.contains(&tuple))
    }

    fn term_value(&self, term: &Term, env: &Binding, vars: &VarTable) -> Result<Value, QueryError> {
        match term {
            Term::Const(c) => Ok(*c),
            Term::Var(v) => vars
                .id_of(v)
                .and_then(|id| env.get(id))
                .ok_or_else(|| QueryError::UnboundVariable(v.clone())),
        }
    }
}

/// Convenience wrapper: evaluates a data-selecting FO query and returns the
/// answer set.
pub fn evaluate_fo(query: &FoQuery, db: &Database) -> Result<Vec<Tuple>, QueryError> {
    FoEvaluator::new(db).answers(query)
}

/// Convenience wrapper: evaluates a Boolean FO formula.
pub fn holds(formula: &Formula, db: &Database) -> Result<bool, QueryError> {
    FoEvaluator::new(db).holds(formula)
}

/// Checks whether two FO queries agree on a given database, i.e.
/// `Q1(D) = Q2(D)` as sets.  Used by the witness problem of Section 3.
pub fn agree_on(q1: &FoQuery, q2: &FoQuery, db: &Database) -> Result<bool, QueryError> {
    let a1: BTreeSet<Tuple> = evaluate_fo(q1, db)?.into_iter().collect();
    let a2: BTreeSet<Tuple> = evaluate_fo(q2, db)?.into_iter().collect();
    Ok(a1 == a2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{c, v};
    use si_data::schema::social_schema;
    use si_data::tuple;

    fn db() -> Database {
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "NYC"],
                tuple![3, "cat", "LA"],
            ],
        )
        .unwrap();
        db.insert_all("friend", vec![tuple![1, 2], tuple![1, 3], tuple![2, 1]])
            .unwrap();
        db
    }

    fn q1() -> FoQuery {
        FoQuery::new(
            "Q1",
            vec!["p".into(), "name".into()],
            Formula::exists(
                vec!["id".into()],
                Formula::Atom(Atom::new("friend", vec![v("p"), v("id")])).and(Formula::Atom(
                    Atom::new("person", vec![v("id"), v("name"), c("NYC")]),
                )),
            ),
        )
    }

    #[test]
    fn data_selecting_answers_match_expected() {
        let db = db();
        let mut answers = evaluate_fo(&q1(), &db).unwrap();
        answers.sort();
        assert_eq!(answers, vec![tuple![1, "bob"], tuple![2, "ann"]]);
    }

    #[test]
    fn satisfies_probes_single_tuples() {
        let db = db();
        let ev = FoEvaluator::new(&db);
        assert!(ev.satisfies(&q1(), &tuple![1, "bob"]).unwrap());
        assert!(!ev.satisfies(&q1(), &tuple![1, "cat"]).unwrap());
        assert!(ev.satisfies(&q1(), &tuple![1]).is_err());
    }

    #[test]
    fn boolean_queries_report_truth() {
        let db = db();
        // ∃x,y friend(x,y)
        let some_friend = FoQuery::boolean(
            "B",
            Formula::exists(
                vec!["x".into(), "y".into()],
                Formula::Atom(Atom::new("friend", vec![v("x"), v("y")])),
            ),
        );
        assert_eq!(
            evaluate_fo(&some_friend, &db).unwrap(),
            vec![Tuple::empty()]
        );
        // ∀x,y friend(x,y) — false.
        let all_friends = FoQuery::boolean(
            "B",
            Formula::forall(
                vec!["x".into(), "y".into()],
                Formula::Atom(Atom::new("friend", vec![v("x"), v("y")])),
            ),
        );
        assert!(evaluate_fo(&all_friends, &db).unwrap().is_empty());
    }

    #[test]
    fn universal_quantifier_and_implication() {
        let db = db();
        // Every friend edge starts at a person living somewhere:
        // ∀x,y (friend(x,y) → ∃n,c person(x,n,c))
        let f = Formula::forall(
            vec!["x".into(), "y".into()],
            Formula::Implies(
                Box::new(Formula::Atom(Atom::new("friend", vec![v("x"), v("y")]))),
                Box::new(Formula::exists(
                    vec!["n".into(), "c".into()],
                    Formula::Atom(Atom::new("person", vec![v("x"), v("n"), v("c")])),
                )),
            ),
        );
        assert!(holds(&f, &db).unwrap());

        // Every person lives in NYC — false because of cat/LA.
        let f = Formula::forall(
            vec!["x".into(), "n".into(), "ci".into()],
            Formula::Implies(
                Box::new(Formula::Atom(Atom::new(
                    "person",
                    vec![v("x"), v("n"), v("ci")],
                ))),
                Box::new(Formula::Eq(v("ci"), c("NYC"))),
            ),
        );
        assert!(!holds(&f, &db).unwrap());
    }

    #[test]
    fn negation_and_equality() {
        let db = db();
        // ∃x,n,ci (person(x,n,ci) ∧ ¬(ci = "NYC"))
        let f = Formula::exists(
            vec!["x".into(), "n".into(), "ci".into()],
            Formula::Atom(Atom::new("person", vec![v("x"), v("n"), v("ci")]))
                .and(Formula::Eq(v("ci"), c("NYC")).negate()),
        );
        assert!(holds(&f, &db).unwrap());
    }

    #[test]
    fn quantifier_shadowing_uses_inner_binding() {
        let db = db();
        // ∃x (person(x, "ann", "NYC") ∧ ∃x person(x, "cat", "LA")) — the
        // inner x shadows the outer one; both witnesses exist.
        let f = Formula::exists(
            vec!["x".into()],
            Formula::Atom(Atom::new("person", vec![v("x"), c("ann"), c("NYC")])).and(
                Formula::exists(
                    vec!["x".into()],
                    Formula::Atom(Atom::new("person", vec![v("x"), c("cat"), c("LA")])),
                ),
            ),
        );
        assert!(holds(&f, &db).unwrap());
    }

    #[test]
    fn free_variables_in_sentences_are_rejected() {
        let db = db();
        let f = Formula::Atom(Atom::new("friend", vec![v("x"), c(1)]));
        assert!(matches!(
            holds(&f, &db),
            Err(QueryError::UnboundVariable(_))
        ));
        let ev = FoEvaluator::new(&db);
        assert!(ev
            .holds_under(&f, &[("x".to_string(), Value::int(2))])
            .unwrap());
    }

    #[test]
    fn atom_arity_mismatch_is_reported() {
        let db = db();
        let f = Formula::exists(
            vec!["x".into()],
            Formula::Atom(Atom::new("friend", vec![v("x")])),
        );
        assert!(matches!(holds(&f, &db), Err(QueryError::AtomArity { .. })));
    }

    #[test]
    fn agree_on_compares_answer_sets() {
        let db = db();
        // Q1 asked with head (p,name) versus the same with a redundant
        // conjunct: both produce the same answers.
        let q1_redundant = FoQuery::new(
            "Q1b",
            vec!["p".into(), "name".into()],
            q1().body.clone().and(Formula::True),
        );
        assert!(agree_on(&q1(), &q1_redundant, &db).unwrap());
        // A restricted version differs.
        let restricted = q1().bind(&[("p".into(), Value::int(1))]);
        let restricted_full = FoQuery::new(
            "Q1c",
            vec!["p".into(), "name".into()],
            q1().body.substitute("p", &Value::int(1)),
        );
        // Different head arity → different answer sets.
        assert!(!agree_on(&q1(), &restricted, &db).unwrap_or(false) || restricted.arity() == 1);
        let _ = restricted_full;
    }

    #[test]
    fn meter_counts_atom_probes() {
        let db = db();
        let meter = AccessMeter::new();
        let ev = FoEvaluator::new(&db).with_meter(&meter);
        let f = Formula::exists(
            vec!["x".into(), "y".into()],
            Formula::Atom(Atom::new("friend", vec![v("x"), v("y")])),
        );
        assert!(ev.holds(&f).unwrap());
        assert!(meter.tuples_fetched() > 0);
    }

    #[test]
    fn empty_database_quantifier_semantics() {
        let db = Database::empty(social_schema());
        let exists = Formula::exists(
            vec!["x".into()],
            Formula::Atom(Atom::new("friend", vec![v("x"), v("x")])),
        );
        let forall = Formula::forall(
            vec!["x".into()],
            Formula::Atom(Atom::new("friend", vec![v("x"), v("x")])),
        );
        assert!(!holds(&exists, &db).unwrap());
        assert!(holds(&forall, &db).unwrap());
    }

    #[test]
    fn active_domain_is_sorted_and_complete() {
        let db = db();
        let ev = FoEvaluator::new(&db);
        let adom = ev.active_domain();
        assert!(adom.windows(2).all(|w| w[0] <= w[1]));
        assert!(adom.contains(&Value::str("LA")));
        assert_eq!(adom.len(), db.active_domain().len());
    }
}
