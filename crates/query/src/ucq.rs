//! Unions of conjunctive queries (the SPJU fragment).

use crate::ast::FoQuery;
use crate::cq::ConjunctiveQuery;
use crate::error::QueryError;
use si_data::{DatabaseSchema, Value};
use std::fmt;

/// A union of conjunctive queries `Q = Q1 ∪ … ∪ Qk`.
///
/// All disjuncts must share the same head arity.  The paper defines
/// `‖Q‖ = max_i ‖Qi‖` ([`UnionQuery::tableau_size`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnionQuery {
    /// Query name, for display.
    pub name: String,
    /// The disjuncts.
    pub disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionQuery {
    /// Creates a UCQ from its disjuncts.
    ///
    /// Returns an error when the disjunct list is empty or the disjuncts
    /// disagree on arity.
    pub fn new(
        name: impl Into<String>,
        disjuncts: Vec<ConjunctiveQuery>,
    ) -> Result<Self, QueryError> {
        if disjuncts.is_empty() {
            return Err(QueryError::UnsupportedFragment(
                "a union of conjunctive queries needs at least one disjunct".into(),
            ));
        }
        let arity = disjuncts[0].arity();
        if disjuncts.iter().any(|d| d.arity() != arity) {
            return Err(QueryError::SchemaMismatch(
                "all disjuncts of a UCQ must have the same arity".into(),
            ));
        }
        Ok(UnionQuery {
            name: name.into(),
            disjuncts,
        })
    }

    /// The arity of the answers.
    pub fn arity(&self) -> usize {
        self.disjuncts[0].arity()
    }

    /// True iff the query is Boolean.
    pub fn is_boolean(&self) -> bool {
        self.arity() == 0
    }

    /// `‖Q‖ = max_i ‖Qi‖` following the paper's definition for UCQ.
    pub fn tableau_size(&self) -> usize {
        self.disjuncts
            .iter()
            .map(ConjunctiveQuery::tableau_size)
            .max()
            .unwrap_or(0)
    }

    /// Validates every disjunct against `schema`.
    pub fn validate(&self, schema: &DatabaseSchema) -> Result<(), QueryError> {
        for d in &self.disjuncts {
            d.validate(schema)?;
        }
        Ok(())
    }

    /// Converts to an FO query `Q1 ∨ … ∨ Qk`.
    ///
    /// The head of the first disjunct is used as the output variable order;
    /// disjuncts are renamed implicitly by position, so callers should use
    /// the same head variable names across disjuncts (as the paper does).
    pub fn to_fo(&self) -> FoQuery {
        let head = self.disjuncts[0].head.clone();
        let mut body = self.disjuncts[0].to_fo().body;
        for d in &self.disjuncts[1..] {
            body = body.or(d.to_fo().body);
        }
        FoQuery::new(self.name.clone(), head, body)
    }

    /// Fixes some head variables to constants in every disjunct.
    pub fn bind(&self, bindings: &[(String, Value)]) -> UnionQuery {
        UnionQuery {
            name: format!("{}#bound", self.name),
            disjuncts: self.disjuncts.iter().map(|d| d.bind(bindings)).collect(),
        }
    }
}

impl fmt::Display for UnionQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{c, v, Atom};
    use si_data::schema::social_schema;

    fn nyc_or_la() -> UnionQuery {
        let d1 = ConjunctiveQuery::new(
            "Qnyc",
            vec!["id".into(), "name".into()],
            vec![Atom::new("person", vec![v("id"), v("name"), c("NYC")])],
        );
        let d2 = ConjunctiveQuery::new(
            "Qla",
            vec!["id".into(), "name".into()],
            vec![Atom::new("person", vec![v("id"), v("name"), c("LA")])],
        );
        UnionQuery::new("Q", vec![d1, d2]).unwrap()
    }

    #[test]
    fn construction_checks_arity_agreement() {
        let q = nyc_or_la();
        assert_eq!(q.arity(), 2);
        assert!(!q.is_boolean());
        assert_eq!(q.disjuncts.len(), 2);

        let mismatched = UnionQuery::new(
            "bad",
            vec![
                ConjunctiveQuery::new(
                    "a",
                    vec!["x".into()],
                    vec![Atom::new("friend", vec![v("x"), v("y")])],
                ),
                ConjunctiveQuery::new("b", vec![], vec![Atom::new("friend", vec![v("x"), v("y")])]),
            ],
        );
        assert!(matches!(mismatched, Err(QueryError::SchemaMismatch(_))));
        assert!(matches!(
            UnionQuery::new("empty", vec![]),
            Err(QueryError::UnsupportedFragment(_))
        ));
    }

    #[test]
    fn tableau_size_is_max_over_disjuncts() {
        let mut q = nyc_or_la();
        assert_eq!(q.tableau_size(), 1);
        q.disjuncts[1]
            .atoms
            .push(Atom::new("friend", vec![v("id"), v("id2")]));
        q.disjuncts[1].head = vec!["id".into(), "name".into()];
        assert_eq!(q.tableau_size(), 2);
    }

    #[test]
    fn validate_delegates_to_disjuncts() {
        let schema = social_schema();
        nyc_or_la().validate(&schema).unwrap();
        let mut q = nyc_or_la();
        q.disjuncts[0].atoms[0] = Atom::new("person", vec![v("id")]);
        assert!(q.validate(&schema).is_err());
    }

    #[test]
    fn to_fo_is_a_disjunction() {
        let fo = nyc_or_la().to_fo();
        assert_eq!(fo.head, vec!["id".to_string(), "name".to_string()]);
        assert!(fo.body.to_string().contains('∨'));
    }

    #[test]
    fn bind_propagates_to_every_disjunct() {
        let q = nyc_or_la().bind(&[("id".into(), Value::int(3))]);
        for d in &q.disjuncts {
            assert_eq!(d.head, vec!["name".to_string()]);
            assert_eq!(d.atoms[0].terms[0], c(3));
        }
    }

    #[test]
    fn display_lists_disjuncts_line_by_line() {
        let s = nyc_or_la().to_string();
        assert!(s.contains("Qnyc"));
        assert!(s.contains("Qla"));
        assert!(s.contains('\n'));
    }
}
