//! Translation of conjunctive queries into relational algebra.
//!
//! Section 5 of the paper states its incremental results for relational
//! algebra expressions.  [`cq_to_ra`] provides the standard SPJ translation
//! used to move the paper's example queries (which are given as CQ) into the
//! algebra so that the `RA_A` rules and the change-propagation machinery can
//! be applied to them.  Output attributes are named after the query's
//! variables, so natural joins realise exactly the variable co-occurrence
//! joins of the CQ.

use crate::algebra::{Condition, RaExpr};
use crate::ast::{Atom, Term};
use crate::cq::ConjunctiveQuery;
use crate::error::QueryError;
use si_data::DatabaseSchema;
use std::collections::BTreeSet;

/// Translates a single atom into an algebra expression whose attributes are
/// the atom's distinct variable names.
pub fn atom_to_ra(atom: &Atom, schema: &DatabaseSchema) -> Result<RaExpr, QueryError> {
    let rel_schema = schema.relation(&atom.relation)?;
    if rel_schema.arity() != atom.terms.len() {
        return Err(QueryError::AtomArity {
            relation: atom.relation.clone(),
            expected: rel_schema.arity(),
            actual: atom.terms.len(),
        });
    }
    let attrs = rel_schema.attributes();

    // Selection conditions induced by constants and repeated variables.
    let mut conditions: Vec<Condition> = Vec::new();
    for (i, term) in atom.terms.iter().enumerate() {
        match term {
            Term::Const(c) => conditions.push(Condition::EqConst(attrs[i].clone(), *c)),
            Term::Var(v) => {
                // A repeated variable forces equality with its first occurrence.
                if let Some(first) = atom.terms[..i]
                    .iter()
                    .position(|t| t.as_var() == Some(v.as_str()))
                {
                    conditions.push(Condition::EqAttr(attrs[first].clone(), attrs[i].clone()));
                }
            }
        }
    }

    let mut expr = RaExpr::relation(&atom.relation);
    if !conditions.is_empty() {
        expr = expr.select(conditions);
    }

    // Project onto the first occurrence of each variable and rename the
    // surviving attributes to the variable names.
    let mut keep_attrs: Vec<String> = Vec::new();
    let mut renames: Vec<(String, String)> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for (i, term) in atom.terms.iter().enumerate() {
        if let Term::Var(v) = term {
            if seen.insert(v.clone()) {
                keep_attrs.push(attrs[i].clone());
                if &attrs[i] != v {
                    renames.push((attrs[i].clone(), v.clone()));
                }
            }
        }
    }
    let keep_refs: Vec<&str> = keep_attrs.iter().map(String::as_str).collect();
    expr = expr.project(&keep_refs);
    if !renames.is_empty() {
        let rename_refs: Vec<(&str, &str)> = renames
            .iter()
            .map(|(o, n)| (o.as_str(), n.as_str()))
            .collect();
        expr = expr.rename(&rename_refs);
    }
    Ok(expr)
}

/// Translates a conjunctive query into a relational algebra expression whose
/// output attributes are the query's head variables, in head order.
pub fn cq_to_ra(query: &ConjunctiveQuery, schema: &DatabaseSchema) -> Result<RaExpr, QueryError> {
    query.validate(schema)?;
    if query.atoms.is_empty() {
        return Err(QueryError::UnsupportedFragment(
            "cannot translate a conjunctive query without relation atoms".into(),
        ));
    }

    let mut expr: Option<RaExpr> = None;
    for atom in &query.atoms {
        let piece = atom_to_ra(atom, schema)?;
        expr = Some(match expr {
            None => piece,
            Some(acc) => acc.join(piece),
        });
    }
    let mut expr = expr.expect("at least one atom");

    // Equality atoms become selections over the variable-named attributes.
    let mut conditions: Vec<Condition> = Vec::new();
    let mut contradiction = false;
    for (l, r) in &query.equalities {
        match (l, r) {
            (Term::Var(a), Term::Var(b)) => {
                conditions.push(Condition::EqAttr(a.clone(), b.clone()))
            }
            (Term::Var(a), Term::Const(c)) | (Term::Const(c), Term::Var(a)) => {
                conditions.push(Condition::EqConst(a.clone(), *c))
            }
            (Term::Const(c1), Term::Const(c2)) => {
                if c1 != c2 {
                    contradiction = true;
                }
            }
        }
    }
    if !conditions.is_empty() {
        expr = expr.select(conditions);
    }
    if contradiction {
        // A contradictory constant equality empties the query.
        expr = expr.clone().diff(expr);
    }

    let head_refs: Vec<&str> = query.head.iter().map(String::as_str).collect();
    Ok(expr.project(&head_refs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra_eval::evaluate_ra;
    use crate::ast::{c, v};
    use crate::cq_eval::evaluate_cq;
    use si_data::schema::social_schema;
    use si_data::{tuple, Database, Tuple};

    fn db() -> Database {
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "NYC"],
                tuple![3, "cat", "LA"],
            ],
        )
        .unwrap();
        db.insert_all(
            "friend",
            vec![tuple![1, 2], tuple![1, 3], tuple![2, 3], tuple![3, 3]],
        )
        .unwrap();
        db.insert_all(
            "restr",
            vec![
                tuple![10, "sushi", "NYC", "A"],
                tuple![11, "taco", "LA", "B"],
            ],
        )
        .unwrap();
        db.insert_all("visit", vec![tuple![2, 10], tuple![3, 11], tuple![3, 10]])
            .unwrap();
        db
    }

    fn assert_same_answers(q: &ConjunctiveQuery, db: &Database) {
        let schema = db.schema().clone();
        let expr = cq_to_ra(q, &schema).unwrap();
        let mut via_ra = evaluate_ra(&expr, db).unwrap().tuples;
        let mut via_cq: Vec<Tuple> = evaluate_cq(q, db, None).unwrap();
        via_ra.sort();
        via_cq.sort();
        assert_eq!(via_ra, via_cq, "RA and CQ evaluation disagree for {q}");
    }

    #[test]
    fn q1_translation_matches_direct_evaluation() {
        let q = ConjunctiveQuery::new(
            "Q1",
            vec!["p".into(), "name".into()],
            vec![
                Atom::new("friend", vec![v("p"), v("id")]),
                Atom::new("person", vec![v("id"), v("name"), c("NYC")]),
            ],
        );
        assert_same_answers(&q, &db());
        assert_same_answers(&q.bind(&[("p".into(), si_data::Value::int(1))]), &db());
    }

    #[test]
    fn q2_translation_matches_direct_evaluation() {
        let q = ConjunctiveQuery::new(
            "Q2",
            vec!["p".into(), "rn".into()],
            vec![
                Atom::new("friend", vec![v("p"), v("id")]),
                Atom::new("visit", vec![v("id"), v("rid")]),
                Atom::new("person", vec![v("id"), v("pn"), c("NYC")]),
                Atom::new("restr", vec![v("rid"), v("rn"), c("NYC"), c("A")]),
            ],
        );
        assert_same_answers(&q, &db());
    }

    #[test]
    fn repeated_variables_become_attribute_equalities() {
        let q = ConjunctiveQuery::new(
            "SelfLoop",
            vec!["x".into()],
            vec![Atom::new("friend", vec![v("x"), v("x")])],
        );
        let expr = cq_to_ra(&q, &social_schema()).unwrap();
        assert!(expr.to_string().contains("id1 = id2"));
        assert_same_answers(&q, &db());
        let answers = evaluate_ra(&expr, &db()).unwrap();
        assert_eq!(answers.tuples, vec![tuple![3]]);
    }

    #[test]
    fn equality_atoms_translate_to_selections() {
        let q = ConjunctiveQuery::new(
            "Q",
            vec!["n".into()],
            vec![Atom::new("person", vec![v("x"), v("n"), v("ci")])],
        )
        .with_equality(v("x"), c(2))
        .with_equality(v("ci"), v("ci"));
        assert_same_answers(&q, &db());
    }

    #[test]
    fn contradictory_constant_equality_empties_the_query() {
        let q = ConjunctiveQuery::new(
            "Q",
            vec!["n".into()],
            vec![Atom::new("person", vec![v("x"), v("n"), v("ci")])],
        )
        .with_equality(c(1), c(2));
        let expr = cq_to_ra(&q, &social_schema()).unwrap();
        assert!(evaluate_ra(&expr, &db()).unwrap().is_empty());
        assert_same_answers(&q, &db());
    }

    #[test]
    fn variable_named_after_other_attribute_is_handled() {
        // Variable "id" is placed on the `rid` column of visit while another
        // variable sits on `id`: the simultaneous rename must not collide.
        let q = ConjunctiveQuery::new(
            "Tricky",
            vec!["id".into(), "who".into()],
            vec![Atom::new("visit", vec![v("who"), v("id")])],
        );
        let expr = cq_to_ra(&q, &social_schema()).unwrap();
        let out = evaluate_ra(&expr, &db()).unwrap();
        assert_eq!(out.attributes, vec!["id", "who"]);
        assert_same_answers(&q, &db());
    }

    #[test]
    fn queries_without_atoms_are_rejected() {
        let q = ConjunctiveQuery::new("E", vec![], vec![]);
        assert!(matches!(
            cq_to_ra(&q, &social_schema()),
            Err(QueryError::UnsupportedFragment(_))
        ));
    }

    #[test]
    fn atom_translation_validates_arity() {
        let bad = Atom::new("friend", vec![v("x")]);
        assert!(matches!(
            atom_to_ra(&bad, &social_schema()),
            Err(QueryError::AtomArity { .. })
        ));
    }

    #[test]
    fn boolean_cq_translates_to_nullary_projection() {
        let q = ConjunctiveQuery::new(
            "B",
            vec![],
            vec![Atom::new("person", vec![v("x"), v("n"), c("LA")])],
        );
        let expr = cq_to_ra(&q, &social_schema()).unwrap();
        let out = evaluate_ra(&expr, &db()).unwrap();
        // Non-empty iff the Boolean query is true; tuples are 0-ary.
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples[0].arity(), 0);
    }
}
