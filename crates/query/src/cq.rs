//! Conjunctive queries (the SPJ fragment).
//!
//! A conjunctive query `Q(x̅) = ∃ȳ (R1(z̅1) ∧ … ∧ Rk(z̅k) ∧ φ)` is stored as a
//! head variable list plus a list of relation atoms plus equality atoms.  The
//! paper measures `‖Q‖` as the size of the tableau of `Q`
//! ([`ConjunctiveQuery::tableau_size`]), which is what bounds the witness
//! needed for a Boolean CQ (Corollary 3.2).

use crate::ast::{Atom, FoQuery, Formula, Term, Var};
use crate::error::QueryError;
use si_data::{Database, DatabaseSchema, RelationSchema, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A conjunctive query: head variables, relation atoms and equality atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    /// Query name, for display.
    pub name: String,
    /// Ordered head (distinguished) variables.
    pub head: Vec<Var>,
    /// Relation atoms of the body.
    pub atoms: Vec<Atom>,
    /// Equality atoms of the body (between variables and/or constants).
    pub equalities: Vec<(Term, Term)>,
}

impl ConjunctiveQuery {
    /// Creates a conjunctive query without equality atoms.
    pub fn new(name: impl Into<String>, head: Vec<Var>, atoms: Vec<Atom>) -> Self {
        ConjunctiveQuery {
            name: name.into(),
            head,
            atoms,
            equalities: Vec::new(),
        }
    }

    /// Adds an equality atom.
    pub fn with_equality(mut self, left: Term, right: Term) -> Self {
        self.equalities.push((left, right));
        self
    }

    /// True iff the query has no head variables (a Boolean CQ).
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// The arity of the answers.
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// `‖Q‖`: the number of atoms of the tableau of `Q`.  For a Boolean CQ
    /// this bounds the number of tuples needed to witness `Q(D) = true`.
    pub fn tableau_size(&self) -> usize {
        self.atoms.len()
    }

    /// All variables occurring in the body, in first-occurrence order.
    pub fn body_variables(&self) -> Vec<Var> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for a in &self.atoms {
            for t in &a.terms {
                if let Term::Var(v) = t {
                    if seen.insert(v.clone()) {
                        out.push(v.clone());
                    }
                }
            }
        }
        for (l, r) in &self.equalities {
            for t in [l, r] {
                if let Term::Var(v) = t {
                    if seen.insert(v.clone()) {
                        out.push(v.clone());
                    }
                }
            }
        }
        out
    }

    /// The existential (non-distinguished) variables.
    pub fn existential_variables(&self) -> Vec<Var> {
        let head: BTreeSet<&Var> = self.head.iter().collect();
        self.body_variables()
            .into_iter()
            .filter(|v| !head.contains(v))
            .collect()
    }

    /// Validates that every head variable occurs in the body (safety) and
    /// that atom arities match `schema`.
    pub fn validate(&self, schema: &DatabaseSchema) -> Result<(), QueryError> {
        let body_vars: BTreeSet<Var> = self.body_variables().into_iter().collect();
        for v in &self.head {
            if !body_vars.contains(v) {
                return Err(QueryError::UnboundVariable(v.clone()));
            }
        }
        for a in &self.atoms {
            let rel = schema.relation(&a.relation)?;
            if rel.arity() != a.terms.len() {
                return Err(QueryError::AtomArity {
                    relation: a.relation.clone(),
                    expected: rel.arity(),
                    actual: a.terms.len(),
                });
            }
        }
        Ok(())
    }

    /// Converts to the equivalent [`FoQuery`]
    /// `Q(x̅) = ∃ȳ (∧ atoms ∧ ∧ equalities)`.
    pub fn to_fo(&self) -> FoQuery {
        let mut body = Formula::True;
        for a in &self.atoms {
            body = body.and(Formula::Atom(a.clone()));
        }
        for (l, r) in &self.equalities {
            body = body.and(Formula::Eq(l.clone(), r.clone()));
        }
        let body = Formula::exists(self.existential_variables(), body);
        FoQuery::new(self.name.clone(), self.head.clone(), body)
    }

    /// Fixes some head variables to constants, returning a new CQ whose head
    /// consists of the remaining variables (the `Q(a̅, D)` notation of the
    /// paper).
    pub fn bind(&self, bindings: &[(Var, Value)]) -> ConjunctiveQuery {
        let map: BTreeMap<&Var, &Value> = bindings.iter().map(|(v, c)| (v, c)).collect();
        let sub_term = |t: &Term| match t {
            Term::Var(v) => map
                .get(v)
                .map(|val| Term::Const(*(*val)))
                .unwrap_or_else(|| t.clone()),
            Term::Const(_) => t.clone(),
        };
        ConjunctiveQuery {
            name: format!("{}#bound", self.name),
            head: self
                .head
                .iter()
                .filter(|v| !map.contains_key(v))
                .cloned()
                .collect(),
            atoms: self
                .atoms
                .iter()
                .map(|a| Atom {
                    relation: a.relation.clone(),
                    terms: a.terms.iter().map(sub_term).collect(),
                })
                .collect(),
            equalities: self
                .equalities
                .iter()
                .map(|(l, r)| (sub_term(l), sub_term(r)))
                .collect(),
        }
    }

    /// Builds the canonical database (frozen tableau) of the query: every
    /// variable becomes a fresh constant `"?v"`, every atom becomes a tuple.
    /// Used for containment testing via the homomorphism theorem.
    ///
    /// Returns the database together with the frozen head tuple.
    pub fn canonical_database(
        &self,
        schema: &DatabaseSchema,
    ) -> Result<(Database, Tuple), QueryError> {
        self.validate(schema)?;
        // Canonical databases only need the relations mentioned by the query;
        // restrict the schema so that extra relations do not get in the way.
        let mut rel_schemas: Vec<RelationSchema> = Vec::new();
        let mut seen = BTreeSet::new();
        for a in &self.atoms {
            if seen.insert(a.relation.clone()) {
                rel_schemas.push(schema.relation(&a.relation)?.clone());
            }
        }
        let canonical_schema = DatabaseSchema::from_relations(rel_schemas)?;
        let mut db = Database::empty(canonical_schema);
        let freeze = |t: &Term| match t {
            Term::Var(v) => Value::str(format!("?{v}")),
            Term::Const(c) => *c,
        };
        for a in &self.atoms {
            let tuple: Tuple = a.terms.iter().map(freeze).collect();
            db.insert(&a.relation, tuple)?;
        }
        let head_tuple: Tuple = self
            .head
            .iter()
            .map(|v| Value::str(format!("?{v}")))
            .collect();
        Ok((db, head_tuple))
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}) :- ", self.name, self.head.join(", "))?;
        let mut first = true;
        for a in &self.atoms {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{a}")?;
        }
        for (l, r) in &self.equalities {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{l} = {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{c, v};
    use si_data::schema::social_schema;

    /// The paper's Q1: friends of `p` who live in NYC.
    pub fn q1() -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            "Q1",
            vec!["p".into(), "name".into()],
            vec![
                Atom::new("friend", vec![v("p"), v("id")]),
                Atom::new("person", vec![v("id"), v("name"), c("NYC")]),
            ],
        )
    }

    #[test]
    fn basic_accessors() {
        let q = q1();
        assert_eq!(q.arity(), 2);
        assert!(!q.is_boolean());
        assert_eq!(q.tableau_size(), 2);
        assert_eq!(
            q.body_variables(),
            vec!["p".to_string(), "id".to_string(), "name".to_string()]
        );
        assert_eq!(q.existential_variables(), vec!["id".to_string()]);
    }

    #[test]
    fn validation_checks_safety_and_arity() {
        let schema = social_schema();
        q1().validate(&schema).unwrap();

        let unsafe_q = ConjunctiveQuery::new(
            "bad",
            vec!["z".into()],
            vec![Atom::new("friend", vec![v("a"), v("b")])],
        );
        assert!(matches!(
            unsafe_q.validate(&schema),
            Err(QueryError::UnboundVariable(_))
        ));

        let bad_arity = ConjunctiveQuery::new(
            "bad2",
            vec!["a".into()],
            vec![Atom::new("friend", vec![v("a")])],
        );
        assert!(matches!(
            bad_arity.validate(&schema),
            Err(QueryError::AtomArity { .. })
        ));

        let bad_rel = ConjunctiveQuery::new(
            "bad3",
            vec!["a".into()],
            vec![Atom::new("enemy", vec![v("a")])],
        );
        assert!(matches!(
            bad_rel.validate(&schema),
            Err(QueryError::Data(_))
        ));
    }

    #[test]
    fn to_fo_produces_equivalent_structure() {
        let q = q1().to_fo();
        assert_eq!(q.head, vec!["p".to_string(), "name".to_string()]);
        let free: Vec<String> = q.body.free_variables().into_iter().collect();
        assert_eq!(free, vec!["name".to_string(), "p".to_string()]);
        assert!(q.body.to_string().contains("∃id"));
    }

    #[test]
    fn bind_replaces_head_variable() {
        let q = q1().bind(&[("p".into(), Value::int(7))]);
        assert_eq!(q.head, vec!["name".to_string()]);
        assert_eq!(q.atoms[0].terms[0], c(7));
        // Other atoms untouched.
        assert_eq!(q.atoms[1].terms[1], v("name"));
    }

    #[test]
    fn bind_also_substitutes_equalities() {
        let q = ConjunctiveQuery::new(
            "Q",
            vec!["x".into(), "y".into()],
            vec![Atom::new("friend", vec![v("x"), v("y")])],
        )
        .with_equality(v("x"), c(3));
        let b = q.bind(&[("x".into(), Value::int(5))]);
        assert_eq!(b.equalities[0], (c(5), c(3)));
    }

    #[test]
    fn canonical_database_freezes_variables() {
        let schema = social_schema();
        let (db, head) = q1().canonical_database(&schema).unwrap();
        assert_eq!(db.size(), 2);
        assert!(db
            .contains(
                "friend",
                &Tuple::new(vec![Value::str("?p"), Value::str("?id")])
            )
            .unwrap());
        assert!(db
            .contains(
                "person",
                &Tuple::new(vec![
                    Value::str("?id"),
                    Value::str("?name"),
                    Value::str("NYC")
                ])
            )
            .unwrap());
        assert_eq!(
            head,
            Tuple::new(vec![Value::str("?p"), Value::str("?name")])
        );
    }

    #[test]
    fn display_uses_datalog_notation() {
        let s = q1().to_string();
        assert!(s.starts_with("Q1(p, name) :- "));
        assert!(s.contains("friend(p, id)"));
        let q = q1().with_equality(v("p"), c(1));
        assert!(q.to_string().contains("p = 1"));
    }

    #[test]
    fn boolean_cq_has_empty_head() {
        let q = ConjunctiveQuery::new("B", vec![], vec![Atom::new("friend", vec![v("x"), v("y")])]);
        assert!(q.is_boolean());
        assert_eq!(q.arity(), 0);
        assert_eq!(
            q.existential_variables(),
            vec!["x".to_string(), "y".to_string()]
        );
    }
}
