//! Error type for the query substrate.

use si_data::DataError;
use std::fmt;

/// Errors raised while constructing, translating or evaluating queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Propagated storage-layer error.
    Data(DataError),
    /// An atom's arity does not match the relation schema.
    AtomArity {
        /// Relation mentioned by the atom.
        relation: String,
        /// Arity declared by the schema.
        expected: usize,
        /// Arity used by the atom.
        actual: usize,
    },
    /// A variable was used but never bound (e.g. a head variable that does not
    /// occur in the body of a conjunctive query).
    UnboundVariable(String),
    /// The two sides of a union/difference have different attribute sets.
    SchemaMismatch(String),
    /// An attribute was referenced that the relational-algebra expression does
    /// not produce.
    UnknownAttribute(String),
    /// Parsing a textual query failed.
    Parse {
        /// Byte offset in the input where the error was detected.
        position: usize,
        /// Description of the problem.
        message: String,
    },
    /// A query was used in a context requiring a different fragment
    /// (e.g. an FO query where a conjunctive query is required).
    UnsupportedFragment(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Data(e) => write!(f, "{e}"),
            QueryError::AtomArity {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "atom over `{relation}` has {actual} terms but the schema declares {expected} attributes"
            ),
            QueryError::UnboundVariable(v) => write!(f, "variable `{v}` is not bound"),
            QueryError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            QueryError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            QueryError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            QueryError::UnsupportedFragment(msg) => write!(f, "unsupported query fragment: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for QueryError {
    fn from(e: DataError) -> Self {
        QueryError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = QueryError::AtomArity {
            relation: "friend".into(),
            expected: 2,
            actual: 3,
        };
        assert!(e.to_string().contains("friend"));
        assert!(QueryError::UnboundVariable("x".into())
            .to_string()
            .contains('x'));
        assert!(QueryError::Parse {
            position: 4,
            message: "expected `(`".into()
        }
        .to_string()
        .contains("byte 4"));
        assert!(QueryError::SchemaMismatch("union arity".into())
            .to_string()
            .contains("union"));
        assert!(QueryError::UnknownAttribute("zip".into())
            .to_string()
            .contains("zip"));
        assert!(QueryError::UnsupportedFragment("negation".into())
            .to_string()
            .contains("negation"));
    }

    #[test]
    fn data_errors_convert_and_chain() {
        let e: QueryError = DataError::UnknownRelation("r".into()).into();
        assert!(e.to_string().contains("unknown relation"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
