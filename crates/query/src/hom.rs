//! Homomorphisms between conjunctive queries and CQ containment.
//!
//! The classical homomorphism theorem (Chandra–Merlin) states that
//! `Q1 ⊆ Q2` iff there is a homomorphism from `Q2` to `Q1` mapping the head
//! of `Q2` to the head of `Q1`.  The view-rewriting machinery of Section 6
//! uses containment both ways to check that a candidate rewriting is
//! equivalent to the original query.

use crate::ast::{Atom, Term, Var};
use crate::cq::ConjunctiveQuery;
use si_data::Value;
use std::collections::BTreeMap;

/// A homomorphism: a mapping from variables of the source query to terms
/// (variables or constants) of the target query.
pub type Homomorphism = BTreeMap<Var, Term>;

/// Searches for a homomorphism from `source` to `target` that maps the i-th
/// head variable of `source` to the i-th head term of `target` (heads must
/// have equal arity).  Constants must map to themselves.
///
/// The target plays the role of its frozen canonical database, so its
/// variable-to-constant equalities are substituted into its atoms first —
/// without this, a query carrying `p = 1` would not even be contained in
/// itself (its own `p` is forced to `1` on the source side but the frozen
/// atom would still carry the variable).
pub fn find_homomorphism(
    source: &ConjunctiveQuery,
    target: &ConjunctiveQuery,
) -> Option<Homomorphism> {
    if source.head.len() != target.head.len() {
        return None;
    }
    let target = &freeze_constant_equalities(target);
    let mut mapping: Homomorphism = BTreeMap::new();
    // The head must be preserved: source head var i ↦ target head var i.
    for (sv, tv) in source.head.iter().zip(target.head.iter()) {
        if let Some(prev) = mapping.get(sv) {
            if prev.as_var() != Some(tv.as_str()) {
                return None;
            }
        } else {
            mapping.insert(sv.clone(), Term::Var(tv.clone()));
        }
    }
    // Propagate equalities of the source that involve constants: a source
    // variable equated to a constant must map to that constant.
    for (l, r) in &source.equalities {
        match (l, r) {
            (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) => {
                match mapping.get(v) {
                    Some(Term::Const(existing)) if existing != c => return None,
                    Some(Term::Var(_)) => { /* checked at the end via apply */ }
                    _ => {
                        mapping.insert(v.clone(), Term::Const(*c));
                    }
                }
            }
            (Term::Const(c1), Term::Const(c2)) if c1 != c2 => return None,
            _ => {}
        }
    }
    if map_atoms(&source.atoms, 0, source, target, &mut mapping) {
        Some(mapping)
    } else {
        None
    }
}

/// Substitutes the target's `Var = Const` equalities into its atoms, the way
/// freezing the canonical database would.  Variable/variable equalities are
/// left to [`equalities_respected`], as before.
fn freeze_constant_equalities(target: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut subst: BTreeMap<&Var, Value> = BTreeMap::new();
    for (l, r) in &target.equalities {
        if let (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) = (l, r) {
            subst.entry(v).or_insert(*c);
        }
    }
    if subst.is_empty() {
        return target.clone();
    }
    let mut frozen = target.clone();
    for atom in &mut frozen.atoms {
        for term in &mut atom.terms {
            if let Term::Var(v) = term {
                if let Some(c) = subst.get(v) {
                    *term = Term::Const(*c);
                }
            }
        }
    }
    frozen
}

/// Checks that the source's equality atoms are respected by `mapping`:
/// both sides must denote the same term after applying the homomorphism.
fn equalities_respected(source: &ConjunctiveQuery, mapping: &Homomorphism) -> bool {
    source.equalities.iter().all(|(l, r)| {
        let lhs = apply_to_term(mapping, l);
        let rhs = apply_to_term(mapping, r);
        lhs == rhs
    })
}

/// True iff `q1 ⊆ q2` (every answer of `q1` is an answer of `q2`, over all
/// databases), by the homomorphism theorem.
pub fn contained_in(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    find_homomorphism(q2, q1).is_some()
}

/// True iff the two queries are equivalent (mutual containment).
pub fn equivalent(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    contained_in(q1, q2) && contained_in(q2, q1)
}

fn map_atoms(
    atoms: &[Atom],
    idx: usize,
    source: &ConjunctiveQuery,
    target: &ConjunctiveQuery,
    mapping: &mut Homomorphism,
) -> bool {
    if idx == atoms.len() {
        // All atoms mapped; the mapping must additionally respect the
        // source's variable/variable equalities.
        return equalities_respected(source, mapping);
    }
    let atom = &atoms[idx];
    for candidate in target.atoms.iter().filter(|a| a.relation == atom.relation) {
        if candidate.terms.len() != atom.terms.len() {
            continue;
        }
        let mut added: Vec<Var> = Vec::new();
        let mut ok = true;
        for (s_term, t_term) in atom.terms.iter().zip(candidate.terms.iter()) {
            match s_term {
                Term::Const(c) => {
                    // Constants must be matched exactly by the target term.
                    if t_term != &Term::Const(*c) {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match mapping.get(v) {
                    Some(existing) => {
                        if existing != t_term {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        mapping.insert(v.clone(), t_term.clone());
                        added.push(v.clone());
                    }
                },
            }
        }
        if ok && map_atoms(atoms, idx + 1, source, target, mapping) {
            return true;
        }
        for v in added {
            mapping.remove(&v);
        }
    }
    false
}

/// Applies a homomorphism to a term.
pub fn apply_to_term(h: &Homomorphism, term: &Term) -> Term {
    match term {
        Term::Const(_) => term.clone(),
        Term::Var(v) => h.get(v).cloned().unwrap_or_else(|| term.clone()),
    }
}

/// Applies a homomorphism to an atom.
pub fn apply_to_atom(h: &Homomorphism, atom: &Atom) -> Atom {
    Atom {
        relation: atom.relation.clone(),
        terms: atom.terms.iter().map(|t| apply_to_term(h, t)).collect(),
    }
}

/// Composes a variable-to-constant binding list into a homomorphism.
pub fn bindings_to_hom(bindings: &[(Var, Value)]) -> Homomorphism {
    bindings
        .iter()
        .map(|(v, c)| (v.clone(), Term::Const(*c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{c, v};

    fn path2(name: &str, x: &str, y: &str, z: &str) -> ConjunctiveQuery {
        // name(x, z) :- friend(x, y), friend(y, z)
        ConjunctiveQuery::new(
            name,
            vec![x.into(), z.into()],
            vec![
                Atom::new("friend", vec![v(x), v(y)]),
                Atom::new("friend", vec![v(y), v(z)]),
            ],
        )
    }

    #[test]
    fn identical_queries_are_equivalent() {
        let q = path2("P", "a", "b", "c");
        assert!(equivalent(&q, &q));
    }

    #[test]
    fn renamed_queries_are_equivalent() {
        let q1 = path2("P", "a", "b", "c");
        let q2 = path2("P'", "x", "y", "z");
        assert!(equivalent(&q1, &q2));
    }

    #[test]
    fn longer_path_is_contained_in_shorter_pattern_but_not_conversely() {
        // Q3(x, w) :- friend(x,y), friend(y,z), friend(z,w)
        let q3 = ConjunctiveQuery::new(
            "Q3",
            vec!["x".into(), "w".into()],
            vec![
                Atom::new("friend", vec![v("x"), v("y")]),
                Atom::new("friend", vec![v("y"), v("z")]),
                Atom::new("friend", vec![v("z"), v("w")]),
            ],
        );
        // Q1(x, y) :- friend(x, y): every path-3 endpoint pair need not be an
        // edge, and an edge need not extend to a path of length 3.
        let q1 = ConjunctiveQuery::new(
            "Q1",
            vec!["x".into(), "y".into()],
            vec![Atom::new("friend", vec![v("x"), v("y")])],
        );
        assert!(!contained_in(&q3, &q1));
        assert!(!contained_in(&q1, &q3));

        // A triangle-free check: path-2 with head (x, x) maps onto a self loop.
        let selfloop = ConjunctiveQuery::new(
            "L",
            vec!["x".into(), "x".into()],
            vec![Atom::new("friend", vec![v("x"), v("x")])],
        );
        let p2 = path2("P", "a", "b", "c");
        // self loop ⊆ path2 (a self loop gives a path of length 2 onto itself)
        assert!(contained_in(&selfloop, &p2));
        assert!(!contained_in(&p2, &selfloop));
    }

    #[test]
    fn constants_must_match_exactly() {
        let nyc = ConjunctiveQuery::new(
            "N",
            vec!["id".into()],
            vec![Atom::new("person", vec![v("id"), v("n"), c("NYC")])],
        );
        let la = ConjunctiveQuery::new(
            "L",
            vec!["id".into()],
            vec![Atom::new("person", vec![v("id"), v("n"), c("LA")])],
        );
        let any = ConjunctiveQuery::new(
            "A",
            vec!["id".into()],
            vec![Atom::new("person", vec![v("id"), v("n"), v("city")])],
        );
        assert!(!contained_in(&nyc, &la));
        assert!(!contained_in(&la, &nyc));
        assert!(contained_in(&nyc, &any));
        assert!(!contained_in(&any, &nyc));
    }

    #[test]
    fn head_arity_mismatch_is_not_contained() {
        let unary = ConjunctiveQuery::new(
            "U",
            vec!["x".into()],
            vec![Atom::new("friend", vec![v("x"), v("y")])],
        );
        let binary = ConjunctiveQuery::new(
            "B",
            vec!["x".into(), "y".into()],
            vec![Atom::new("friend", vec![v("x"), v("y")])],
        );
        assert!(find_homomorphism(&unary, &binary).is_none());
        assert!(!contained_in(&unary, &binary));
    }

    #[test]
    fn equality_with_constant_propagates_into_hom() {
        // source: Q(x) :- friend(x, y), y = 3    target: Q'(x) :- friend(x, 3)
        let source = ConjunctiveQuery::new(
            "Q",
            vec!["x".into()],
            vec![Atom::new("friend", vec![v("x"), v("y")])],
        )
        .with_equality(v("y"), c(3));
        let target = ConjunctiveQuery::new(
            "Q'",
            vec!["x".into()],
            vec![Atom::new("friend", vec![v("x"), c(3)])],
        );
        let h = find_homomorphism(&source, &target).expect("hom should exist");
        assert_eq!(h.get("y"), Some(&c(3)));
        // And the contradictory constant equality kills the mapping.
        let bad = ConjunctiveQuery::new(
            "Q",
            vec!["x".into()],
            vec![Atom::new("friend", vec![v("x"), v("y")])],
        )
        .with_equality(c(1), c(2));
        assert!(find_homomorphism(&bad, &target).is_none());
    }

    #[test]
    fn constant_equalities_do_not_break_reflexivity() {
        // The target is frozen with its constant equalities substituted, so
        // a query carrying `p = 1` is contained in (and equivalent to)
        // itself and to its inlined form.
        let q =
            crate::parse_cq(r#"Q(name) :- friend(p, id), person(id, name, "NYC"), p = 1"#).unwrap();
        assert!(contained_in(&q, &q));
        assert!(equivalent(&q, &q));
        let inlined =
            crate::parse_cq(r#"Q(name) :- friend(1, id), person(id, name, "NYC")"#).unwrap();
        assert!(equivalent(&q, &inlined));
        // A different constant is still distinguished.
        let other =
            crate::parse_cq(r#"Q(name) :- friend(2, id), person(id, name, "NYC")"#).unwrap();
        assert!(!equivalent(&q, &other));
    }

    #[test]
    fn apply_helpers_substitute_terms() {
        let h: Homomorphism = bindings_to_hom(&[("x".into(), Value::int(1))]);
        assert_eq!(apply_to_term(&h, &v("x")), c(1));
        assert_eq!(apply_to_term(&h, &v("y")), v("y"));
        assert_eq!(apply_to_term(&h, &c(5)), c(5));
        let a = apply_to_atom(&h, &Atom::new("friend", vec![v("x"), v("y")]));
        assert_eq!(a.terms, vec![c(1), v("y")]);
    }
}
