//! Evaluation of conjunctive queries by hash joins over flat bindings.
//!
//! [`evaluate_cq`] is the *unbounded* baseline used throughout the
//! experiments: it touches every tuple of every relation mentioned by the
//! query exactly once (plus the intermediate join results), which is what a
//! conventional engine without access-schema knowledge would do.  The number
//! of base tuples it reads therefore grows linearly with `|D|` — the
//! behaviour that scale-independent plans avoid.
//!
//! Since the interned-data-plane refactor the evaluator numbers the query's
//! variables once into a [`VarTable`], compiles every atom's terms to slot
//! ids, and carries partial assignments as flat [`Binding`]s that extend by
//! copy.  Answers are deduplicated in a single insertion-ordered
//! [`TupleSet`] (the seed kept a `BTreeSet` *and* a `Vec` with an extra
//! clone per answer).

use crate::ast::{Atom, Term, Var};
use crate::binding::{Binding, VarId, VarTable};
use crate::cq::ConjunctiveQuery;
use crate::error::QueryError;
use crate::ucq::UnionQuery;
use si_data::{AccessMeter, Database, Tuple, TupleSet, Value};
use std::collections::{BTreeSet, HashMap};

/// All satisfying assignments of a query body, over the query's [`VarTable`].
#[derive(Debug, Clone)]
pub struct BindingSet {
    /// The query's variables, numbered in first-occurrence order.
    pub vars: VarTable,
    /// One flat binding per satisfying assignment.
    pub rows: Vec<Binding>,
}

impl BindingSet {
    /// Projects every row onto the named variables, dropping rows that leave
    /// one unbound.
    pub fn project_named(&self, names: &[Var]) -> Option<Vec<Tuple>> {
        let ids = self.vars.ids_of(names)?;
        Some(
            self.rows
                .iter()
                .filter_map(|row| row.project(&ids))
                .collect(),
        )
    }
}

/// A term compiled against a [`VarTable`]: a slot id or an interned constant.
#[derive(Debug, Clone, Copy)]
enum CTerm {
    Slot(VarId),
    Const(Value),
}

/// Compiles an atom's terms against `vars`, interning new variables.
fn compile_terms(atom: &Atom, vars: &mut VarTable) -> Vec<CTerm> {
    atom.terms
        .iter()
        .map(|t| match t {
            Term::Var(v) => CTerm::Slot(vars.intern(v)),
            Term::Const(c) => CTerm::Const(*c),
        })
        .collect()
}

/// Evaluates a conjunctive query over `db`, returning the set of answer
/// tuples (projections of satisfying assignments onto the head) in
/// first-derivation order, without duplicates.
///
/// Every base tuple examined is charged to `meter` (one full scan per atom).
pub fn evaluate_cq(
    query: &ConjunctiveQuery,
    db: &Database,
    meter: Option<&AccessMeter>,
) -> Result<Vec<Tuple>, QueryError> {
    query.validate(db.schema())?;
    let bindings = satisfying_bindings(query, db, meter)?;
    let head_ids = bindings
        .vars
        .ids_of(&query.head)
        .ok_or_else(|| QueryError::UnboundVariable("head variable not bound by body".into()))?;
    let mut out = TupleSet::new();
    for row in &bindings.rows {
        let tuple = row
            .project(&head_ids)
            .ok_or_else(|| QueryError::UnboundVariable("head variable not bound by body".into()))?;
        out.insert(tuple);
    }
    Ok(out.into_vec())
}

/// Evaluates a Boolean conjunctive query (`true` iff it has at least one
/// satisfying assignment).
pub fn evaluate_boolean_cq(
    query: &ConjunctiveQuery,
    db: &Database,
    meter: Option<&AccessMeter>,
) -> Result<bool, QueryError> {
    Ok(!satisfying_bindings(query, db, meter)?.rows.is_empty())
}

/// Evaluates a union of conjunctive queries (set union of the disjuncts'
/// answers).
pub fn evaluate_ucq(
    query: &UnionQuery,
    db: &Database,
    meter: Option<&AccessMeter>,
) -> Result<Vec<Tuple>, QueryError> {
    let mut out = TupleSet::new();
    for d in &query.disjuncts {
        out.extend(evaluate_cq(d, db, meter)?);
    }
    Ok(out.into_vec())
}

/// Computes all satisfying assignments of the query body over `db`, as flat
/// bindings over the query's [`VarTable`].
///
/// This is exposed (rather than only the projected answers) because the
/// bounded-evaluation and incremental modules need the full assignments to
/// reconstruct witness sets.
pub fn satisfying_bindings(
    query: &ConjunctiveQuery,
    db: &Database,
    meter: Option<&AccessMeter>,
) -> Result<BindingSet, QueryError> {
    // Number every body variable once, in first-occurrence order.
    let mut vars = VarTable::from_names(query.body_variables());
    let ordered = order_atoms(query);
    let compiled: Vec<Vec<CTerm>> = ordered
        .iter()
        .map(|atom| compile_terms(atom, &mut vars))
        .collect();
    let equalities: Vec<(CTerm, CTerm)> = query
        .equalities
        .iter()
        .map(|(l, r)| {
            let mut compile = |t: &Term| match t {
                Term::Var(v) => CTerm::Slot(vars.intern(v)),
                Term::Const(c) => CTerm::Const(*c),
            };
            (compile(l), compile(r))
        })
        .collect();

    // Seed with bindings forced by `x = c` equalities so that later atoms can
    // use them as filters.
    let mut seed = Binding::for_table(&vars);
    for (l, r) in &equalities {
        match (l, r) {
            (CTerm::Slot(id), CTerm::Const(c)) | (CTerm::Const(c), CTerm::Slot(id))
                if !seed.bind(*id, *c) =>
            {
                return Ok(BindingSet {
                    vars,
                    rows: Vec::new(),
                });
            }
            (CTerm::Const(c1), CTerm::Const(c2)) if c1 != c2 => {
                return Ok(BindingSet {
                    vars,
                    rows: Vec::new(),
                });
            }
            _ => {}
        }
    }

    // Which slots are bound is uniform across all current rows; track it once.
    let mut bound: Vec<bool> = (0..vars.len() as VarId)
        .map(|id| seed.is_bound(id))
        .collect();

    let mut rows: Vec<Binding> = vec![seed];
    for (cterms, atom) in compiled.iter().zip(ordered.iter()) {
        if rows.is_empty() {
            break;
        }
        let relation = db.relation(&atom.relation)?;
        if let Some(m) = meter {
            m.add_scan();
            m.add_tuples(relation.len() as u64);
        }

        // Slots of this atom that join with already-bound variables, and the
        // distinct new slots it binds (in term order).
        let mut join_slots: Vec<VarId> = Vec::new();
        let mut new_slots: Vec<VarId> = Vec::new();
        for ct in cterms {
            if let CTerm::Slot(id) = ct {
                if bound[*id as usize] {
                    if !join_slots.contains(id) {
                        join_slots.push(*id);
                    }
                } else if !new_slots.contains(id) {
                    new_slots.push(*id);
                }
            }
        }

        // Hash every tuple of the relation by its join key, keeping only the
        // tuples compatible with the atom's constants and repeated variables.
        // Each table row stores the values of `new_slots` in order — a flat,
        // copy-cheap record.
        let slot_count = vars.len();
        let mut table: HashMap<Vec<Value>, Vec<Vec<Value>>> = HashMap::new();
        let mut scratch = Binding::with_slots(slot_count);
        'tuples: for tuple in relation.iter() {
            // Local unification of the tuple against the atom.
            let mut touched: Vec<VarId> = Vec::new();
            for (pos, ct) in cterms.iter().enumerate() {
                let value = tuple[pos];
                match ct {
                    CTerm::Const(c) => {
                        if *c != value {
                            for id in touched.drain(..) {
                                scratch.unset(id);
                            }
                            continue 'tuples;
                        }
                    }
                    CTerm::Slot(id) => {
                        if scratch.get(*id).is_none() {
                            touched.push(*id);
                        }
                        if !scratch.bind(*id, value) {
                            for id in touched.drain(..) {
                                scratch.unset(id);
                            }
                            continue 'tuples;
                        }
                    }
                }
            }
            let key: Vec<Value> = join_slots
                .iter()
                .map(|&id| scratch.get(id).unwrap_or(Value::Null))
                .collect();
            let record: Vec<Value> = new_slots
                .iter()
                .map(|&id| scratch.get(id).expect("new slot bound by unification"))
                .collect();
            for id in touched.drain(..) {
                scratch.unset(id);
            }
            table.entry(key).or_default().push(record);
        }

        // Join with the current rows: probe by join key, then extend each
        // match by copying the binding and filling the new slots.
        let mut next: Vec<Binding> = Vec::new();
        let mut key: Vec<Value> = Vec::with_capacity(join_slots.len());
        for row in &rows {
            key.clear();
            key.extend(
                join_slots
                    .iter()
                    .map(|&id| row.get(id).unwrap_or(Value::Null)),
            );
            if let Some(matches) = table.get(&key) {
                for record in matches {
                    let mut extended = row.clone();
                    for (&id, &value) in new_slots.iter().zip(record.iter()) {
                        extended.set(id, value);
                    }
                    next.push(extended);
                }
            }
        }
        for &id in &new_slots {
            bound[id as usize] = true;
        }
        rows = next;
    }

    // Apply the remaining (variable/variable) equality atoms as filters.
    rows.retain(|row| {
        equalities.iter().all(|(l, r)| {
            let value_of = |t: &CTerm| match t {
                CTerm::Slot(id) => row.get(*id),
                CTerm::Const(c) => Some(*c),
            };
            match (value_of(l), value_of(r)) {
                (Some(a), Some(b)) => a == b,
                // Unbound variables in equalities make the query unsafe; the
                // validation step rejects unsafe heads, and we conservatively
                // drop such assignments here.
                _ => false,
            }
        })
    });

    Ok(BindingSet { vars, rows })
}

/// Chooses an evaluation order for the atoms: greedily pick the atom sharing
/// the most variables with what is already bound (constants count as bound),
/// which keeps intermediate results small for the acyclic queries of the
/// paper's examples.
fn order_atoms(query: &ConjunctiveQuery) -> Vec<Atom> {
    let mut remaining: Vec<Atom> = query.atoms.clone();
    let mut bound: BTreeSet<Var> = query
        .equalities
        .iter()
        .filter_map(|(l, r)| match (l, r) {
            (Term::Var(v), Term::Const(_)) | (Term::Const(_), Term::Var(v)) => Some(v.clone()),
            _ => None,
        })
        .collect();
    let mut ordered = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let (idx, _) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, a)| {
                let vars = a.variables();
                let shared = vars.iter().filter(|v| bound.contains(*v)).count();
                let constants = a.terms.iter().filter(|t| !t.is_var()).count();
                // Prefer atoms with shared variables, then with constants,
                // then smaller atoms; index keeps the choice deterministic.
                (shared, constants, usize::MAX - vars.len())
            })
            .expect("remaining is non-empty");
        let atom = remaining.remove(idx);
        for v in atom.variables() {
            bound.insert(v);
        }
        ordered.push(atom);
    }
    ordered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{c, v, Atom};
    use si_data::schema::social_schema;
    use si_data::tuple;

    fn db() -> Database {
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "NYC"],
                tuple![3, "cat", "LA"],
                tuple![4, "dan", "NYC"],
            ],
        )
        .unwrap();
        db.insert_all(
            "friend",
            vec![tuple![1, 2], tuple![1, 3], tuple![2, 4], tuple![4, 1]],
        )
        .unwrap();
        db.insert_all(
            "restr",
            vec![
                tuple![10, "sushi", "NYC", "A"],
                tuple![11, "taco", "NYC", "B"],
                tuple![12, "pasta", "LA", "A"],
            ],
        )
        .unwrap();
        db.insert_all(
            "visit",
            vec![tuple![2, 10], tuple![2, 11], tuple![3, 12], tuple![4, 10]],
        )
        .unwrap();
        db
    }

    fn q1_bound(p: i64) -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            "Q1",
            vec!["p".into(), "name".into()],
            vec![
                Atom::new("friend", vec![v("p"), v("id")]),
                Atom::new("person", vec![v("id"), v("name"), c("NYC")]),
            ],
        )
        .bind(&[("p".into(), Value::int(p))])
    }

    #[test]
    fn q1_finds_nyc_friends_of_person_1() {
        let db = db();
        let answers = evaluate_cq(&q1_bound(1), &db, None).unwrap();
        assert_eq!(answers, vec![tuple!["bob"]]);
    }

    #[test]
    fn q1_unbound_enumerates_all_pairs() {
        let db = db();
        let q = ConjunctiveQuery::new(
            "Q1",
            vec!["p".into(), "name".into()],
            vec![
                Atom::new("friend", vec![v("p"), v("id")]),
                Atom::new("person", vec![v("id"), v("name"), c("NYC")]),
            ],
        );
        let mut answers = evaluate_cq(&q, &db, None).unwrap();
        answers.sort();
        assert_eq!(
            answers,
            vec![tuple![1, "bob"], tuple![2, "dan"], tuple![4, "ann"],]
        );
    }

    #[test]
    fn q2_joins_four_relations() {
        // Q2(p, rn): restaurants rated A in NYC visited by p's NYC friends.
        let db = db();
        let q = ConjunctiveQuery::new(
            "Q2",
            vec!["rn".into()],
            vec![
                Atom::new("friend", vec![c(1), v("id")]),
                Atom::new("visit", vec![v("id"), v("rid")]),
                Atom::new("person", vec![v("id"), v("pn"), c("NYC")]),
                Atom::new("restr", vec![v("rid"), v("rn"), c("NYC"), c("A")]),
            ],
        );
        let answers = evaluate_cq(&q, &db, None).unwrap();
        assert_eq!(answers, vec![tuple!["sushi"]]);
    }

    #[test]
    fn meter_counts_one_scan_per_atom() {
        let db = db();
        let meter = AccessMeter::new();
        evaluate_cq(&q1_bound(1), &db, Some(&meter)).unwrap();
        assert_eq!(meter.full_scans(), 2);
        assert_eq!(
            meter.tuples_fetched(),
            (db.relation("friend").unwrap().len() + db.relation("person").unwrap().len()) as u64
        );
    }

    #[test]
    fn boolean_cq_detects_emptiness() {
        let db = db();
        let yes = ConjunctiveQuery::new(
            "B",
            vec![],
            vec![Atom::new("person", vec![v("x"), v("n"), c("LA")])],
        );
        let no = ConjunctiveQuery::new(
            "B",
            vec![],
            vec![Atom::new("person", vec![v("x"), v("n"), c("Tokyo")])],
        );
        assert!(evaluate_boolean_cq(&yes, &db, None).unwrap());
        assert!(!evaluate_boolean_cq(&no, &db, None).unwrap());
    }

    #[test]
    fn repeated_variables_in_atom_enforce_equality() {
        let db = db();
        // Self-friendship: friend(x, x) — none in the data.
        let q = ConjunctiveQuery::new(
            "Self",
            vec!["x".into()],
            vec![Atom::new("friend", vec![v("x"), v("x")])],
        );
        assert!(evaluate_cq(&q, &db, None).unwrap().is_empty());
    }

    #[test]
    fn equality_atoms_filter_and_seed() {
        let db = db();
        let q = ConjunctiveQuery::new(
            "Q",
            vec!["n".into()],
            vec![Atom::new("person", vec![v("x"), v("n"), v("city")])],
        )
        .with_equality(v("x"), c(3));
        assert_eq!(evaluate_cq(&q, &db, None).unwrap(), vec![tuple!["cat"]]);

        // Contradictory constant equality yields the empty answer.
        let q = ConjunctiveQuery::new(
            "Q",
            vec!["n".into()],
            vec![Atom::new("person", vec![v("x"), v("n"), v("city")])],
        )
        .with_equality(c(1), c(2));
        assert!(evaluate_cq(&q, &db, None).unwrap().is_empty());

        // Variable-variable equality as a join filter.
        let q = ConjunctiveQuery::new(
            "Q",
            vec!["a".into(), "b".into()],
            vec![
                Atom::new("friend", vec![v("a"), v("b")]),
                Atom::new("friend", vec![v("b"), v("c")]),
            ],
        )
        .with_equality(v("a"), v("c"));
        // No 2-cycle exists in this friend relation, so a = c filters
        // everything out.
        assert!(evaluate_cq(&q, &db, None).unwrap().is_empty());
    }

    #[test]
    fn contradictory_seed_bindings_yield_empty() {
        let db = db();
        let q = ConjunctiveQuery::new(
            "Q",
            vec!["n".into()],
            vec![Atom::new("person", vec![v("x"), v("n"), v("city")])],
        )
        .with_equality(v("x"), c(1))
        .with_equality(v("x"), c(2));
        assert!(evaluate_cq(&q, &db, None).unwrap().is_empty());
    }

    #[test]
    fn ucq_unions_disjunct_answers() {
        let db = db();
        let d1 = ConjunctiveQuery::new(
            "nyc",
            vec!["n".into()],
            vec![Atom::new("person", vec![v("x"), v("n"), c("LA")])],
        );
        let d2 = ConjunctiveQuery::new(
            "a_rated",
            vec!["n".into()],
            vec![Atom::new("restr", vec![v("r"), v("n"), v("ci"), c("A")])],
        );
        let q = UnionQuery::new("U", vec![d1, d2]).unwrap();
        let mut answers = evaluate_ucq(&q, &db, None).unwrap();
        answers.sort();
        assert_eq!(
            answers,
            vec![tuple!["cat"], tuple!["pasta"], tuple!["sushi"]]
        );
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let db = db();
        let q = ConjunctiveQuery::new(
            "bad",
            vec!["z".into()],
            vec![Atom::new("friend", vec![v("a"), v("b")])],
        );
        assert!(evaluate_cq(&q, &db, None).is_err());
    }

    // When a 2-cycle does exist, the a = c equality keeps exactly it.
    #[test]
    fn two_cycle_equality_join() {
        let mut db = Database::empty(social_schema());
        db.insert_all("friend", vec![tuple![1, 2], tuple![2, 1], tuple![2, 3]])
            .unwrap();
        let q = ConjunctiveQuery::new(
            "Q",
            vec!["a".into(), "b".into()],
            vec![
                Atom::new("friend", vec![v("a"), v("b")]),
                Atom::new("friend", vec![v("b"), v("c")]),
            ],
        )
        .with_equality(v("a"), v("c"));
        let mut answers = evaluate_cq(&q, &db, None).unwrap();
        answers.sort();
        assert_eq!(answers, vec![tuple![1, 2], tuple![2, 1]]);
    }

    #[test]
    fn binding_set_projects_named_variables() {
        let db = db();
        let q = ConjunctiveQuery::new(
            "Q",
            vec!["p".into(), "name".into()],
            vec![
                Atom::new("friend", vec![v("p"), v("id")]),
                Atom::new("person", vec![v("id"), v("name"), c("NYC")]),
            ],
        );
        let bindings = satisfying_bindings(&q, &db, None).unwrap();
        assert_eq!(bindings.rows.len(), 3);
        let projected = bindings.project_named(&["name".into()]).unwrap();
        assert_eq!(projected.len(), 3);
        assert!(bindings.project_named(&["nope".into()]).is_none());
        // Every row binds every body variable of this query.
        for row in &bindings.rows {
            assert_eq!(row.bound_count(), bindings.vars.len());
        }
    }
}
