//! Evaluation of conjunctive queries by hash joins.
//!
//! [`evaluate_cq`] is the *unbounded* baseline used throughout the
//! experiments: it touches every tuple of every relation mentioned by the
//! query exactly once (plus the intermediate join results), which is what a
//! conventional engine without access-schema knowledge would do.  The number
//! of base tuples it reads therefore grows linearly with `|D|` — the
//! behaviour that scale-independent plans avoid.

use crate::ast::{Term, Var};
use crate::cq::ConjunctiveQuery;
use crate::error::QueryError;
use crate::ucq::UnionQuery;
use si_data::{AccessMeter, Database, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A variable assignment produced during evaluation.
pub type Assignment = BTreeMap<Var, Value>;

/// Evaluates a conjunctive query over `db`, returning the set of answer
/// tuples (projections of satisfying assignments onto the head).
///
/// Every base tuple examined is charged to `meter` (one full scan per atom).
pub fn evaluate_cq(
    query: &ConjunctiveQuery,
    db: &Database,
    meter: Option<&AccessMeter>,
) -> Result<Vec<Tuple>, QueryError> {
    query.validate(db.schema())?;
    let assignments = satisfying_assignments(query, db, meter)?;
    let mut out: Vec<Tuple> = Vec::new();
    let mut seen: BTreeSet<Tuple> = BTreeSet::new();
    for assignment in &assignments {
        let tuple: Option<Tuple> = query
            .head
            .iter()
            .map(|v| assignment.get(v).cloned())
            .collect();
        let tuple = tuple.ok_or_else(|| {
            QueryError::UnboundVariable("head variable not bound by body".into())
        })?;
        if seen.insert(tuple.clone()) {
            out.push(tuple);
        }
    }
    Ok(out)
}

/// Evaluates a Boolean conjunctive query (`true` iff it has at least one
/// satisfying assignment).
pub fn evaluate_boolean_cq(
    query: &ConjunctiveQuery,
    db: &Database,
    meter: Option<&AccessMeter>,
) -> Result<bool, QueryError> {
    Ok(!satisfying_assignments(query, db, meter)?.is_empty())
}

/// Evaluates a union of conjunctive queries (set union of the disjuncts'
/// answers).
pub fn evaluate_ucq(
    query: &UnionQuery,
    db: &Database,
    meter: Option<&AccessMeter>,
) -> Result<Vec<Tuple>, QueryError> {
    let mut seen: BTreeSet<Tuple> = BTreeSet::new();
    let mut out = Vec::new();
    for d in &query.disjuncts {
        for t in evaluate_cq(d, db, meter)? {
            if seen.insert(t.clone()) {
                out.push(t);
            }
        }
    }
    Ok(out)
}

/// Computes all satisfying assignments of the query body over `db`.
///
/// This is exposed (rather than only the projected answers) because the
/// bounded-evaluation and incremental modules need the full assignments to
/// reconstruct witness sets.
pub fn satisfying_assignments(
    query: &ConjunctiveQuery,
    db: &Database,
    meter: Option<&AccessMeter>,
) -> Result<Vec<Assignment>, QueryError> {
    // Seed with bindings forced by `x = c` equalities so that later atoms can
    // use them as filters.
    let mut seed: Assignment = BTreeMap::new();
    for (l, r) in &query.equalities {
        match (l, r) {
            (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) => {
                if let Some(existing) = seed.get(v) {
                    if existing != c {
                        return Ok(Vec::new());
                    }
                } else {
                    seed.insert(v.clone(), c.clone());
                }
            }
            (Term::Const(c1), Term::Const(c2)) => {
                if c1 != c2 {
                    return Ok(Vec::new());
                }
            }
            _ => {}
        }
    }

    let mut assignments: Vec<Assignment> = vec![seed];
    for atom in order_atoms(query) {
        if assignments.is_empty() {
            break;
        }
        let relation = db.relation(&atom.relation)?;
        if let Some(m) = meter {
            m.add_scan();
            m.add_tuples(relation.len() as u64);
        }

        // Variables already bound in (all of) the current assignments.
        let bound: BTreeSet<&Var> = assignments
            .first()
            .map(|a| a.keys().collect())
            .unwrap_or_default();
        // Positions of the atom joining with already-bound variables.
        let join_vars: Vec<Var> = atom
            .variables()
            .into_iter()
            .filter(|v| bound.contains(v))
            .collect();

        // Hash every tuple of the relation by its join key, keeping only the
        // tuples compatible with the atom's constants and repeated variables.
        let mut table: HashMap<Vec<Value>, Vec<Assignment>> = HashMap::new();
        'tuples: for tuple in relation.iter() {
            let mut local: Assignment = BTreeMap::new();
            for (pos, term) in atom.terms.iter().enumerate() {
                match term {
                    Term::Const(c) => {
                        if &tuple[pos] != c {
                            continue 'tuples;
                        }
                    }
                    Term::Var(v) => {
                        if let Some(prev) = local.get(v) {
                            if prev != &tuple[pos] {
                                continue 'tuples;
                            }
                        } else {
                            local.insert(v.clone(), tuple[pos].clone());
                        }
                    }
                }
            }
            let key: Vec<Value> = join_vars
                .iter()
                .map(|v| local.get(v).cloned().unwrap_or(Value::Null))
                .collect();
            table.entry(key).or_default().push(local);
        }

        // Join with the current assignments.
        let mut next: Vec<Assignment> = Vec::new();
        for assignment in &assignments {
            let key: Vec<Value> = join_vars
                .iter()
                .map(|v| assignment.get(v).cloned().unwrap_or(Value::Null))
                .collect();
            if let Some(matches) = table.get(&key) {
                for local in matches {
                    let mut merged = assignment.clone();
                    let mut compatible = true;
                    for (v, val) in local {
                        match merged.get(v) {
                            Some(existing) if existing != val => {
                                compatible = false;
                                break;
                            }
                            Some(_) => {}
                            None => {
                                merged.insert(v.clone(), val.clone());
                            }
                        }
                    }
                    if compatible {
                        next.push(merged);
                    }
                }
            }
        }
        assignments = next;
    }

    // Apply the remaining (variable/variable) equality atoms as filters.
    assignments.retain(|assignment| {
        query.equalities.iter().all(|(l, r)| {
            let value_of = |t: &Term| match t {
                Term::Var(v) => assignment.get(v).cloned(),
                Term::Const(c) => Some(c.clone()),
            };
            match (value_of(l), value_of(r)) {
                (Some(a), Some(b)) => a == b,
                // Unbound variables in equalities make the query unsafe; the
                // validation step rejects unsafe heads, and we conservatively
                // drop such assignments here.
                _ => false,
            }
        })
    });

    Ok(assignments)
}

/// Chooses an evaluation order for the atoms: greedily pick the atom sharing
/// the most variables with what is already bound (constants count as bound),
/// which keeps intermediate results small for the acyclic queries of the
/// paper's examples.
fn order_atoms(query: &ConjunctiveQuery) -> Vec<crate::ast::Atom> {
    let mut remaining: Vec<crate::ast::Atom> = query.atoms.clone();
    let mut bound: BTreeSet<Var> = query
        .equalities
        .iter()
        .filter_map(|(l, r)| match (l, r) {
            (Term::Var(v), Term::Const(_)) | (Term::Const(_), Term::Var(v)) => Some(v.clone()),
            _ => None,
        })
        .collect();
    let mut ordered = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let (idx, _) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, a)| {
                let vars = a.variables();
                let shared = vars.iter().filter(|v| bound.contains(*v)).count();
                let constants = a.terms.iter().filter(|t| !t.is_var()).count();
                // Prefer atoms with shared variables, then with constants,
                // then smaller atoms; index keeps the choice deterministic.
                (shared, constants, usize::MAX - vars.len())
            })
            .expect("remaining is non-empty");
        let atom = remaining.remove(idx);
        for v in atom.variables() {
            bound.insert(v);
        }
        ordered.push(atom);
    }
    ordered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{c, v, Atom};
    use si_data::schema::social_schema;
    use si_data::tuple;

    fn db() -> Database {
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "NYC"],
                tuple![3, "cat", "LA"],
                tuple![4, "dan", "NYC"],
            ],
        )
        .unwrap();
        db.insert_all(
            "friend",
            vec![tuple![1, 2], tuple![1, 3], tuple![2, 4], tuple![4, 1]],
        )
        .unwrap();
        db.insert_all(
            "restr",
            vec![
                tuple![10, "sushi", "NYC", "A"],
                tuple![11, "taco", "NYC", "B"],
                tuple![12, "pasta", "LA", "A"],
            ],
        )
        .unwrap();
        db.insert_all(
            "visit",
            vec![tuple![2, 10], tuple![2, 11], tuple![3, 12], tuple![4, 10]],
        )
        .unwrap();
        db
    }

    fn q1_bound(p: i64) -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            "Q1",
            vec!["p".into(), "name".into()],
            vec![
                Atom::new("friend", vec![v("p"), v("id")]),
                Atom::new("person", vec![v("id"), v("name"), c("NYC")]),
            ],
        )
        .bind(&[("p".into(), Value::int(p))])
    }

    #[test]
    fn q1_finds_nyc_friends_of_person_1() {
        let db = db();
        let answers = evaluate_cq(&q1_bound(1), &db, None).unwrap();
        assert_eq!(answers, vec![tuple!["bob"]]);
    }

    #[test]
    fn q1_unbound_enumerates_all_pairs() {
        let db = db();
        let q = ConjunctiveQuery::new(
            "Q1",
            vec!["p".into(), "name".into()],
            vec![
                Atom::new("friend", vec![v("p"), v("id")]),
                Atom::new("person", vec![v("id"), v("name"), c("NYC")]),
            ],
        );
        let mut answers = evaluate_cq(&q, &db, None).unwrap();
        answers.sort();
        assert_eq!(
            answers,
            vec![
                tuple![1, "bob"],
                tuple![2, "dan"],
                tuple![4, "ann"],
            ]
        );
    }

    #[test]
    fn q2_joins_four_relations() {
        // Q2(p, rn): restaurants rated A in NYC visited by p's NYC friends.
        let db = db();
        let q = ConjunctiveQuery::new(
            "Q2",
            vec!["rn".into()],
            vec![
                Atom::new("friend", vec![c(1), v("id")]),
                Atom::new("visit", vec![v("id"), v("rid")]),
                Atom::new("person", vec![v("id"), v("pn"), c("NYC")]),
                Atom::new("restr", vec![v("rid"), v("rn"), c("NYC"), c("A")]),
            ],
        );
        let answers = evaluate_cq(&q, &db, None).unwrap();
        assert_eq!(answers, vec![tuple!["sushi"]]);
    }

    #[test]
    fn meter_counts_one_scan_per_atom() {
        let db = db();
        let meter = AccessMeter::new();
        evaluate_cq(&q1_bound(1), &db, Some(&meter)).unwrap();
        assert_eq!(meter.full_scans(), 2);
        assert_eq!(
            meter.tuples_fetched(),
            (db.relation("friend").unwrap().len() + db.relation("person").unwrap().len()) as u64
        );
    }

    #[test]
    fn boolean_cq_detects_emptiness() {
        let db = db();
        let yes = ConjunctiveQuery::new(
            "B",
            vec![],
            vec![Atom::new("person", vec![v("x"), v("n"), c("LA")])],
        );
        let no = ConjunctiveQuery::new(
            "B",
            vec![],
            vec![Atom::new("person", vec![v("x"), v("n"), c("Tokyo")])],
        );
        assert!(evaluate_boolean_cq(&yes, &db, None).unwrap());
        assert!(!evaluate_boolean_cq(&no, &db, None).unwrap());
    }

    #[test]
    fn repeated_variables_in_atom_enforce_equality() {
        let db = db();
        // Self-friendship: friend(x, x) — none in the data.
        let q = ConjunctiveQuery::new(
            "Self",
            vec!["x".into()],
            vec![Atom::new("friend", vec![v("x"), v("x")])],
        );
        assert!(evaluate_cq(&q, &db, None).unwrap().is_empty());
    }

    #[test]
    fn equality_atoms_filter_and_seed() {
        let db = db();
        let q = ConjunctiveQuery::new(
            "Q",
            vec!["n".into()],
            vec![Atom::new("person", vec![v("x"), v("n"), v("city")])],
        )
        .with_equality(v("x"), c(3));
        assert_eq!(evaluate_cq(&q, &db, None).unwrap(), vec![tuple!["cat"]]);

        // Contradictory constant equality yields the empty answer.
        let q = ConjunctiveQuery::new(
            "Q",
            vec!["n".into()],
            vec![Atom::new("person", vec![v("x"), v("n"), v("city")])],
        )
        .with_equality(c(1), c(2));
        assert!(evaluate_cq(&q, &db, None).unwrap().is_empty());

        // Variable-variable equality as a join filter.
        let q = ConjunctiveQuery::new(
            "Q",
            vec!["a".into(), "b".into()],
            vec![
                Atom::new("friend", vec![v("a"), v("b")]),
                Atom::new("friend", vec![v("b"), v("c")]),
            ],
        )
        .with_equality(v("a"), v("c"));
        // No 2-cycle exists in this friend relation, so a = c filters
        // everything out.
        assert!(evaluate_cq(&q, &db, None).unwrap().is_empty());
    }

    #[test]
    fn contradictory_seed_bindings_yield_empty() {
        let db = db();
        let q = ConjunctiveQuery::new(
            "Q",
            vec!["n".into()],
            vec![Atom::new("person", vec![v("x"), v("n"), v("city")])],
        )
        .with_equality(v("x"), c(1))
        .with_equality(v("x"), c(2));
        assert!(evaluate_cq(&q, &db, None).unwrap().is_empty());
    }

    #[test]
    fn ucq_unions_disjunct_answers() {
        let db = db();
        let d1 = ConjunctiveQuery::new(
            "nyc",
            vec!["n".into()],
            vec![Atom::new("person", vec![v("x"), v("n"), c("LA")])],
        );
        let d2 = ConjunctiveQuery::new(
            "a_rated",
            vec!["n".into()],
            vec![Atom::new("restr", vec![v("r"), v("n"), v("ci"), c("A")])],
        );
        let q = UnionQuery::new("U", vec![d1, d2]).unwrap();
        let mut answers = evaluate_ucq(&q, &db, None).unwrap();
        answers.sort();
        assert_eq!(answers, vec![tuple!["cat"], tuple!["pasta"], tuple!["sushi"]]);
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let db = db();
        let q = ConjunctiveQuery::new(
            "bad",
            vec!["z".into()],
            vec![Atom::new("friend", vec![v("a"), v("b")])],
        );
        assert!(evaluate_cq(&q, &db, None).is_err());
    }

    // When a 2-cycle does exist, the a = c equality keeps exactly it.
    #[test]
    fn two_cycle_equality_join() {
        let mut db = Database::empty(social_schema());
        db.insert_all("friend", vec![tuple![1, 2], tuple![2, 1], tuple![2, 3]])
            .unwrap();
        let q = ConjunctiveQuery::new(
            "Q",
            vec!["a".into(), "b".into()],
            vec![
                Atom::new("friend", vec![v("a"), v("b")]),
                Atom::new("friend", vec![v("b"), v("c")]),
            ],
        )
        .with_equality(v("a"), v("c"));
        let mut answers = evaluate_cq(&q, &db, None).unwrap();
        answers.sort();
        assert_eq!(answers, vec![tuple![1, 2], tuple![2, 1]]);
    }
}
