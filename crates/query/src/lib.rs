//! # `si-query` — query-language substrate
//!
//! Query languages used by the reproduction of *"On Scale Independence for
//! Querying Big Data"* (Fan, Geerts, Libkin, PODS 2014), Section 2:
//!
//! * [`ast`] — first-order logic (FO) formulas and named queries;
//! * [`cq`] / [`ucq`] — conjunctive queries and unions thereof, with tableau
//!   sizes `‖Q‖` and canonical databases;
//! * [`parser`] — a small textual syntax for FO and CQ;
//! * [`fo_eval`] — active-domain FO evaluation (used by the decision
//!   procedures of Section 3);
//! * [`binding`] — the flat-binding data plane: per-query [`VarTable`]s and
//!   copy-cheap [`Binding`] slabs shared by every evaluator;
//! * [`cq_eval`] — hash-join CQ/UCQ evaluation (the unbounded baseline of all
//!   experiments);
//! * [`hom`] — homomorphisms and CQ containment (Section 6 rewritings);
//! * [`algebra`] / [`algebra_eval`] — relational algebra with `∆R`/`∇R`
//!   references (Section 5) and its evaluator;
//! * [`translate`] — the SPJ translation from CQ to relational algebra.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod algebra_eval;
pub mod ast;
pub mod binding;
pub mod cq;
pub mod cq_eval;
pub mod error;
pub mod fo_eval;
pub mod hom;
pub mod parser;
pub mod translate;
pub mod ucq;

pub use algebra::{Condition, RaExpr};
pub use algebra_eval::{evaluate_ra, NamedRelation, RaEvaluator};
pub use ast::{Atom, FoQuery, Formula, Term, Var};
pub use binding::{Binding, VarId, VarTable};
pub use cq::ConjunctiveQuery;
pub use cq_eval::{
    evaluate_boolean_cq, evaluate_cq, evaluate_ucq, satisfying_bindings, BindingSet,
};
pub use error::QueryError;
pub use fo_eval::{evaluate_fo, holds, FoEvaluator};
pub use hom::{contained_in, equivalent, find_homomorphism, Homomorphism};
pub use parser::{parse_cq, parse_fo_query, parse_formula};
pub use translate::{atom_to_ra, cq_to_ra};
pub use ucq::UnionQuery;

/// Convenience result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, QueryError>;
