//! A small textual syntax for first-order and conjunctive queries.
//!
//! The syntax is used by examples and tests so that queries can be written
//! the way the paper writes them, without constructing ASTs by hand:
//!
//! ```text
//! Q1(p, name) := exists id. friend(p, id) & person(id, name, "NYC")
//! Q (x)       := forall y. (S(x, y) -> T(x, y))
//! Q3(rn)      :- friend(1, id), visit(id, rid), restr(rid, rn, "NYC", "A")
//! ```
//!
//! * `:=` introduces a first-order body ([`parse_fo_query`]);
//! * `:-` introduces a comma-separated conjunctive body ([`parse_cq`]);
//! * identifiers starting with a lowercase letter are variables, quoted
//!   strings and integers are constants, `&`, `|`, `!`, `->`, `exists`,
//!   `forall`, `=` and parentheses have the obvious meaning.

use crate::ast::{Atom, FoQuery, Formula, Term, Var};
use crate::cq::ConjunctiveQuery;
use crate::error::QueryError;
use si_data::Value;

/// Parses a named first-order query of the form `Name(x, y) := body`.
pub fn parse_fo_query(input: &str) -> Result<FoQuery, QueryError> {
    let mut parser = Parser::new(input);
    let (name, head) = parser.parse_head()?;
    parser.expect_symbol(":=")?;
    let body = parser.parse_formula()?;
    parser.expect_end()?;
    let q = FoQuery::new(name, head, body);
    q.validate()?;
    Ok(q)
}

/// Parses a conjunctive query in Datalog-ish notation
/// `Name(x, y) :- R(x, z), S(z, y), z = 3`.
pub fn parse_cq(input: &str) -> Result<ConjunctiveQuery, QueryError> {
    let mut parser = Parser::new(input);
    let (name, head) = parser.parse_head()?;
    parser.expect_symbol(":-")?;
    let mut query = ConjunctiveQuery::new(name, head, Vec::new());
    loop {
        match parser.parse_literal()? {
            CqLiteral::Atom(a) => query.atoms.push(a),
            CqLiteral::Equality(l, r) => query.equalities.push((l, r)),
        }
        if parser.try_symbol(",") {
            continue;
        }
        break;
    }
    parser.expect_end()?;
    Ok(query)
}

/// Parses a bare first-order formula (no head).
pub fn parse_formula(input: &str) -> Result<Formula, QueryError> {
    let mut parser = Parser::new(input);
    let f = parser.parse_formula()?;
    parser.expect_end()?;
    Ok(f)
}

enum CqLiteral {
    Atom(Atom),
    Equality(Term, Term),
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Int(i64),
    Symbol(String),
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    pos: usize,
    len: usize,
}

impl Parser {
    fn new(input: &str) -> Self {
        let tokens = tokenize(input);
        Parser {
            tokens,
            pos: 0,
            len: input.len(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|(o, _)| *o)
            .unwrap_or(self.len)
    }

    fn error(&self, message: impl Into<String>) -> QueryError {
        QueryError::Parse {
            position: self.offset(),
            message: message.into(),
        }
    }

    fn expect_end(&self) -> Result<(), QueryError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.error("unexpected trailing input"))
        }
    }

    fn try_symbol(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(s)) if s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), QueryError> {
        if self.try_symbol(sym) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{sym}`")))
        }
    }

    fn expect_ident(&mut self) -> Result<String, QueryError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error("expected an identifier"))
            }
        }
    }

    /// Parses `Name(v1, …, vk)`.
    fn parse_head(&mut self) -> Result<(String, Vec<Var>), QueryError> {
        let name = self.expect_ident()?;
        self.expect_symbol("(")?;
        let mut head = Vec::new();
        if !self.try_symbol(")") {
            loop {
                head.push(self.expect_ident()?);
                if self.try_symbol(",") {
                    continue;
                }
                self.expect_symbol(")")?;
                break;
            }
        }
        Ok((name, head))
    }

    /// Formula grammar (lowest to highest precedence):
    /// implication ← disjunction ← conjunction ← unary.
    fn parse_formula(&mut self) -> Result<Formula, QueryError> {
        self.parse_implication()
    }

    fn parse_implication(&mut self) -> Result<Formula, QueryError> {
        let left = self.parse_disjunction()?;
        if self.try_symbol("->") {
            let right = self.parse_implication()?;
            Ok(Formula::Implies(Box::new(left), Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn parse_disjunction(&mut self) -> Result<Formula, QueryError> {
        let mut left = self.parse_conjunction()?;
        while self.try_symbol("|") {
            let right = self.parse_conjunction()?;
            left = Formula::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_conjunction(&mut self) -> Result<Formula, QueryError> {
        let mut left = self.parse_unary()?;
        while self.try_symbol("&") {
            let right = self.parse_unary()?;
            left = Formula::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Formula, QueryError> {
        if self.try_symbol("!") {
            let inner = self.parse_unary()?;
            return Ok(Formula::Not(Box::new(inner)));
        }
        match self.peek() {
            Some(Token::Ident(kw)) if kw == "exists" || kw == "forall" => {
                let kw = kw.clone();
                self.pos += 1;
                let mut vars = vec![self.expect_ident()?];
                while self.try_symbol(",") {
                    vars.push(self.expect_ident()?);
                }
                self.expect_symbol(".")?;
                let body = self.parse_formula()?;
                Ok(if kw == "exists" {
                    Formula::Exists(vars, Box::new(body))
                } else {
                    Formula::Forall(vars, Box::new(body))
                })
            }
            Some(Token::Ident(kw)) if kw == "true" => {
                self.pos += 1;
                Ok(Formula::True)
            }
            Some(Token::Ident(kw)) if kw == "false" => {
                self.pos += 1;
                Ok(Formula::False)
            }
            Some(Token::Symbol(s)) if s == "(" => {
                self.pos += 1;
                let inner = self.parse_formula()?;
                self.expect_symbol(")")?;
                Ok(inner)
            }
            _ => self.parse_atomic(),
        }
    }

    /// Relation atom `R(t̅)` or equality `t1 = t2`.
    fn parse_atomic(&mut self) -> Result<Formula, QueryError> {
        // Try an atom first: ident followed by "(".
        if let Some(Token::Ident(_)) = self.peek() {
            if matches!(self.tokens.get(self.pos + 1), Some((_, Token::Symbol(s))) if s == "(") {
                let atom = self.parse_atom()?;
                return Ok(Formula::Atom(atom));
            }
        }
        let left = self.parse_term()?;
        self.expect_symbol("=")?;
        let right = self.parse_term()?;
        Ok(Formula::Eq(left, right))
    }

    fn parse_atom(&mut self) -> Result<Atom, QueryError> {
        let relation = self.expect_ident()?;
        self.expect_symbol("(")?;
        let mut terms = Vec::new();
        if !self.try_symbol(")") {
            loop {
                terms.push(self.parse_term()?);
                if self.try_symbol(",") {
                    continue;
                }
                self.expect_symbol(")")?;
                break;
            }
        }
        Ok(Atom::new(relation, terms))
    }

    fn parse_term(&mut self) -> Result<Term, QueryError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(Term::Var(s)),
            Some(Token::Str(s)) => Ok(Term::Const(Value::str(s))),
            Some(Token::Int(i)) => Ok(Term::Const(Value::Int(i))),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error("expected a term"))
            }
        }
    }

    fn parse_literal(&mut self) -> Result<CqLiteral, QueryError> {
        if let Some(Token::Ident(_)) = self.peek() {
            if matches!(self.tokens.get(self.pos + 1), Some((_, Token::Symbol(s))) if s == "(") {
                return Ok(CqLiteral::Atom(self.parse_atom()?));
            }
        }
        let left = self.parse_term()?;
        self.expect_symbol("=")?;
        let right = self.parse_term()?;
        Ok(CqLiteral::Equality(left, right))
    }
}

fn tokenize(input: &str) -> Vec<(usize, Token)> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        if c.is_ascii_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < bytes.len()
                && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
            {
                j += 1;
            }
            tokens.push((start, Token::Ident(input[i..j].to_owned())));
            i = j;
        } else if c.is_ascii_digit()
            || (c == '-' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit())
        {
            let mut j = i + 1;
            while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                j += 1;
            }
            let value: i64 = input[i..j].parse().unwrap_or(0);
            tokens.push((start, Token::Int(value)));
            i = j;
        } else if c == '"' {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] != b'"' {
                j += 1;
            }
            tokens.push((start, Token::Str(input[i + 1..j].to_owned())));
            i = (j + 1).min(bytes.len());
        } else {
            // Multi-character symbols first.
            let two = input.get(i..i + 2).unwrap_or("");
            if two == ":=" || two == ":-" || two == "->" {
                tokens.push((start, Token::Symbol(two.to_owned())));
                i += 2;
            } else {
                tokens.push((start, Token::Symbol(c.to_string())));
                i += 1;
            }
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{c, v};
    use crate::cq_eval::evaluate_cq;
    use crate::fo_eval::evaluate_fo;
    use si_data::schema::social_schema;
    use si_data::{tuple, Database};

    fn db() -> Database {
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "NYC"],
                tuple![3, "cat", "LA"],
            ],
        )
        .unwrap();
        db.insert_all("friend", vec![tuple![1, 2], tuple![1, 3]])
            .unwrap();
        db
    }

    #[test]
    fn parses_q1_as_fo() {
        let q =
            parse_fo_query(r#"Q1(p, name) := exists id. friend(p, id) & person(id, name, "NYC")"#)
                .unwrap();
        assert_eq!(q.name, "Q1");
        assert_eq!(q.head, vec!["p".to_string(), "name".to_string()]);
        let mut answers = evaluate_fo(&q, &db()).unwrap();
        answers.sort();
        assert_eq!(answers, vec![tuple![1, "bob"]]);
    }

    #[test]
    fn parses_q1_as_cq() {
        let q = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        assert_eq!(q.atoms.len(), 2);
        assert_eq!(q.atoms[1].terms[2], c("NYC"));
        let answers = evaluate_cq(&q, &db(), None).unwrap();
        assert_eq!(answers, vec![tuple![1, "bob"]]);
    }

    #[test]
    fn parses_equalities_and_integers() {
        let q = parse_cq("Q(n) :- person(x, n, ci), x = 3, ci = ci").unwrap();
        assert_eq!(q.equalities.len(), 2);
        assert_eq!(q.equalities[0], (v("x"), c(3)));
        let answers = evaluate_cq(&q, &db(), None).unwrap();
        assert_eq!(answers, vec![tuple!["cat"]]);
    }

    #[test]
    fn parses_negative_integers_and_empty_heads() {
        let q = parse_cq("B() :- friend(x, y), y = -2").unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.equalities[0].1, c(-2i64));
    }

    #[test]
    fn parses_universal_quantification_and_implication() {
        let q =
            parse_fo_query("Q(x) := friend(x, x) | forall y. (friend(x, y) -> person(y, y, y))")
                .unwrap();
        assert!(q.body.to_string().contains('∀'));
        assert!(q.body.to_string().contains('→'));
    }

    #[test]
    fn negation_binds_tighter_than_conjunction() {
        let f = parse_formula("! friend(x, y) & person(x, n, ci)").unwrap();
        match f {
            Formula::And(l, _) => assert!(matches!(*l, Formula::Not(_))),
            other => panic!("expected conjunction, got {other}"),
        }
    }

    #[test]
    fn precedence_implication_is_lowest() {
        let f = parse_formula("friend(x, y) & friend(y, z) -> friend(x, z)").unwrap();
        assert!(matches!(f, Formula::Implies(_, _)));
    }

    #[test]
    fn parses_boolean_constants_and_parentheses() {
        assert_eq!(parse_formula("true").unwrap(), Formula::True);
        assert_eq!(parse_formula("( false )").unwrap(), Formula::False);
    }

    #[test]
    fn quantifier_scope_extends_to_the_right() {
        let f = parse_formula("exists x, y. friend(x, y) & person(x, n, ci)").unwrap();
        match f {
            Formula::Exists(vars, body) => {
                assert_eq!(vars, vec!["x".to_string(), "y".to_string()]);
                assert!(matches!(*body, Formula::And(_, _)));
            }
            other => panic!("expected exists, got {other}"),
        }
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_fo_query("Q(x) := friend(x").unwrap_err();
        match err {
            QueryError::Parse { position, .. } => assert!(position >= 15),
            other => panic!("expected parse error, got {other}"),
        }
        assert!(parse_fo_query("Q(x) :- friend(x, y)").is_err());
        assert!(parse_cq("Q(x) := friend(x, y)").is_err());
        assert!(parse_formula("friend(x, y) extra").is_err());
        assert!(parse_formula("= 3").is_err());
    }

    #[test]
    fn unsafe_fo_queries_are_rejected_by_validation() {
        let err = parse_fo_query("Q(z) := friend(x, y)").unwrap_err();
        assert!(matches!(err, QueryError::UnboundVariable(_)));
    }

    #[test]
    fn nullary_atoms_parse() {
        let f = parse_formula("marker()").unwrap();
        match f {
            Formula::Atom(a) => {
                assert_eq!(a.relation, "marker");
                assert!(a.terms.is_empty());
            }
            other => panic!("unexpected {other}"),
        }
    }
}
