//! First-order logic query ASTs.
//!
//! The paper works with three languages (Section 2): conjunctive queries
//! (CQ), unions of conjunctive queries (UCQ), and full first-order logic
//! (FO).  This module defines the FO syntax tree; the dedicated CQ/UCQ
//! representations live in [`crate::cq`] and [`crate::ucq`] and convert into
//! [`Formula`] when FO machinery is needed.

use si_data::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A variable name.  Variables are compared by name.
pub type Var = String;

/// A term: either a variable or a constant of the universe.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable occurrence.
    Var(Var),
    /// A constant occurrence.
    Const(Value),
}

impl Term {
    /// Builds a variable term.
    pub fn var(name: impl Into<String>) -> Self {
        Term::Var(name.into())
    }

    /// Builds a constant term.
    pub fn constant(value: impl Into<Value>) -> Self {
        Term::Const(value.into())
    }

    /// Returns the variable name if this term is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// Returns the constant if this term is a constant.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }

    /// True iff the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A relation atom `R(t̅)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// Relation name.
    pub relation: String,
    /// Argument terms, positionally matching the relation's attributes.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom {
            relation: relation.into(),
            terms,
        }
    }

    /// The variables occurring in the atom, in first-occurrence order.
    pub fn variables(&self) -> Vec<Var> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if seen.insert(v.clone()) {
                    out.push(v.clone());
                }
            }
        }
        out
    }

    /// Applies a substitution of a single variable by a constant.
    pub fn substitute(&self, var: &str, value: &Value) -> Atom {
        Atom {
            relation: self.relation.clone(),
            terms: self
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) if v == var => Term::Const(*value),
                    other => other.clone(),
                })
                .collect(),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A first-order formula over a relational schema.
///
/// The constructors mirror the grammar of Section 2 of the paper: relation
/// atoms and equality atoms closed under `¬`, `∧`, `∨`, `→`, `∃` and `∀`.
/// `True`/`False` are included for convenience (they are definable but keep
/// derived formulas small).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// The true constant.
    True,
    /// The false constant.
    False,
    /// A relation atom `R(t̅)`.
    Atom(Atom),
    /// An equality atom `t1 = t2` (between variables and/or constants).
    Eq(Term, Term),
    /// Negation `¬φ`.
    Not(Box<Formula>),
    /// Conjunction `φ ∧ ψ`.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction `φ ∨ ψ`.
    Or(Box<Formula>, Box<Formula>),
    /// Implication `φ → ψ`.
    Implies(Box<Formula>, Box<Formula>),
    /// Existential quantification `∃x̅ φ`.
    Exists(Vec<Var>, Box<Formula>),
    /// Universal quantification `∀x̅ φ`.
    Forall(Vec<Var>, Box<Formula>),
}

impl Formula {
    /// Conjunction helper that simplifies `True` operands.
    pub fn and(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::True, g) => g,
            (f, Formula::True) => f,
            (f, g) => Formula::And(Box::new(f), Box::new(g)),
        }
    }

    /// Disjunction helper that simplifies `False` operands.
    pub fn or(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::False, g) => g,
            (f, Formula::False) => f,
            (f, g) => Formula::Or(Box::new(f), Box::new(g)),
        }
    }

    /// Negation helper collapsing double negation.
    pub fn negate(self) -> Formula {
        match self {
            Formula::Not(inner) => *inner,
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            f => Formula::Not(Box::new(f)),
        }
    }

    /// Existential quantification helper; quantifying over nothing is the
    /// identity.
    pub fn exists(vars: Vec<Var>, body: Formula) -> Formula {
        if vars.is_empty() {
            body
        } else {
            Formula::Exists(vars, Box::new(body))
        }
    }

    /// Universal quantification helper; quantifying over nothing is the
    /// identity.
    pub fn forall(vars: Vec<Var>, body: Formula) -> Formula {
        if vars.is_empty() {
            body
        } else {
            Formula::Forall(vars, Box::new(body))
        }
    }

    /// The free variables of the formula, sorted by name.
    pub fn free_variables(&self) -> BTreeSet<Var> {
        let mut free = BTreeSet::new();
        self.collect_free(&mut BTreeSet::new(), &mut free);
        free
    }

    fn collect_free(&self, bound: &mut BTreeSet<Var>, free: &mut BTreeSet<Var>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => {
                for t in &a.terms {
                    if let Term::Var(v) = t {
                        if !bound.contains(v) {
                            free.insert(v.clone());
                        }
                    }
                }
            }
            Formula::Eq(l, r) => {
                for t in [l, r] {
                    if let Term::Var(v) = t {
                        if !bound.contains(v) {
                            free.insert(v.clone());
                        }
                    }
                }
            }
            Formula::Not(f) => f.collect_free(bound, free),
            Formula::And(f, g) | Formula::Or(f, g) | Formula::Implies(f, g) => {
                f.collect_free(bound, free);
                g.collect_free(bound, free);
            }
            Formula::Exists(vars, f) | Formula::Forall(vars, f) => {
                let newly_bound: Vec<Var> = vars
                    .iter()
                    .filter(|v| bound.insert((*v).clone()))
                    .cloned()
                    .collect();
                f.collect_free(bound, free);
                for v in newly_bound {
                    bound.remove(&v);
                }
            }
        }
    }

    /// All relation names mentioned anywhere in the formula.
    pub fn relations(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_relations(&mut out);
        out
    }

    fn collect_relations(&self, out: &mut BTreeSet<String>) {
        match self {
            Formula::True | Formula::False | Formula::Eq(_, _) => {}
            Formula::Atom(a) => {
                out.insert(a.relation.clone());
            }
            Formula::Not(f) => f.collect_relations(out),
            Formula::And(f, g) | Formula::Or(f, g) | Formula::Implies(f, g) => {
                f.collect_relations(out);
                g.collect_relations(out);
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => f.collect_relations(out),
        }
    }

    /// All relation atoms occurring in the formula (with multiplicity).
    pub fn atoms(&self) -> Vec<&Atom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a Atom>) {
        match self {
            Formula::True | Formula::False | Formula::Eq(_, _) => {}
            Formula::Atom(a) => out.push(a),
            Formula::Not(f) => f.collect_atoms(out),
            Formula::And(f, g) | Formula::Or(f, g) | Formula::Implies(f, g) => {
                f.collect_atoms(out);
                g.collect_atoms(out);
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => f.collect_atoms(out),
        }
    }

    /// Substitutes a free variable by a constant, leaving bound occurrences
    /// untouched.
    pub fn substitute(&self, var: &str, value: &Value) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom(a) => Formula::Atom(a.substitute(var, value)),
            Formula::Eq(l, r) => {
                let sub = |t: &Term| match t {
                    Term::Var(v) if v == var => Term::Const(*value),
                    other => other.clone(),
                };
                Formula::Eq(sub(l), sub(r))
            }
            Formula::Not(f) => Formula::Not(Box::new(f.substitute(var, value))),
            Formula::And(f, g) => Formula::And(
                Box::new(f.substitute(var, value)),
                Box::new(g.substitute(var, value)),
            ),
            Formula::Or(f, g) => Formula::Or(
                Box::new(f.substitute(var, value)),
                Box::new(g.substitute(var, value)),
            ),
            Formula::Implies(f, g) => Formula::Implies(
                Box::new(f.substitute(var, value)),
                Box::new(g.substitute(var, value)),
            ),
            Formula::Exists(vars, f) => {
                if vars.iter().any(|v| v == var) {
                    Formula::Exists(vars.clone(), f.clone())
                } else {
                    Formula::Exists(vars.clone(), Box::new(f.substitute(var, value)))
                }
            }
            Formula::Forall(vars, f) => {
                if vars.iter().any(|v| v == var) {
                    Formula::Forall(vars.clone(), f.clone())
                } else {
                    Formula::Forall(vars.clone(), Box::new(f.substitute(var, value)))
                }
            }
        }
    }

    /// Structural size of the formula (number of AST nodes), used by the
    /// decision procedures to report query sizes.
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) | Formula::Eq(_, _) => 1,
            Formula::Not(f) => 1 + f.size(),
            Formula::And(f, g) | Formula::Or(f, g) | Formula::Implies(f, g) => {
                1 + f.size() + g.size()
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => 1 + f.size(),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::Eq(l, r) => write!(f, "{l} = {r}"),
            Formula::Not(inner) => write!(f, "¬({inner})"),
            Formula::And(l, r) => write!(f, "({l} ∧ {r})"),
            Formula::Or(l, r) => write!(f, "({l} ∨ {r})"),
            Formula::Implies(l, r) => write!(f, "({l} → {r})"),
            Formula::Exists(vars, inner) => write!(f, "∃{}.({inner})", vars.join(",")),
            Formula::Forall(vars, inner) => write!(f, "∀{}.({inner})", vars.join(",")),
        }
    }
}

/// A named first-order query: a formula together with an ordered tuple of
/// output (free) variables `x̅`, written `Q(x̅)` in the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoQuery {
    /// Query name (used for display only).
    pub name: String,
    /// Ordered output variables.  Empty for Boolean queries.
    pub head: Vec<Var>,
    /// The query body.
    pub body: Formula,
}

impl FoQuery {
    /// Creates a named query.
    pub fn new(name: impl Into<String>, head: Vec<Var>, body: Formula) -> Self {
        FoQuery {
            name: name.into(),
            head,
            body,
        }
    }

    /// Creates a Boolean (sentence) query.
    pub fn boolean(name: impl Into<String>, body: Formula) -> Self {
        FoQuery::new(name, Vec::new(), body)
    }

    /// True iff the query has no free output variables.
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// The arity of the query's answers.
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// Fixes the values of some head variables (the "given tuple a̅ of values
    /// for x̅" of the paper), producing a query over the remaining head
    /// variables.
    pub fn bind(&self, bindings: &[(Var, Value)]) -> FoQuery {
        let mut body = self.body.clone();
        for (v, val) in bindings {
            body = body.substitute(v, val);
        }
        let bound: BTreeSet<&Var> = bindings.iter().map(|(v, _)| v).collect();
        let head = self
            .head
            .iter()
            .filter(|v| !bound.contains(v))
            .cloned()
            .collect();
        FoQuery {
            name: format!("{}#bound", self.name),
            head,
            body,
        }
    }

    /// Sanity check: every head variable must be free in the body.
    pub fn validate(&self) -> Result<(), crate::error::QueryError> {
        let free = self.body.free_variables();
        for v in &self.head {
            if !free.contains(v) {
                return Err(crate::error::QueryError::UnboundVariable(v.clone()));
            }
        }
        Ok(())
    }
}

impl fmt::Display for FoQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({}) := {}",
            self.name,
            self.head.join(", "),
            self.body
        )
    }
}

/// Shorthand for building a variable term.
pub fn v(name: &str) -> Term {
    Term::var(name)
}

/// Shorthand for building a constant term.
pub fn c(value: impl Into<Value>) -> Term {
    Term::constant(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q1_body() -> Formula {
        // ∃id (friend(p, id) ∧ person(id, name, "NYC"))
        Formula::exists(
            vec!["id".into()],
            Formula::Atom(Atom::new("friend", vec![v("p"), v("id")])).and(Formula::Atom(
                Atom::new("person", vec![v("id"), v("name"), c("NYC")]),
            )),
        )
    }

    #[test]
    fn term_accessors() {
        assert_eq!(v("x").as_var(), Some("x"));
        assert!(v("x").is_var());
        assert_eq!(c(3).as_const(), Some(&Value::Int(3)));
        assert_eq!(c(3).as_var(), None);
        assert_eq!(v("x").as_const(), None);
    }

    #[test]
    fn atom_variables_deduplicate_in_order() {
        let a = Atom::new("r", vec![v("x"), c(1), v("y"), v("x")]);
        assert_eq!(a.variables(), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn atom_substitution_replaces_only_target() {
        let a = Atom::new("r", vec![v("x"), v("y")]);
        let s = a.substitute("x", &Value::int(7));
        assert_eq!(s.terms, vec![c(7), v("y")]);
    }

    #[test]
    fn free_variables_respect_quantifiers() {
        let f = q1_body();
        let free: Vec<String> = f.free_variables().into_iter().collect();
        assert_eq!(free, vec!["name".to_string(), "p".to_string()]);
    }

    #[test]
    fn free_variables_with_shadowing() {
        // ∃x (r(x) ∧ ∃x s(x)) — outer x free nowhere.
        let f = Formula::exists(
            vec!["x".into()],
            Formula::Atom(Atom::new("r", vec![v("x")])).and(Formula::exists(
                vec!["x".into()],
                Formula::Atom(Atom::new("s", vec![v("x")])),
            )),
        );
        assert!(f.free_variables().is_empty());
    }

    #[test]
    fn relations_and_atoms_are_collected() {
        let f = q1_body();
        let rels: Vec<String> = f.relations().into_iter().collect();
        assert_eq!(rels, vec!["friend".to_string(), "person".to_string()]);
        assert_eq!(f.atoms().len(), 2);
    }

    #[test]
    fn substitute_respects_binding() {
        let f = q1_body();
        let g = f.substitute("p", &Value::int(42));
        assert!(g.to_string().contains("friend(42, id)"));
        // Substituting a bound variable is a no-op.
        let h = f.substitute("id", &Value::int(1));
        assert_eq!(f, h);
    }

    #[test]
    fn smart_constructors_simplify() {
        assert_eq!(Formula::True.and(Formula::False), Formula::False);
        assert_eq!(Formula::False.or(Formula::True), Formula::True);
        assert_eq!(
            Formula::Not(Box::new(Formula::True)).negate(),
            Formula::True
        );
        assert_eq!(Formula::True.negate(), Formula::False);
        assert_eq!(Formula::exists(vec![], Formula::True), Formula::True);
        assert_eq!(Formula::forall(vec![], Formula::False), Formula::False);
    }

    #[test]
    fn formula_size_counts_nodes() {
        let f = q1_body();
        // exists + and + 2 atoms = 4
        assert_eq!(f.size(), 4);
        assert_eq!(Formula::True.size(), 1);
        assert_eq!(
            Formula::Implies(Box::new(Formula::True), Box::new(Formula::False)).size(),
            3
        );
        assert_eq!(Formula::forall(vec!["x".into()], Formula::True).size(), 2);
        assert_eq!(Formula::True.negate().size(), 1);
    }

    #[test]
    fn fo_query_bind_fixes_parameters() {
        let q = FoQuery::new("Q1", vec!["p".into(), "name".into()], q1_body());
        assert_eq!(q.arity(), 2);
        assert!(!q.is_boolean());
        q.validate().unwrap();
        let bound = q.bind(&[("p".into(), Value::int(7))]);
        assert_eq!(bound.head, vec!["name".to_string()]);
        assert!(bound.body.to_string().contains("friend(7, id)"));
    }

    #[test]
    fn fo_query_validation_catches_unbound_head() {
        let q = FoQuery::new(
            "Q",
            vec!["z".into()],
            Formula::Atom(Atom::new("r", vec![v("x")])),
        );
        assert_eq!(
            q.validate().unwrap_err(),
            crate::error::QueryError::UnboundVariable("z".into())
        );
    }

    #[test]
    fn boolean_query_constructor() {
        let q = FoQuery::boolean("B", Formula::True);
        assert!(q.is_boolean());
        assert_eq!(q.arity(), 0);
    }

    #[test]
    fn display_round_trips_structure() {
        let q = FoQuery::new("Q1", vec!["p".into(), "name".into()], q1_body());
        let s = q.to_string();
        assert!(s.contains("Q1(p, name)"));
        assert!(s.contains("∃id"));
        assert!(s.contains("person(id, name, \"NYC\")"));
    }
}
