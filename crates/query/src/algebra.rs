//! Relational algebra expressions.
//!
//! Section 5 of the paper develops scale independence for relational algebra
//! (the `RA_A` rules), including *increment* and *decrement* expressions
//! `E∆` and `E∇` used for incremental evaluation.  This module provides the
//! algebra AST with named attributes; evaluation lives in
//! [`crate::algebra_eval`] and the controllability rules in the core crate.
//!
//! Attribute handling follows the paper: selections carry conjunctions of
//! (in)equalities, joins are natural joins on shared attribute names, and
//! `attr(E)` is the output attribute set of an expression.

use crate::error::QueryError;
use si_data::{DatabaseSchema, Value};
use std::fmt;

/// An atomic selection condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Condition {
    /// `attribute = constant`
    EqConst(String, Value),
    /// `attribute1 = attribute2`
    EqAttr(String, String),
    /// `attribute ≠ constant`
    NeqConst(String, Value),
    /// `attribute1 ≠ attribute2`
    NeqAttr(String, String),
}

impl Condition {
    /// Attributes mentioned by the condition.
    pub fn attributes(&self) -> Vec<&str> {
        match self {
            Condition::EqConst(a, _) | Condition::NeqConst(a, _) => vec![a],
            Condition::EqAttr(a, b) | Condition::NeqAttr(a, b) => vec![a, b],
        }
    }

    /// True for conditions of the form `A = c`; these are the conditions the
    /// `RA_A` selection rule uses to discharge controlling attributes
    /// ("the set of attributes A for which θ implies that A = a").
    pub fn fixes_attribute(&self) -> Option<&str> {
        match self {
            Condition::EqConst(a, _) => Some(a),
            _ => None,
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::EqConst(a, v) => write!(f, "{a} = {v}"),
            Condition::EqAttr(a, b) => write!(f, "{a} = {b}"),
            Condition::NeqConst(a, v) => write!(f, "{a} ≠ {v}"),
            Condition::NeqAttr(a, b) => write!(f, "{a} ≠ {b}"),
        }
    }
}

/// A relational algebra expression with named attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaExpr {
    /// A base relation `R`.
    Relation(String),
    /// The insertion delta `∆R` of an update (Section 5).
    DeltaRelation(String),
    /// The deletion delta `∇R` of an update (Section 5).
    NablaRelation(String),
    /// Selection `σ_θ(E)` with `θ` a conjunction of conditions.
    Select(Box<RaExpr>, Vec<Condition>),
    /// Projection `π_Y(E)`.
    Project(Box<RaExpr>, Vec<String>),
    /// Renaming of attributes `ρ(E)`, given as `(old, new)` pairs.
    Rename(Box<RaExpr>, Vec<(String, String)>),
    /// Natural join `E1 ⋈ E2` on shared attribute names.
    Join(Box<RaExpr>, Box<RaExpr>),
    /// Union `E1 ∪ E2` (same attribute set required).
    Union(Box<RaExpr>, Box<RaExpr>),
    /// Difference `E1 − E2` (same attribute set required).
    Diff(Box<RaExpr>, Box<RaExpr>),
    /// Intersection `E1 ∩ E2` (same attribute set required).
    Intersect(Box<RaExpr>, Box<RaExpr>),
}

impl RaExpr {
    /// Base relation reference.
    pub fn relation(name: impl Into<String>) -> Self {
        RaExpr::Relation(name.into())
    }

    /// `∆R` reference.
    pub fn delta(name: impl Into<String>) -> Self {
        RaExpr::DeltaRelation(name.into())
    }

    /// `∇R` reference.
    pub fn nabla(name: impl Into<String>) -> Self {
        RaExpr::NablaRelation(name.into())
    }

    /// Selection builder.
    pub fn select(self, conditions: Vec<Condition>) -> Self {
        RaExpr::Select(Box::new(self), conditions)
    }

    /// Convenience builder for a single `attribute = constant` selection.
    pub fn select_eq(self, attribute: impl Into<String>, value: impl Into<Value>) -> Self {
        self.select(vec![Condition::EqConst(attribute.into(), value.into())])
    }

    /// Projection builder.
    pub fn project(self, attributes: &[&str]) -> Self {
        RaExpr::Project(
            Box::new(self),
            attributes.iter().map(|a| (*a).to_owned()).collect(),
        )
    }

    /// Rename builder with `(old, new)` pairs.
    pub fn rename(self, mapping: &[(&str, &str)]) -> Self {
        RaExpr::Rename(
            Box::new(self),
            mapping
                .iter()
                .map(|(o, n)| ((*o).to_owned(), (*n).to_owned()))
                .collect(),
        )
    }

    /// Natural join builder.
    pub fn join(self, other: RaExpr) -> Self {
        RaExpr::Join(Box::new(self), Box::new(other))
    }

    /// Union builder.
    pub fn union(self, other: RaExpr) -> Self {
        RaExpr::Union(Box::new(self), Box::new(other))
    }

    /// Difference builder.
    pub fn diff(self, other: RaExpr) -> Self {
        RaExpr::Diff(Box::new(self), Box::new(other))
    }

    /// Intersection builder.
    pub fn intersect(self, other: RaExpr) -> Self {
        RaExpr::Intersect(Box::new(self), Box::new(other))
    }

    /// The output attributes `attr(E)` of the expression under `schema`.
    ///
    /// Base, delta and nabla relations take their attributes from the schema
    /// of the underlying relation.  Binary set operations require both sides
    /// to produce the same attribute *set*; the left-hand order is used for
    /// the output.
    pub fn attributes(&self, schema: &DatabaseSchema) -> Result<Vec<String>, QueryError> {
        match self {
            RaExpr::Relation(name) | RaExpr::DeltaRelation(name) | RaExpr::NablaRelation(name) => {
                Ok(schema.relation(name)?.attributes().to_vec())
            }
            RaExpr::Select(input, conditions) => {
                let attrs = input.attributes(schema)?;
                for cond in conditions {
                    for a in cond.attributes() {
                        if !attrs.iter().any(|x| x == a) {
                            return Err(QueryError::UnknownAttribute(a.to_owned()));
                        }
                    }
                }
                Ok(attrs)
            }
            RaExpr::Project(input, attributes) => {
                let attrs = input.attributes(schema)?;
                for a in attributes {
                    if !attrs.contains(a) {
                        return Err(QueryError::UnknownAttribute(a.clone()));
                    }
                }
                Ok(attributes.clone())
            }
            RaExpr::Rename(input, mapping) => {
                let attrs = input.attributes(schema)?;
                for (old, _) in mapping {
                    if !attrs.contains(old) {
                        return Err(QueryError::UnknownAttribute(old.clone()));
                    }
                }
                let renamed: Vec<String> = attrs
                    .iter()
                    .map(|a| {
                        mapping
                            .iter()
                            .find(|(old, _)| old == a)
                            .map(|(_, new)| new.clone())
                            .unwrap_or_else(|| a.clone())
                    })
                    .collect();
                let mut dedup = renamed.clone();
                dedup.sort();
                dedup.dedup();
                if dedup.len() != renamed.len() {
                    return Err(QueryError::SchemaMismatch(
                        "renaming produced duplicate attribute names".into(),
                    ));
                }
                Ok(renamed)
            }
            RaExpr::Join(left, right) => {
                let l = left.attributes(schema)?;
                let r = right.attributes(schema)?;
                let mut out = l.clone();
                for a in r {
                    if !out.contains(&a) {
                        out.push(a);
                    }
                }
                Ok(out)
            }
            RaExpr::Union(left, right)
            | RaExpr::Diff(left, right)
            | RaExpr::Intersect(left, right) => {
                let l = left.attributes(schema)?;
                let r = right.attributes(schema)?;
                let mut ls = l.clone();
                let mut rs = r.clone();
                ls.sort();
                rs.sort();
                if ls != rs {
                    return Err(QueryError::SchemaMismatch(format!(
                        "set operation over incompatible attribute sets {l:?} and {r:?}"
                    )));
                }
                Ok(l)
            }
        }
    }

    /// All base relation names mentioned by the expression (delta and nabla
    /// references report the underlying relation name).
    pub fn base_relations(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_relations(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_relations(&self, out: &mut Vec<String>) {
        match self {
            RaExpr::Relation(n) | RaExpr::DeltaRelation(n) | RaExpr::NablaRelation(n) => {
                out.push(n.clone())
            }
            RaExpr::Select(e, _) | RaExpr::Project(e, _) | RaExpr::Rename(e, _) => {
                e.collect_relations(out)
            }
            RaExpr::Join(l, r)
            | RaExpr::Union(l, r)
            | RaExpr::Diff(l, r)
            | RaExpr::Intersect(l, r) => {
                l.collect_relations(out);
                r.collect_relations(out);
            }
        }
    }

    /// True iff the expression refers to any `∆R` or `∇R`.
    pub fn mentions_deltas(&self) -> bool {
        match self {
            RaExpr::Relation(_) => false,
            RaExpr::DeltaRelation(_) | RaExpr::NablaRelation(_) => true,
            RaExpr::Select(e, _) | RaExpr::Project(e, _) | RaExpr::Rename(e, _) => {
                e.mentions_deltas()
            }
            RaExpr::Join(l, r)
            | RaExpr::Union(l, r)
            | RaExpr::Diff(l, r)
            | RaExpr::Intersect(l, r) => l.mentions_deltas() || r.mentions_deltas(),
        }
    }

    /// Number of AST nodes, used for reporting expression sizes.
    pub fn size(&self) -> usize {
        match self {
            RaExpr::Relation(_) | RaExpr::DeltaRelation(_) | RaExpr::NablaRelation(_) => 1,
            RaExpr::Select(e, _) | RaExpr::Project(e, _) | RaExpr::Rename(e, _) => 1 + e.size(),
            RaExpr::Join(l, r)
            | RaExpr::Union(l, r)
            | RaExpr::Diff(l, r)
            | RaExpr::Intersect(l, r) => 1 + l.size() + r.size(),
        }
    }
}

impl fmt::Display for RaExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaExpr::Relation(n) => write!(f, "{n}"),
            RaExpr::DeltaRelation(n) => write!(f, "∆{n}"),
            RaExpr::NablaRelation(n) => write!(f, "∇{n}"),
            RaExpr::Select(e, conds) => {
                let conds: Vec<String> = conds.iter().map(|c| c.to_string()).collect();
                write!(f, "σ[{}]({e})", conds.join(" ∧ "))
            }
            RaExpr::Project(e, attrs) => write!(f, "π[{}]({e})", attrs.join(", ")),
            RaExpr::Rename(e, mapping) => {
                let pairs: Vec<String> = mapping.iter().map(|(o, n)| format!("{o}→{n}")).collect();
                write!(f, "ρ[{}]({e})", pairs.join(", "))
            }
            RaExpr::Join(l, r) => write!(f, "({l} ⋈ {r})"),
            RaExpr::Union(l, r) => write!(f, "({l} ∪ {r})"),
            RaExpr::Diff(l, r) => write!(f, "({l} − {r})"),
            RaExpr::Intersect(l, r) => write!(f, "({l} ∩ {r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_data::schema::social_schema;

    #[test]
    fn base_relation_attributes_come_from_schema() {
        let schema = social_schema();
        let e = RaExpr::relation("person");
        assert_eq!(e.attributes(&schema).unwrap(), vec!["id", "name", "city"]);
        let e = RaExpr::delta("visit");
        assert_eq!(e.attributes(&schema).unwrap(), vec!["id", "rid"]);
        let e = RaExpr::nabla("friend");
        assert_eq!(e.attributes(&schema).unwrap(), vec!["id1", "id2"]);
        assert!(RaExpr::relation("enemy").attributes(&schema).is_err());
    }

    #[test]
    fn select_checks_condition_attributes() {
        let schema = social_schema();
        let good = RaExpr::relation("person").select_eq("city", "NYC");
        assert_eq!(good.attributes(&schema).unwrap().len(), 3);
        let bad = RaExpr::relation("person").select_eq("zip", "10001");
        assert!(matches!(
            bad.attributes(&schema),
            Err(QueryError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn project_restricts_attributes() {
        let schema = social_schema();
        let e = RaExpr::relation("person").project(&["name"]);
        assert_eq!(e.attributes(&schema).unwrap(), vec!["name"]);
        let bad = RaExpr::relation("person").project(&["zip"]);
        assert!(bad.attributes(&schema).is_err());
    }

    #[test]
    fn rename_rewrites_and_rejects_collisions() {
        let schema = social_schema();
        let e = RaExpr::relation("friend").rename(&[("id2", "id")]);
        assert_eq!(e.attributes(&schema).unwrap(), vec!["id1", "id"]);
        let collision = RaExpr::relation("friend").rename(&[("id2", "id1")]);
        assert!(matches!(
            collision.attributes(&schema),
            Err(QueryError::SchemaMismatch(_))
        ));
        let unknown = RaExpr::relation("friend").rename(&[("zip", "id")]);
        assert!(matches!(
            unknown.attributes(&schema),
            Err(QueryError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn join_unions_attributes_without_duplicates() {
        let schema = social_schema();
        // friend ⋈ (person renamed so that id matches id2)
        let e =
            RaExpr::relation("friend").join(RaExpr::relation("person").rename(&[("id", "id2")]));
        assert_eq!(
            e.attributes(&schema).unwrap(),
            vec!["id1", "id2", "name", "city"]
        );
    }

    #[test]
    fn set_operations_require_equal_attribute_sets() {
        let schema = social_schema();
        let ok = RaExpr::relation("visit").union(RaExpr::delta("visit"));
        assert_eq!(ok.attributes(&schema).unwrap(), vec!["id", "rid"]);
        let bad = RaExpr::relation("visit").diff(RaExpr::relation("friend"));
        assert!(matches!(
            bad.attributes(&schema),
            Err(QueryError::SchemaMismatch(_))
        ));
        let ok = RaExpr::relation("friend").intersect(RaExpr::relation("friend"));
        assert_eq!(ok.attributes(&schema).unwrap(), vec!["id1", "id2"]);
    }

    #[test]
    fn base_relations_and_delta_detection() {
        let e = RaExpr::relation("friend")
            .join(RaExpr::delta("visit"))
            .diff(RaExpr::relation("friend").join(RaExpr::relation("visit")));
        assert_eq!(e.base_relations(), vec!["friend", "visit"]);
        assert!(e.mentions_deltas());
        assert!(!RaExpr::relation("friend").mentions_deltas());
    }

    #[test]
    fn size_and_display() {
        let e = RaExpr::relation("person")
            .select_eq("city", "NYC")
            .project(&["name"]);
        assert_eq!(e.size(), 3);
        let s = e.to_string();
        assert!(s.contains("π[name]"));
        assert!(s.contains("σ[city = \"NYC\"]"));
        assert!(RaExpr::delta("visit").to_string().contains("∆visit"));
        assert!(RaExpr::nabla("visit").to_string().contains("∇visit"));
        let s = RaExpr::relation("a").rename(&[("x", "y")]).to_string();
        assert!(s.contains("ρ[x→y]"));
    }

    #[test]
    fn condition_helpers() {
        let c = Condition::EqConst("city".into(), Value::str("NYC"));
        assert_eq!(c.fixes_attribute(), Some("city"));
        assert_eq!(c.attributes(), vec!["city"]);
        let c = Condition::EqAttr("a".into(), "b".into());
        assert_eq!(c.fixes_attribute(), None);
        assert_eq!(c.attributes(), vec!["a", "b"]);
        assert!(Condition::NeqConst("a".into(), Value::int(1))
            .to_string()
            .contains('≠'));
        assert_eq!(
            Condition::NeqAttr("a".into(), "b".into()).attributes(),
            vec!["a", "b"]
        );
    }
}
