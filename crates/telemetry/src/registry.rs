//! Metrics registry with Prometheus-style text exposition.
//!
//! [`TelemetryRegistry`] is the scrape surface of the observability plane:
//! it owns the named [`LatencyHistogram`]s, the [`SlowLog`], the
//! [`CommitLog`], and a list of *collector* closures registered by the layers
//! above it (the engine registers one that snapshots its counters and
//! gauges). [`TelemetryRegistry::render`] runs every collector and emits one
//! `name{label="v"} value` line per sample plus a quantile summary per
//! histogram — a single string an operator (or test) can scrape.

use std::fmt;
use std::sync::{Arc, RwLock};

use crate::hist::LatencyHistogram;
use crate::slowlog::SlowLog;
use crate::spans::CommitLog;

/// Whether a sample is a monotone counter or an instantaneous gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Monotonically non-decreasing total.
    Counter,
    /// Point-in-time level that can move both ways.
    Gauge,
}

/// A sample value: integer counters stay exact, ratios render as floats.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MetricValue {
    /// Exact integer value.
    Int(u64),
    /// Floating-point value (rendered with full precision).
    Float(f64),
}

impl From<u64> for MetricValue {
    fn from(v: u64) -> Self {
        MetricValue::Int(v)
    }
}

impl From<usize> for MetricValue {
    fn from(v: usize) -> Self {
        MetricValue::Int(v as u64)
    }
}

impl From<f64> for MetricValue {
    fn from(v: f64) -> Self {
        MetricValue::Float(v)
    }
}

impl fmt::Display for MetricValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricValue::Int(v) => write!(f, "{v}"),
            MetricValue::Float(v) => write!(f, "{v}"),
        }
    }
}

/// One exposition line: a named, optionally labelled value.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name (`[a-z_][a-z0-9_]*` by convention).
    pub name: String,
    /// Label pairs rendered inside `{…}` (empty = no braces).
    pub labels: Vec<(String, String)>,
    /// Counter or gauge.
    pub kind: Kind,
    /// The value.
    pub value: MetricValue,
}

impl Sample {
    /// Convenience constructor for an unlabelled counter.
    pub fn counter(name: impl Into<String>, value: impl Into<MetricValue>) -> Self {
        Sample {
            name: name.into(),
            labels: Vec::new(),
            kind: Kind::Counter,
            value: value.into(),
        }
    }

    /// Convenience constructor for an unlabelled gauge.
    pub fn gauge(name: impl Into<String>, value: impl Into<MetricValue>) -> Self {
        Sample {
            name: name.into(),
            labels: Vec::new(),
            kind: Kind::Gauge,
            value: value.into(),
        }
    }

    /// Adds a label pair (builder style).
    pub fn label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.push((key.into(), value.into()));
        self
    }

    /// Renders the sample as one exposition line (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = self.name.clone();
        if !self.labels.is_empty() {
            out.push('{');
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(k);
                out.push_str("=\"");
                // minimal escaping per the Prometheus text format
                for c in v.chars() {
                    match c {
                        '\\' => out.push_str("\\\\"),
                        '"' => out.push_str("\\\""),
                        '\n' => out.push_str("\\n"),
                        _ => out.push(c),
                    }
                }
                out.push('"');
            }
            out.push('}');
        }
        out.push(' ');
        out.push_str(&self.value.to_string());
        out
    }
}

/// A closure that contributes samples at scrape time.
pub type Collector = Box<dyn Fn(&mut Vec<Sample>) + Send + Sync>;

/// Construction knobs for [`TelemetryRegistry`].
#[derive(Clone, Copy, Debug)]
pub struct TelemetryConfig {
    /// Worst-K capacity of the slow-query log (per axis; 0 disables).
    pub slow_log_capacity: usize,
    /// Ring capacity of the commit-span log (0 disables).
    pub commit_log_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            slow_log_capacity: 32,
            commit_log_capacity: 64,
        }
    }
}

/// The scrape surface: histograms + collectors + slow log + commit log.
pub struct TelemetryRegistry {
    histograms: RwLock<Vec<(String, Arc<LatencyHistogram>)>>,
    collectors: RwLock<Vec<Collector>>,
    slow_log: SlowLog,
    commit_log: CommitLog,
}

impl TelemetryRegistry {
    /// Creates an empty registry.
    pub fn new(config: TelemetryConfig) -> Self {
        TelemetryRegistry {
            histograms: RwLock::new(Vec::new()),
            collectors: RwLock::new(Vec::new()),
            slow_log: SlowLog::new(config.slow_log_capacity),
            commit_log: CommitLog::new(config.commit_log_capacity),
        }
    }

    /// Returns the histogram registered under `name`, creating it on first
    /// use. The `Arc` can be cached by hot paths; recording never goes
    /// through the registry lock.
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        {
            let hists = self.histograms.read().expect("registry poisoned");
            if let Some((_, h)) = hists.iter().find(|(n, _)| n == name) {
                return Arc::clone(h);
            }
        }
        let mut hists = self.histograms.write().expect("registry poisoned");
        if let Some((_, h)) = hists.iter().find(|(n, _)| n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(LatencyHistogram::new());
        hists.push((name.to_string(), Arc::clone(&h)));
        h
    }

    /// Registers a collector closure run at every scrape.
    pub fn register_collector(&self, collector: impl Fn(&mut Vec<Sample>) + Send + Sync + 'static) {
        self.collectors
            .write()
            .expect("registry poisoned")
            .push(Box::new(collector));
    }

    /// The slow-query log.
    pub fn slow_log(&self) -> &SlowLog {
        &self.slow_log
    }

    /// The commit-span log.
    pub fn commit_log(&self) -> &CommitLog {
        &self.commit_log
    }

    /// Gathers all collector samples (without histogram summaries).
    pub fn samples(&self) -> Vec<Sample> {
        let mut out = Vec::new();
        for c in self.collectors.read().expect("registry poisoned").iter() {
            c(&mut out);
        }
        out
    }

    /// Renders the full exposition page.
    ///
    /// Collector samples come first (in registration order), then one
    /// summary block per histogram: `name{quantile="0.5|0.95|0.99"}`,
    /// `name_max`, `name_count`, `name_sum` — quantiles are bucket
    /// representatives (≤ 1/64 relative error), max is exact.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in self.samples() {
            out.push_str(&s.render());
            out.push('\n');
        }
        let hists = self.histograms.read().expect("registry poisoned");
        for (name, h) in hists.iter() {
            let s = h.snapshot();
            for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                out.push_str(
                    &Sample::gauge(name.clone(), s.quantile(q))
                        .label("quantile", label)
                        .render(),
                );
                out.push('\n');
            }
            out.push_str(&Sample::gauge(format!("{name}_max"), s.max()).render());
            out.push('\n');
            out.push_str(&Sample::counter(format!("{name}_count"), s.count()).render());
            out.push('\n');
            out.push_str(&Sample::counter(format!("{name}_sum"), s.sum()).render());
            out.push('\n');
        }
        out
    }
}

impl fmt::Debug for TelemetryRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hists = self.histograms.read().expect("registry poisoned");
        f.debug_struct("TelemetryRegistry")
            .field(
                "histograms",
                &hists.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
            )
            .field(
                "collectors",
                &self.collectors.read().expect("registry poisoned").len(),
            )
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_rendering_and_escaping() {
        let s = Sample::counter("si_requests", 7u64);
        assert_eq!(s.render(), "si_requests 7");
        let s = Sample::gauge("si_rows", 3u64).label("shard", "a\"b\\c");
        assert_eq!(s.render(), "si_rows{shard=\"a\\\"b\\\\c\"} 3");
        let s = Sample::gauge("ratio", 0.5f64);
        assert_eq!(s.render(), "ratio 0.5");
    }

    #[test]
    fn collectors_and_histograms_render() {
        let reg = TelemetryRegistry::new(TelemetryConfig::default());
        reg.register_collector(|out| out.push(Sample::counter("si_requests", 42u64)));
        let h = reg.histogram("si_serve_latency_ns");
        h.record(1000);
        h.record(2000);
        // get-or-create returns the same histogram
        assert_eq!(reg.histogram("si_serve_latency_ns").count(), 2);
        let page = reg.render();
        assert!(page.contains("si_requests 42"));
        assert!(page.contains("si_serve_latency_ns{quantile=\"0.5\"}"));
        assert!(page.contains("si_serve_latency_ns_count 2"));
        assert!(page.contains("si_serve_latency_ns_max 2000"));
    }
}
