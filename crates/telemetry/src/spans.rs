//! Commit-path and durability spans.
//!
//! A [`CommitSpan`] is the write-side counterpart of a request trace: one
//! record per commit pass, breaking the pass into delta gathering/merging,
//! WAL append (with the fsync isolated), snapshot application, checkpoint
//! publication, and per-shard materialized-answer maintenance. Spans land in
//! a bounded [`CommitLog`] ring so the recent write-path history is always
//! inspectable.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Timing and size breakdown of one commit pass.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommitSpan {
    /// Epoch produced by this commit.
    pub epoch: u64,
    /// Number of deltas gathered into the pass (1 for an unbatched commit).
    pub gather_size: u64,
    /// Net operations applied after folding.
    pub ops: u64,
    /// Folding the gathered deltas into one net-effect delta.
    pub merge_nanos: u64,
    /// WAL record append, including the fsync.
    pub wal_nanos: u64,
    /// The fsync portion alone (0 when running without durability).
    pub fsync_nanos: u64,
    /// Applying the folded delta to the snapshot store.
    pub apply_nanos: u64,
    /// Checkpoint serialization + publish (0 when no checkpoint was taken).
    pub checkpoint_nanos: u64,
    /// Materialized-answer maintenance, total across shards.
    pub maintenance_nanos: u64,
    /// Maintenance time per shard (empty when unsharded or nothing to
    /// maintain; index = shard id).
    pub shard_maintenance_nanos: Vec<u64>,
    /// End-to-end duration of the commit pass.
    pub total_nanos: u64,
}

impl CommitSpan {
    /// One-line human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "epoch={} gathered={} ops={} total={}µs merge={}µs wal={}µs fsync={}µs apply={}µs ckpt={}µs maint={}µs",
            self.epoch,
            self.gather_size,
            self.ops,
            self.total_nanos / 1000,
            self.merge_nanos / 1000,
            self.wal_nanos / 1000,
            self.fsync_nanos / 1000,
            self.apply_nanos / 1000,
            self.checkpoint_nanos / 1000,
            self.maintenance_nanos / 1000,
        );
        if !self.shard_maintenance_nanos.is_empty() {
            let per: Vec<String> = self
                .shard_maintenance_nanos
                .iter()
                .map(|n| format!("{}µs", n / 1000))
                .collect();
            out.push_str(&format!(" per_shard=[{}]", per.join(", ")));
        }
        out
    }
}

/// Bounded ring of the most recent [`CommitSpan`]s.
#[derive(Debug)]
pub struct CommitLog {
    capacity: usize,
    inner: Mutex<VecDeque<CommitSpan>>,
}

impl CommitLog {
    /// Creates a ring keeping the last `capacity` spans (0 disables it).
    pub fn new(capacity: usize) -> Self {
        CommitLog {
            capacity,
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Records a span, evicting the oldest when full.
    pub fn record(&self, span: CommitSpan) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.inner.lock().expect("commit log poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(span);
    }

    /// The retained spans, oldest first.
    pub fn recent(&self) -> Vec<CommitSpan> {
        self.inner
            .lock()
            .expect("commit log poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("commit log poisoned").len()
    }

    /// True when no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Human-readable rendering, oldest first.
    pub fn render(&self) -> String {
        let ring = self.inner.lock().expect("commit log poisoned");
        let mut out = String::from("# recent commits\n");
        for span in ring.iter() {
            out.push_str(&span.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let log = CommitLog::new(2);
        for epoch in 1..=3 {
            log.record(CommitSpan {
                epoch,
                ..CommitSpan::default()
            });
        }
        let epochs: Vec<u64> = log.recent().iter().map(|s| s.epoch).collect();
        assert_eq!(epochs, vec![2, 3]);
        assert!(log.render().contains("epoch=3"));
    }

    #[test]
    fn zero_capacity_disables() {
        let log = CommitLog::new(0);
        log.record(CommitSpan::default());
        assert!(log.is_empty());
    }
}
