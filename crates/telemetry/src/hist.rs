//! Lock-free log-linear latency histogram.
//!
//! [`LatencyHistogram`] buckets `u64` nanosecond values into a **log-linear**
//! grid: each power-of-two octave is split into 32 linear sub-buckets, so the
//! representative value of any bucket is within **±1/64 ≈ 1.6 %** of every
//! value the bucket can hold (values below 32 ns get exact unit buckets).
//! Recording is wait-free — one relaxed `fetch_add` on the bucket, one on the
//! running sum, and a `fetch_max`/`fetch_min` pair for the exact extrema — so
//! the histogram can sit on a serving hot path shared by many threads.
//!
//! [`HistogramSnapshot`] is a plain-data copy of the counts taken with relaxed
//! loads; snapshots merge associatively (`merge(a, b)` is indistinguishable
//! from having recorded the union of both value streams) and answer quantile
//! queries by cumulative walk. `quantile(1.0)` returns the exact recorded
//! maximum, not a bucket representative.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: each octave `[2^k, 2^{k+1})` is split into
/// `2^SUB_BITS = 32` linear buckets.
const SUB_BITS: u32 = 5;
/// Number of linear sub-buckets per octave (and of exact unit buckets).
const SUB: u64 = 1 << SUB_BITS;
/// Highest octave exponent: the last bucket range is `[2^41, 2^42)` ns,
/// i.e. the histogram resolves values up to ~73 minutes; larger values are
/// clamped into the top bucket (their exact magnitude survives in `max`).
const MAX_EXP: u32 = 41;
/// Largest value that lands in a real bucket (larger values clamp here).
const MAX_VALUE: u64 = (1 << (MAX_EXP + 1)) - 1;
/// Total bucket count: 32 exact unit buckets + 37 octaves x 32 sub-buckets.
const BUCKETS: usize = SUB as usize + ((MAX_EXP - SUB_BITS + 1) as usize) * SUB as usize;

/// Maps a raw nanosecond value to its bucket index.
fn index_of(raw: u64) -> usize {
    let v = raw.min(MAX_VALUE);
    if v < SUB {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let sub = ((v - (1u64 << exp)) >> (exp - SUB_BITS)) as usize;
    SUB as usize + ((exp - SUB_BITS) as usize * SUB as usize) + sub
}

/// Inclusive lower bound of the value range covered by bucket `idx`.
fn lower_bound(idx: usize) -> u64 {
    if idx < SUB as usize {
        return idx as u64;
    }
    let rel = idx - SUB as usize;
    let exp = (rel as u32 / SUB as u32) + SUB_BITS;
    let sub = (rel as u64) % SUB;
    (1u64 << exp) + (sub << (exp - SUB_BITS))
}

/// Representative value reported for bucket `idx` (its midpoint — the point
/// that minimises worst-case relative error over the bucket's range).
fn representative(idx: usize) -> u64 {
    if idx < SUB as usize {
        return idx as u64;
    }
    let rel = idx - SUB as usize;
    let exp = (rel as u32 / SUB as u32) + SUB_BITS;
    let width = 1u64 << (exp - SUB_BITS);
    lower_bound(idx) + width / 2
}

/// Worst-case relative error of the representative value for any value that
/// can land in bucket `idx` (0 for the exact unit buckets).
pub fn bucket_relative_error(idx: usize) -> f64 {
    if idx < SUB as usize {
        return 0.0;
    }
    let rel = idx - SUB as usize;
    let exp = (rel as u32 / SUB as u32) + SUB_BITS;
    let width = 1u64 << (exp - SUB_BITS);
    // representative is the midpoint; the farthest value in the bucket is
    // width/2 away, relative to at least the bucket's lower bound.
    (width as f64 / 2.0) / lower_bound(idx) as f64
}

/// A lock-free log-linear histogram of `u64` nanosecond values.
///
/// The module-level docs describe the bucket layout and error bounds.
/// All methods take `&self`; the histogram is safe to share across threads
/// behind an `Arc` and recording never blocks.
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram (~10 KB of atomics, allocated once).
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    /// Records one nanosecond value. Wait-free; relaxed atomics only.
    pub fn record(&self, nanos: u64) {
        self.buckets[index_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
        self.min.fetch_min(nanos, Ordering::Relaxed);
    }

    /// Records a [`Duration`] (saturating at the `u64` nanosecond ceiling).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Takes a plain-data copy of the current counts.
    ///
    /// The copy is made with relaxed per-bucket loads; concurrent recorders
    /// may land between loads, so the snapshot is a *weakly consistent* cut —
    /// every recorded value is either fully in or fully out once recorders
    /// quiesce.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

/// An immutable, mergeable copy of a [`LatencyHistogram`]'s counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
    min: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (identity element of [`merge`](Self::merge)).
    pub fn empty() -> Self {
        HistogramSnapshot {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    /// Number of values in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no values have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded nanosecond values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Arithmetic mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`.
    ///
    /// Returns the representative (midpoint) of the bucket holding the
    /// rank-`ceil(q·count)` value, clamped to the exact recorded extrema;
    /// `quantile(1.0)` is the exact maximum. The result is within the
    /// bucket's relative-error bound (≤ 1/64) of the true order statistic.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            return self.max;
        }
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return representative(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (`quantile(0.5)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds another snapshot into this one.
    ///
    /// The result is bucket-for-bucket identical to a snapshot of a histogram
    /// that recorded both value streams (merge is associative and
    /// commutative, with [`empty`](Self::empty) as identity).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_are_exact() {
        for v in 0..SUB {
            assert_eq!(lower_bound(index_of(v)), v);
            assert_eq!(representative(index_of(v)), v);
            assert_eq!(bucket_relative_error(index_of(v)), 0.0);
        }
    }

    #[test]
    fn buckets_partition_the_range() {
        // every bucket's lower bound maps back to that bucket, and bucket
        // lower bounds are strictly increasing.
        let mut prev = None;
        for idx in 0..BUCKETS {
            let lo = lower_bound(idx);
            assert_eq!(index_of(lo), idx, "lower bound of bucket {idx} maps back");
            if let Some(p) = prev {
                assert!(lo > p, "bucket bounds increase at {idx}");
            }
            prev = Some(lo);
        }
        // the value just below the next bucket's bound still maps here.
        for idx in 0..BUCKETS - 1 {
            assert_eq!(index_of(lower_bound(idx + 1) - 1), idx);
        }
        assert_eq!(index_of(MAX_VALUE), BUCKETS - 1);
        assert_eq!(index_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn relative_error_bound_holds_everywhere() {
        for idx in SUB as usize..BUCKETS {
            assert!(bucket_relative_error(idx) <= 1.0 / 64.0 + 1e-12);
        }
    }

    #[test]
    fn quantiles_of_known_sequence() {
        let h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs .. 1ms
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.max(), 1_000_000);
        assert_eq!(s.min(), 1000);
        assert_eq!(s.quantile(1.0), 1_000_000, "q=1.0 is the exact max");
        let p50 = s.p50() as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.02, "p50 = {p50}");
        let p99 = s.p99() as f64;
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.02, "p99 = {p99}");
    }

    #[test]
    fn merge_matches_union() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let u = LatencyHistogram::new();
        for v in [0u64, 1, 31, 32, 33, 1000, 123_456_789, MAX_VALUE, u64::MAX] {
            a.record(v);
            u.record(v);
            b.record(v.saturating_add(7));
            u.record(v.saturating_add(7));
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m, u.snapshot());
    }

    #[test]
    fn empty_snapshot_reports_zeros() {
        let s = LatencyHistogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.max(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }
}
