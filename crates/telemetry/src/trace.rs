//! Per-request traces: phase timings, plan provenance, and cost accounting.
//!
//! A [`RequestTrace`] is the engine's flight record for one served query:
//! which plan shape ran, where the time went phase by phase
//! (admit → plan-cache lookup → snapshot pin → fetch → finalize → reply),
//! how many tuples the planner *estimated* versus how many the executor
//! *actually* fetched, how shard probes split between routed and fanned, and
//! whether the answer came from the materialized cache or a shared batch
//! fetch. Traces are built inline on the serve path only for sampled
//! requests (see [`Sampler`]); slow outliers outside the sample still get a
//! post-hoc trace with `phases_recorded == false`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Serve-path phases, in hot-path order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Arity validation and shape canonicalization.
    Admit,
    /// Materialized-answer and prepared-plan cache lookup (including a
    /// cost-based planning pass on a cache miss).
    PlanLookup,
    /// Pinning the epoch-versioned snapshot.
    SnapshotPin,
    /// Bounded fetch: index probes and tuple retrieval.
    Fetch,
    /// Residual-join finalization of fetched rows into answers.
    Finalize,
    /// Response assembly, meter merge, and materialization offer.
    Reply,
}

impl Phase {
    /// All phases, in serve order.
    pub const ALL: [Phase; 6] = [
        Phase::Admit,
        Phase::PlanLookup,
        Phase::SnapshotPin,
        Phase::Fetch,
        Phase::Finalize,
        Phase::Reply,
    ];

    /// Stable lowercase name used in rendered traces and exposition labels.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Admit => "admit",
            Phase::PlanLookup => "plan_lookup",
            Phase::SnapshotPin => "snapshot_pin",
            Phase::Fetch => "fetch",
            Phase::Finalize => "finalize",
            Phase::Reply => "reply",
        }
    }
}

/// Per-phase nanosecond durations for one request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    nanos: [u64; Phase::ALL.len()],
}

impl PhaseTimings {
    /// Nanoseconds attributed to `phase`.
    pub fn get(&self, phase: Phase) -> u64 {
        self.nanos[phase as usize]
    }

    /// Adds `nanos` to `phase` (phases touched twice accumulate).
    pub fn add(&mut self, phase: Phase, nanos: u64) {
        self.nanos[phase as usize] += nanos;
    }

    /// Sum over all phases.
    pub fn total(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Iterates `(phase, nanos)` in serve order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, u64)> + '_ {
        Phase::ALL.iter().map(move |&p| (p, self.get(p)))
    }
}

/// A monotonic stopwatch that charges elapsed time to phases.
///
/// `mark(phase)` attributes everything since the previous mark (or
/// construction) to `phase`, so the resulting [`PhaseTimings`] partition the
/// wall-clock interval from construction to the final mark exactly — phase
/// sums reconcile with the total by design, not by luck.
#[derive(Debug)]
pub struct PhaseClock {
    started: Instant,
    last: Instant,
    timings: PhaseTimings,
}

impl Default for PhaseClock {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseClock {
    /// Starts the stopwatch.
    pub fn new() -> Self {
        let now = Instant::now();
        PhaseClock {
            started: now,
            last: now,
            timings: PhaseTimings::default(),
        }
    }

    /// Charges the time since the previous mark to `phase`.
    pub fn mark(&mut self, phase: Phase) {
        let now = Instant::now();
        let nanos = u64::try_from(now.duration_since(self.last).as_nanos()).unwrap_or(u64::MAX);
        self.timings.add(phase, nanos);
        self.last = now;
    }

    /// Directly charges externally measured `nanos` to `phase` without
    /// advancing the stopwatch (used when a lower layer reports its own
    /// fetch/finalize split).
    pub fn charge(&mut self, phase: Phase, nanos: u64) {
        self.timings.add(phase, nanos);
    }

    /// Re-bases the stopwatch to *now* without charging the elapsed gap to
    /// any phase (used after externally timed sections).
    pub fn skip(&mut self) {
        self.last = Instant::now();
    }

    /// Total wall-clock nanoseconds since construction.
    pub fn total_nanos(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The accumulated per-phase timings.
    pub fn timings(&self) -> PhaseTimings {
        self.timings
    }
}

/// Where a served answer came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// Executed a bounded plan; `cache_hit` is true when the prepared plan
    /// came from the plan cache rather than a fresh planning pass.
    Planned {
        /// True when the plan-cache lookup hit.
        cache_hit: bool,
    },
    /// Served from the incrementally maintained materialized answer cache
    /// (zero data-plane accesses).
    Materialized,
}

/// Batch/shared-fetch membership of a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchMembership {
    /// Number of requests coalesced into the group.
    pub group_size: u32,
    /// True when the group shared one executed fetch (identical shape and
    /// parameters) rather than merely sharing a snapshot pin.
    pub shared_fetch: bool,
}

/// The flight record of one served request.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    /// Canonical (alpha-renamed) shape key of the query.
    pub shape: String,
    /// Snapshot epoch the request was served at.
    pub epoch: u64,
    /// Per-phase durations; meaningful only when `phases_recorded`.
    pub phases: PhaseTimings,
    /// True when the trace was built inline (sampled); false for post-hoc
    /// slow-query traces, whose phase array is all zeros.
    pub phases_recorded: bool,
    /// End-to-end service time in nanoseconds (excludes queue wait).
    pub total_nanos: u64,
    /// Time spent queued in the worker pool before service (0 when executed
    /// directly on the caller's thread).
    pub queue_wait_nanos: u64,
    /// Where the answer came from.
    pub provenance: Provenance,
    /// The planner's tuple estimate for the chosen plan (0.0 for
    /// materialized hits, which fetch nothing).
    pub estimated_tuples: f64,
    /// Tuples actually fetched, exactly as metered on the response.
    pub fetched_tuples: u64,
    /// Answers returned.
    pub answers: u64,
    /// Shard probes answered by the single routed shard (0 when unsharded).
    pub routed_fetches: u64,
    /// Shard probes that had to fan out to every shard (0 when unsharded).
    pub fanned_fetches: u64,
    /// Batch membership, when the request was served as part of a group.
    pub batch: Option<BatchMembership>,
    /// True when service time exceeded the engine's slow threshold.
    pub slow: bool,
}

impl RequestTrace {
    /// Planner estimation error as the ratio `(actual + 1) / (estimated + 1)`
    /// — 1.0 is a perfect estimate, > 1 underestimation, < 1 overestimation.
    /// (The +1 smoothing keeps zero-fetch materialized hits finite.)
    pub fn estimation_ratio(&self) -> f64 {
        (self.fetched_tuples as f64 + 1.0) / (self.estimated_tuples + 1.0)
    }

    /// One-line human-readable rendering (used by the slow log).
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:>9}µs epoch={} shape={} tuples={} est={:.1} answers={} {}",
            self.total_nanos / 1000,
            self.epoch,
            self.shape,
            self.fetched_tuples,
            self.estimated_tuples,
            self.answers,
            match self.provenance {
                Provenance::Materialized => "materialized",
                Provenance::Planned { cache_hit: true } => "plan=cached",
                Provenance::Planned { cache_hit: false } => "plan=fresh",
            },
        );
        if self.routed_fetches + self.fanned_fetches > 0 {
            out.push_str(&format!(
                " routed={} fanned={}",
                self.routed_fetches, self.fanned_fetches
            ));
        }
        if let Some(b) = self.batch {
            out.push_str(&format!(
                " group={}{}",
                b.group_size,
                if b.shared_fetch { " shared" } else { "" }
            ));
        }
        if self.queue_wait_nanos > 0 {
            out.push_str(&format!(" qwait={}µs", self.queue_wait_nanos / 1000));
        }
        if self.phases_recorded {
            out.push_str(" |");
            for (p, ns) in self.phases.iter() {
                out.push_str(&format!(" {}={}µs", p.name(), ns / 1000));
            }
        }
        if self.slow {
            out.push_str(" SLOW");
        }
        out
    }
}

/// Deterministic 1-in-N request sampler with an always-off mode.
///
/// `every == 0` disables sampling entirely (`hit` is one relaxed load and a
/// branch); `every == 1` samples every request; `every == N` samples requests
/// `0, N, 2N, …` in admission order via a relaxed shared counter.  The rate
/// can be retuned at runtime with [`set_every`](Self::set_every) — turning
/// tracing on against a live system is the whole point of a sampling knob.
#[derive(Debug)]
pub struct Sampler {
    every: AtomicU64,
    counter: AtomicU64,
}

impl Sampler {
    /// Creates a sampler firing once every `every` requests (0 = never).
    pub fn new(every: u64) -> Self {
        Sampler {
            every: AtomicU64::new(every),
            counter: AtomicU64::new(0),
        }
    }

    /// True when sampling is enabled at all.
    pub fn enabled(&self) -> bool {
        self.every.load(Ordering::Relaxed) != 0
    }

    /// Retunes the sampling rate; takes effect for subsequent draws.
    pub fn set_every(&self, every: u64) {
        self.every.store(every, Ordering::Relaxed);
    }

    /// Draws the next sampling decision.
    pub fn hit(&self) -> bool {
        let every = self.every.load(Ordering::Relaxed);
        if every == 0 {
            return false;
        }
        self.counter
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_clock_partitions_wall_clock() {
        let mut clock = PhaseClock::new();
        clock.mark(Phase::Admit);
        std::thread::sleep(std::time::Duration::from_millis(2));
        clock.mark(Phase::Fetch);
        clock.mark(Phase::Reply);
        let t = clock.timings();
        assert!(t.get(Phase::Fetch) >= 2_000_000);
        assert_eq!(t.total(), t.iter().map(|(_, n)| n).sum::<u64>());
        // total since construction can only exceed the charged phases by the
        // (tiny) tail after the last mark.
        assert!(clock.total_nanos() >= t.total());
    }

    #[test]
    fn sampler_rates() {
        let off = Sampler::new(0);
        assert!(!off.enabled());
        assert!((0..10).all(|_| !off.hit()));

        let every = Sampler::new(1);
        assert!((0..10).all(|_| every.hit()));

        let third = Sampler::new(3);
        let hits = (0..9).filter(|_| third.hit()).count();
        assert_eq!(hits, 3);
    }

    #[test]
    fn estimation_ratio_is_smoothed() {
        let t = RequestTrace {
            shape: "q".into(),
            epoch: 0,
            phases: PhaseTimings::default(),
            phases_recorded: false,
            total_nanos: 10,
            queue_wait_nanos: 0,
            provenance: Provenance::Materialized,
            estimated_tuples: 0.0,
            fetched_tuples: 0,
            answers: 1,
            routed_fetches: 0,
            fanned_fetches: 0,
            batch: None,
            slow: false,
        };
        assert_eq!(t.estimation_ratio(), 1.0);
        assert!(t.render().contains("materialized"));
    }
}
