//! Bounded slow-query log: worst-K requests by latency and by tuples fetched.
//!
//! [`SlowLog`] keeps two independent worst-K rankings over the traces offered
//! to it — one ordered by service latency, one by tuples fetched — each
//! bounded at the configured capacity. Traces are stored behind `Arc`s so a
//! request that is extreme on both axes costs one allocation, not two.

use std::sync::{Arc, Mutex};

use crate::trace::RequestTrace;

/// A bounded worst-K log of slow / expensive request traces.
///
/// `offer` is called with every sampled-or-slow trace; the log keeps only the
/// worst `capacity` on each axis, so memory is bounded regardless of traffic.
/// A capacity of 0 disables the log entirely.
#[derive(Debug)]
pub struct SlowLog {
    capacity: usize,
    inner: Mutex<SlowInner>,
}

#[derive(Debug, Default)]
struct SlowInner {
    /// Kept sorted descending by `total_nanos`, truncated at capacity.
    by_latency: Vec<Arc<RequestTrace>>,
    /// Kept sorted descending by `fetched_tuples`, truncated at capacity.
    by_tuples: Vec<Arc<RequestTrace>>,
    /// Total traces ever offered (admitted or not).
    offered: u64,
}

impl SlowLog {
    /// Creates a log keeping the worst `capacity` traces on each axis.
    pub fn new(capacity: usize) -> Self {
        SlowLog {
            capacity,
            inner: Mutex::new(SlowInner::default()),
        }
    }

    /// Configured per-axis capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offers a trace; it is retained only if it ranks among the worst K on
    /// either axis.
    pub fn offer(&self, trace: Arc<RequestTrace>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("slow log poisoned");
        inner.offered += 1;
        let cap = self.capacity;
        insert_ranked(&mut inner.by_latency, Arc::clone(&trace), cap, |t| {
            t.total_nanos
        });
        insert_ranked(&mut inner.by_tuples, trace, cap, |t| t.fetched_tuples);
    }

    /// Worst traces by service latency, slowest first.
    pub fn worst_by_latency(&self) -> Vec<Arc<RequestTrace>> {
        self.inner
            .lock()
            .expect("slow log poisoned")
            .by_latency
            .clone()
    }

    /// Worst traces by tuples fetched, heaviest first.
    pub fn worst_by_tuples(&self) -> Vec<Arc<RequestTrace>> {
        self.inner
            .lock()
            .expect("slow log poisoned")
            .by_tuples
            .clone()
    }

    /// Total traces ever offered to the log.
    pub fn offered(&self) -> u64 {
        self.inner.lock().expect("slow log poisoned").offered
    }

    /// Number of traces currently retained on the latency axis.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("slow log poisoned")
            .by_latency
            .len()
    }

    /// True when nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Human-readable rendering of both rankings.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("slow log poisoned");
        let mut out = String::new();
        out.push_str(&format!(
            "# slow log: {} offered, worst {} kept per axis\n",
            inner.offered, self.capacity
        ));
        out.push_str("## worst by latency\n");
        for t in &inner.by_latency {
            out.push_str(&t.render());
            out.push('\n');
        }
        out.push_str("## worst by tuples fetched\n");
        for t in &inner.by_tuples {
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }
}

/// Inserts `trace` into `ranked` (sorted descending by `key`), keeping at
/// most `cap` entries. Ties keep earlier entries first (stable).
fn insert_ranked(
    ranked: &mut Vec<Arc<RequestTrace>>,
    trace: Arc<RequestTrace>,
    cap: usize,
    key: impl Fn(&RequestTrace) -> u64,
) {
    let k = key(&trace);
    if ranked.len() == cap {
        if let Some(last) = ranked.last() {
            if key(last) >= k {
                return; // does not rank
            }
        }
    }
    let pos = ranked.partition_point(|t| key(t) >= k);
    ranked.insert(pos, trace);
    ranked.truncate(cap);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{PhaseTimings, Provenance};

    fn trace(nanos: u64, tuples: u64) -> Arc<RequestTrace> {
        Arc::new(RequestTrace {
            shape: format!("q{nanos}"),
            epoch: 0,
            phases: PhaseTimings::default(),
            phases_recorded: false,
            total_nanos: nanos,
            queue_wait_nanos: 0,
            provenance: Provenance::Planned { cache_hit: false },
            estimated_tuples: 0.0,
            fetched_tuples: tuples,
            answers: 0,
            routed_fetches: 0,
            fanned_fetches: 0,
            batch: None,
            slow: true,
        })
    }

    #[test]
    fn keeps_worst_k_on_both_axes() {
        let log = SlowLog::new(3);
        // latency ascending, tuples descending: the two rankings differ.
        for i in 0..10u64 {
            log.offer(trace(i * 100, 1000 - i));
        }
        let lat: Vec<u64> = log
            .worst_by_latency()
            .iter()
            .map(|t| t.total_nanos)
            .collect();
        assert_eq!(lat, vec![900, 800, 700]);
        let tup: Vec<u64> = log
            .worst_by_tuples()
            .iter()
            .map(|t| t.fetched_tuples)
            .collect();
        assert_eq!(tup, vec![1000, 999, 998]);
        assert_eq!(log.offered(), 10);
        assert!(log.render().contains("worst by latency"));
    }

    #[test]
    fn zero_capacity_disables() {
        let log = SlowLog::new(0);
        log.offer(trace(1, 1));
        assert!(log.is_empty());
        assert_eq!(log.offered(), 0);
    }
}
