//! # `si-telemetry` — the observability plane
//!
//! Dependency-free building blocks for observing the scale-independent
//! serving stack. The crate knows nothing about queries, plans, or
//! snapshots — it provides the primitives the layers above thread through
//! their hot paths:
//!
//! * [`LatencyHistogram`] — a lock-free log-linear histogram (32 linear
//!   sub-buckets per power-of-two octave, ≤ 1/64 relative error from
//!   nanoseconds to ~73 minutes) with mergeable [`HistogramSnapshot`]s and
//!   exact max tracking. Used for serve latency, commit and maintenance
//!   latency, WAL fsync latency, and worker-pool queue wait.
//! * [`RequestTrace`] / [`PhaseClock`] — per-request flight records: phase
//!   timings that partition the service interval by construction, plan
//!   provenance, estimated-vs-actual tuples, routed-vs-fanned shard probes,
//!   and batch membership. [`Sampler`] decides which requests trace inline.
//! * [`SlowLog`] — a bounded worst-K log (by latency *and* by tuples
//!   fetched) of slow or sampled traces.
//! * [`CommitSpan`] / [`CommitLog`] — the write-side spans: gather size,
//!   merge/apply/fsync/checkpoint/maintenance breakdown per commit pass.
//! * [`TelemetryRegistry`] — the scrape surface: named histograms plus
//!   collector closures, rendered as Prometheus-style
//!   `name{label="v"} value` text by [`TelemetryRegistry::render`].
//!
//! Everything is hand-rolled on `std` atomics and mutexes — no external
//! dependencies — and recording paths never block: histograms are wait-free,
//! and the slow/commit logs take a short mutex only for requests that were
//! already sampled as interesting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod registry;
mod slowlog;
mod spans;
mod trace;

pub use hist::{bucket_relative_error, HistogramSnapshot, LatencyHistogram};
pub use registry::{Collector, Kind, MetricValue, Sample, TelemetryConfig, TelemetryRegistry};
pub use slowlog::SlowLog;
pub use spans::{CommitLog, CommitSpan};
pub use trace::{
    BatchMembership, Phase, PhaseClock, PhaseTimings, Provenance, RequestTrace, Sampler,
};

// The whole plane must be shareable across serving threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<LatencyHistogram>();
    assert_send_sync::<SlowLog>();
    assert_send_sync::<CommitLog>();
    assert_send_sync::<TelemetryRegistry>();
    assert_send_sync::<Sampler>();
};
