//! Quickstart: the paper's Q1 ("friends of p who live in NYC") end to end.
//!
//! Run with `cargo run -p si-examples --bin quickstart`.
//!
//! The walk-through mirrors Example 1.1(a) and Example 4.1 of the paper:
//! declare the access schema (5000-friend cap, person key), check that Q1 is
//! p-controlled, build a bounded plan, and compare its access cost against
//! naive evaluation as the database grows.

use si_access::{facebook_access_schema, AccessIndexedDatabase};
use si_core::prelude::*;
use si_data::schema::social_schema;
use si_data::Value;
use si_examples::format_cost;
use si_workload::{geometric_sizes, q1};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = social_schema();
    let access = facebook_access_schema(5000);
    let query = q1();

    println!("Query:         {query}");
    println!("Access schema: {access}");

    // 1. Controllability: Q1 is p-controlled, hence scale-independent once a
    //    concrete person p0 is supplied (Theorem 4.2).
    let analyzer = ControllabilityAnalyzer::new(&schema, &access);
    let fo = query.to_fo();
    println!(
        "Q1 is p-controlled:        {}",
        analyzer.is_controlled_by(&fo, &["p".into()])?
    );
    println!(
        "Q1 is name-controlled:     {}",
        analyzer.is_controlled_by(&fo, &["name".into()])?
    );

    // 2. A bounded plan with its data-independent worst-case cost.
    let planner = BoundedPlanner::new(&schema, &access);
    let plan = planner.plan(&query, &["p".into()])?;
    println!("\n{plan}\n");

    // 3. Scaling: the bounded plan's measured cost stays flat while naive
    //    evaluation grows with |D|.
    println!(
        "{:<10} {:>10}  access cost (bounded vs naive)",
        "persons", "|D|"
    );
    for point in geometric_sizes(500, 4, 4) {
        let adb = AccessIndexedDatabase::new(point.database, access.clone())?;
        let p0 = Value::int(7);
        let bounded = execute_bounded(&plan, &[p0], &adb)?;
        let naive = execute_naive(&query, &["p".into()], &[p0], adb.database())?;
        assert_eq!(
            {
                let mut a = bounded.answers.clone();
                a.sort();
                a
            },
            {
                let mut a = naive.answers.clone();
                a.sort();
                a
            },
            "bounded and naive evaluation must agree"
        );
        println!(
            "{:<10} {:>10}  {} | {}",
            point.persons,
            point.database_size,
            format_cost("bounded", &bounded.accesses),
            format_cost("naive", &naive.accesses),
        );
    }
    Ok(())
}
