//! Scale independence using views: rewriting Q2 over the materialised views
//! V1 and V2 (Example 1.1(c), Example 6.3 and Section 6 of the paper).
//!
//! Run with `cargo run -p si-examples --bin view_rewriting`.

use si_access::{facebook_access_schema, AccessIndexedDatabase};
use si_core::prelude::*;
use si_core::views::{
    base_part_size, decide_vqsi_cq, find_rewriting, is_scale_independent_using_views,
    unconstrained_variables,
};
use si_data::schema::social_schema;
use si_data::Value;
use si_examples::format_cost;
use si_workload::{paper_views, q2, SocialConfig, SocialGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = social_schema();
    let access = facebook_access_schema(5000);
    let query = q2();
    let views = paper_views();
    println!("Q2: {query}");
    for v in views.views() {
        println!("view {}: {}", v.name, v.query);
    }

    // 1. Rewriting search finds the paper's Q'2 (base part = friend only).
    let rewriting = find_rewriting(&query, &views)?.expect("Q2 is rewritable using V1, V2");
    println!("\nbest rewriting: {rewriting}");
    println!(
        "base-part size ‖Q'_b‖ = {}",
        base_part_size(&rewriting, &views)
    );
    println!(
        "unconstrained distinguished variables: {:?}",
        unconstrained_variables(&rewriting, &views)
    );

    // 2. Theorem 6.1 (VQSI) and Corollary 6.2 (with the access schema).
    let vqsi = decide_vqsi_cq(&query, &views, 1, 64)?;
    println!(
        "VQSI(Q2, M=1) with free p: {} ({} candidates examined)",
        vqsi.scale_independent, vqsi.candidates_examined
    );
    let cor62 = is_scale_independent_using_views(
        &query,
        &views,
        &schema,
        &access,
        &["p".into(), "rn".into()],
        64,
    )?;
    println!(
        "Corollary 6.2: Q2 is (p, rn)-scale-independent using V under A: {}",
        cor62.is_some()
    );

    // 3. Execute: materialise the views once, then answer Q2 for a given p by
    //    fetching only p's friend tuples from the base data.
    let db = SocialGenerator::new(SocialConfig {
        persons: 30_000,
        restaurants: 600,
        ..SocialConfig::default()
    })
    .generate();
    println!("\n|D| = {}", db.size());
    let materialized = views.materialize_views_only(&db)?;
    println!(
        "materialised view sizes: v1 = {}, v2 = {}",
        materialized.relation("v1")?.len(),
        materialized.relation("v2")?.len()
    );
    let adb = AccessIndexedDatabase::new(db, access)?;

    let p0 = Value::int(17);
    let with_views = execute_with_views(
        &rewriting,
        &views,
        &["p".into()],
        &[p0],
        &adb,
        &materialized,
    )?;
    let naive = execute_naive(&query, &["p".into()], &[p0], adb.database())?;
    let mut a = with_views.answers.clone();
    let mut b = naive.answers.clone();
    a.sort();
    b.sort();
    assert_eq!(
        a, b,
        "view-based evaluation must agree with direct evaluation"
    );

    println!("answers for p = 17: {}", with_views.answers.len());
    println!(
        "{}",
        format_cost("with views (base accesses)", &with_views.accesses)
    );
    println!("{}", format_cost("naive (no views)", &naive.accesses));
    Ok(())
}
