//! Personalised social search: Q2 and Q3 under plain and embedded access
//! schemas (Examples 1.1(b), 4.1 and 4.6 of the paper).
//!
//! Run with `cargo run -p si-examples --bin social_search`.

use si_access::{facebook_access_schema, AccessConstraint, AccessIndexedDatabase};
use si_core::prelude::*;
use si_core::{decide_qcntl, minimal_controlling_sets};
use si_data::schema::{social_schema, social_schema_dated};
use si_data::Value;
use si_examples::format_cost;
use si_workload::{example_46_access_schema, q2, q3, SocialConfig, SocialGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------------------- Q2 ---
    let schema = social_schema();
    let q2 = q2();
    println!("Q2: {q2}");

    // Under the plain Facebook access schema Q2 is NOT p-scale-independent:
    // nothing bounds the visits of a person.
    let plain = facebook_access_schema(5000);
    let planner = BoundedPlanner::new(&schema, &plain);
    match planner.plan(&q2, &["p".into()]) {
        Ok(_) => println!("unexpected: Q2 plannable under the plain schema"),
        Err(e) => println!("Q2 under plain access schema: {e}"),
    }

    // Adding an access constraint on visit(id) repairs this.
    let with_visit_index =
        facebook_access_schema(5000).with(AccessConstraint::new("visit", &["id"], 1_000, 1));
    let plan = BoundedPlanner::new(&schema, &with_visit_index).plan(&q2, &["p".into()])?;
    println!("\nWith (visit, {{id}}, 1000, 1) added:\n{plan}\n");

    let db = SocialGenerator::new(SocialConfig {
        persons: 20_000,
        restaurants: 500,
        ..SocialConfig::default()
    })
    .generate();
    println!("generated |D| = {}", db.size());
    let adb = AccessIndexedDatabase::new(db, with_visit_index)?;
    let p0 = Value::int(11);
    let bounded = execute_bounded(&plan, &[p0], &adb)?;
    let naive = execute_naive(&q2, &["p".into()], &[p0], adb.database())?;
    println!(
        "answers: {:?}",
        bounded
            .answers
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
    );
    println!("{}", format_cost("bounded Q2", &bounded.accesses));
    println!("{}", format_cost("naive   Q2", &naive.accesses));

    // ---------------------------------------------------------------- Q3 ---
    let dated_schema = social_schema_dated();
    let q3 = q3();
    println!("\nQ3: {q3}");

    // Under the plain schema Q3 is not (p, yy)-controlled (Example 4.1) …
    let plain_access = facebook_access_schema(5000);
    let analyzer = EmbeddedControllability::new(&dated_schema, &plain_access);
    println!(
        "Q3 (p,yy)-controlled under plain schema:    {}",
        analyzer.is_embedded_controlled(&q3, &["p".into(), "yy".into()])?
    );
    // … but becomes so with the Example 4.6 embedded constraints.
    let enriched = example_46_access_schema(5000);
    let analyzer = EmbeddedControllability::new(&dated_schema, &enriched);
    println!(
        "Q3 (p,yy)-controlled with 366-day bound+FD: {}",
        analyzer.is_embedded_controlled(&q3, &["p".into(), "yy".into()])?
    );

    // What is the smallest controlling set of Q1 under the plain schema?
    let q1_fo = si_workload::q1().to_fo();
    let out = decide_qcntl(&q1_fo, &schema, &facebook_access_schema(5000), 1)?;
    println!(
        "\nQCntl(Q1, K=1): controllable = {}, smallest controlling set = {:?}",
        out.controllable_within, out.smallest
    );
    println!(
        "all minimal controlling sets of Q1: {:?}",
        minimal_controlling_sets(&q1_fo, &schema, &facebook_access_schema(5000))?
    );

    // Execute Q3 boundedly on a dated instance.
    let dated_db = SocialGenerator::new(SocialConfig {
        persons: 10_000,
        restaurants: 300,
        dated_visits: true,
        ..SocialConfig::default()
    })
    .generate();
    let plan =
        BoundedPlanner::new(&dated_schema, &enriched).plan(&q3, &["p".into(), "yy".into()])?;
    let adb = AccessIndexedDatabase::new(dated_db, enriched)?;
    let result = execute_bounded(&plan, &[Value::int(11), Value::int(2013)], &adb)?;
    println!(
        "\nQ3(p=11, yy=2013): {} answers, {}",
        result.answers.len(),
        format_cost("bounded Q3", &result.accesses)
    );
    Ok(())
}
