//! Incremental scale independence: maintaining Q2 under a stream of visit
//! insertions (Example 1.1(b) and Section 5 of the paper).
//!
//! Run with `cargo run -p si-examples --bin incremental_feed`.

use si_access::{facebook_access_schema, AccessIndexedDatabase};
use si_core::incremental::maintenance_is_bounded;
use si_core::prelude::*;
use si_data::schema::social_schema;
use si_data::Value;
use si_examples::format_cost;
use si_workload::{q2, visit_insertions, SocialConfig, SocialGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = social_schema();
    let access = facebook_access_schema(5000);
    let query = q2();
    println!("Q2: {query}");

    // Corollary 5.3 / Proposition 5.5: insertions into `visit` can be folded
    // into Q2's answer by touching at most 3 base tuples per inserted tuple.
    println!(
        "maintenance under visit-insertions is bounded: {}",
        maintenance_is_bounded(&query, &schema, &access, "visit", &["p".into()])?
    );

    let db = SocialGenerator::new(SocialConfig {
        persons: 20_000,
        restaurants: 400,
        ..SocialConfig::default()
    })
    .generate();
    println!("initial |D| = {}", db.size());
    let mut adb = AccessIndexedDatabase::new(db, access)?;

    let p0 = Value::int(3);
    let mut evaluator =
        IncrementalBoundedEvaluator::new(query.clone(), vec!["p".into()], vec![p0], &adb)?;
    println!(
        "initial answers for p = 3: {}  ({})",
        evaluator.answers().len(),
        format_cost("initial computation", &evaluator.initial_cost())
    );

    println!(
        "\n{:<8} {:>10} {:>10} {:>14}",
        "batch", "|∆D|", "answers", "tuples fetched"
    );
    for batch in 0..5 {
        let delta = visit_insertions(adb.database(), 200, 100 + batch);
        let cost = evaluator.apply_update(&mut adb, &delta)?;
        println!(
            "{:<8} {:>10} {:>10} {:>14}",
            batch,
            delta.size(),
            evaluator.answers().len(),
            cost.tuples_fetched
        );
        // Sanity: the maintained answers equal recomputation from scratch.
        let recomputed = execute_naive(&query, &["p".into()], &[p0], adb.database())?;
        let mut a = evaluator.answers();
        let mut b = recomputed.answers;
        a.sort();
        b.sort();
        assert_eq!(a, b, "incremental maintenance must match recomputation");
    }
    println!("\nEvery batch touched O(|∆D|) base tuples — independent of |D|.");
    Ok(())
}
