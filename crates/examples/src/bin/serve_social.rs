//! `serve_social`: the si-engine serving layer end to end.
//!
//! Run with `cargo run -p si-examples --bin serve_social --release`.
//!
//! Builds a social instance, wraps it in an [`Engine`], and drives it from
//! four client threads issuing the paper's Q1/Q2 with skewed person
//! parameters while a writer thread keeps committing fresh `visit` facts.
//! Along the way it demonstrates the four pillars:
//!
//! * snapshot isolation — a snapshot pinned before the writer starts still
//!   answers from version 0 afterwards;
//! * prepared plans — the second occurrence of each query shape is a cache
//!   hit;
//! * parallel bounded execution — requests are served concurrently from the
//!   worker pool (and can shard internally via `shards_per_query`);
//! * admission control — a 9 999-tuple fetch budget rejects Q1 (worst case
//!   10 000) before it touches any data.

use si_data::Value;
use si_engine::{Engine, EngineConfig, EngineError, Request};
use si_workload::{
    serving_access_schema, social_requests, visit_insertions, SocialConfig, SocialGenerator,
};

const PERSONS: usize = 1_000;
const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 250;
const COMMITS: usize = 20;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generator = SocialGenerator::new(SocialConfig {
        persons: PERSONS,
        restaurants: 100,
        ..SocialConfig::default()
    });
    let db = generator.generate();
    println!(
        "instance: |D| = {} tuples over the social schema",
        db.size()
    );

    let engine = Engine::new(
        db,
        serving_access_schema(5000),
        EngineConfig {
            workers: CLIENTS,
            ..EngineConfig::default()
        },
    )?;

    // Pin version 0 before any write happens.
    let genesis = engine.snapshot();

    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        // The writer: fresh visit insertions, one batch at a time.
        let writer = &engine;
        scope.spawn(move || {
            for i in 0..COMMITS {
                // Build the batch against the *current* version so it is
                // guaranteed well-formed.
                let current = writer.snapshot().to_database();
                let delta = visit_insertions(&current, 50, 900 + i as u64);
                writer.commit(&delta).expect("commit");
            }
        });
        // The clients: skewed Q1/Q2 traffic through the worker pool.
        for client in 0..CLIENTS {
            let engine = &engine;
            scope.spawn(move || {
                let stream = social_requests(PERSONS, REQUESTS_PER_CLIENT, client as u64);
                let pending: Vec<_> = stream
                    .into_iter()
                    .map(|g| {
                        engine
                            .submit(Request::new(g.query, g.parameters, g.values))
                            .expect("submit")
                    })
                    .collect();
                for p in pending {
                    p.wait().expect("response");
                }
            });
        }
    });
    let elapsed = start.elapsed();

    let metrics = engine.metrics();
    let served = CLIENTS * REQUESTS_PER_CLIENT;
    println!(
        "served {} requests in {:.1?} (~{:.0} q/s) with {} workers",
        served,
        elapsed,
        served as f64 / elapsed.as_secs_f64(),
        CLIENTS
    );
    println!(
        "plan cache: {} hits / {} misses over {} lookups",
        metrics.cache_hits,
        metrics.cache_misses,
        metrics.cache_hits + metrics.cache_misses
    );
    println!(
        "writer: {} commits -> snapshot epoch {}, {} statistics refreshes",
        metrics.commits, metrics.snapshot_epoch, metrics.stats_refreshes
    );
    println!("access meter (all requests): {}", metrics.accesses);

    // Snapshot isolation: the pinned genesis version still answers as of
    // epoch 0, while the current version has all the committed visits.
    let hot = Request::new(si_workload::q1(), vec!["p".into()], vec![Value::int(0)]);
    let at_genesis = engine.execute_at(&genesis, &hot)?;
    let now = engine.execute(&hot)?;
    println!(
        "snapshot isolation: genesis pin answers at epoch {}, fresh execution at epoch {}",
        at_genesis.epoch, now.epoch
    );
    assert_eq!(at_genesis.epoch, 0);
    assert_eq!(now.epoch, metrics.snapshot_epoch);
    assert_eq!(at_genesis.answers, now.answers, "Q1 ignores visit inserts");

    // Admission control: a budget below Q1's static bound sheds the request.
    let strict = Engine::new(
        generator.generate(),
        serving_access_schema(5000),
        EngineConfig {
            fetch_budget: Some(9_999),
            ..EngineConfig::default()
        },
    )?;
    match strict.execute(&hot) {
        Err(EngineError::RejectedByBudget { budget, cheapest }) => println!(
            "admission control: Q1 rejected up front (worst case {cheapest} > budget {budget})"
        ),
        other => panic!("expected a budget rejection, got {other:?}"),
    }

    Ok(())
}
