//! Shared helpers for the runnable examples.
//!
//! Each binary in `src/bin/` is a self-contained walk-through of one part of
//! the scale-independence story; this library crate only hosts tiny shared
//! formatting helpers so that the binaries stay readable.

#![forbid(unsafe_code)]

use si_data::MeterSnapshot;

/// Formats an access-cost snapshot for display in the examples.
pub fn format_cost(label: &str, cost: &MeterSnapshot) -> String {
    format!(
        "{label:<28} fetched {:>8} tuples, {:>6} probes, {:>3} scans",
        cost.tuples_fetched, cost.index_probes, cost.full_scans
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_cost_mentions_all_counters() {
        let s = format_cost(
            "bounded",
            &MeterSnapshot {
                tuples_fetched: 12,
                index_probes: 3,
                full_scans: 0,
                time_units: 9,
            },
        );
        assert!(s.contains("bounded"));
        assert!(s.contains("12"));
        assert!(s.contains('3'));
    }
}
