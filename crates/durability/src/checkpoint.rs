//! Checkpoints: a full, framed snapshot of every shard's contents at one
//! epoch, published under a content-derived id.
//!
//! A checkpoint file holds exactly one frame (`len ‖ crc32 ‖ payload`)
//! whose payload is `magic ‖ version ‖ epoch ‖ backend ‖ shard pages`.
//! The FNV-1a hash of the payload is embedded in the file *name*
//! (`ckpt-<epoch>-<id>.ckpt`), so recovery validates a candidate twice
//! over: the frame CRC catches byte damage, the name/content id catches a
//! file whose content is not what it was published as (e.g. a partially
//! overwritten or mis-renamed file).  Checkpoints are written to a `.tmp`
//! name, synced, then renamed — a crash mid-write leaves only junk that
//! recovery discards, never a plausible-but-wrong checkpoint.

use crate::{DurabilityError, Result};
use si_data::codec::{self, CodecError, Reader, RelationPage};
use si_data::{
    Database, DatabaseSchema, DatabaseSnapshot, PartitionMap, RelationSchema, ShardedSnapshotView,
};

const MAGIC: &[u8; 4] = b"SICP";
const VERSION: u8 = 1;
const BACKEND_SINGLE: u8 = 0;
const BACKEND_SHARDED: u8 = 1;

/// Which store flavour a checkpoint captured — recovery rebuilds the same
/// flavour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointBackend {
    /// A plain [`si_data::SnapshotStore`] (one shard).
    Single,
    /// A [`si_data::ShardedSnapshotStore`] under the given partition map
    /// (shard count = the checkpoint's page-list count).
    Sharded {
        /// The partition-column declaration the store was sharded under.
        partition: PartitionMap,
    },
}

/// A decoded checkpoint: the complete durable state at `epoch`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The epoch the snapshot was taken at.
    pub epoch: u64,
    /// Store flavour (and partition map, if sharded).
    pub backend: CheckpointBackend,
    /// Relation pages per shard, in shard order.  Single-store checkpoints
    /// have exactly one entry.
    pub shards: Vec<Vec<RelationPage>>,
}

fn pages_of(snapshot: &DatabaseSnapshot) -> Vec<RelationPage> {
    snapshot
        .relations()
        .map(RelationPage::from_relation)
        .collect()
}

impl Checkpoint {
    /// Captures a single-store snapshot.
    pub fn single(snapshot: &DatabaseSnapshot) -> Self {
        Checkpoint {
            epoch: snapshot.epoch(),
            backend: CheckpointBackend::Single,
            shards: vec![pages_of(snapshot)],
        }
    }

    /// Captures a coherent sharded view (per-shard pages, partition map).
    pub fn sharded(view: &ShardedSnapshotView) -> Self {
        Checkpoint {
            epoch: view.epoch(),
            backend: CheckpointBackend::Sharded {
                partition: view.partition_map().clone(),
            },
            shards: view.shards().iter().map(|s| pages_of(s)).collect(),
        }
    }

    /// Number of shards captured.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Serialises the checkpoint payload (unframed).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        codec::put_u64(&mut out, self.epoch);
        match &self.backend {
            CheckpointBackend::Single => out.push(BACKEND_SINGLE),
            CheckpointBackend::Sharded { partition } => {
                out.push(BACKEND_SHARDED);
                codec::put_u32(&mut out, partition.iter().count() as u32);
                for (relation, attribute) in partition.iter() {
                    codec::put_str(&mut out, relation);
                    codec::put_str(&mut out, attribute);
                }
            }
        }
        codec::put_u32(&mut out, self.shards.len() as u32);
        for pages in &self.shards {
            codec::put_u32(&mut out, pages.len() as u32);
            for page in pages {
                page.encode(&mut out);
            }
        }
        out
    }

    /// Decodes a checkpoint payload (the contents of one valid frame).
    pub fn decode(bytes: &[u8]) -> std::result::Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let mut magic = [0u8; 4];
        for m in &mut magic {
            *m = r.u8()?;
        }
        if &magic != MAGIC {
            return Err(CodecError::Invalid("bad checkpoint magic".into()));
        }
        let version = r.u8()?;
        if version != VERSION {
            return Err(CodecError::Invalid(format!(
                "unsupported checkpoint version {version}"
            )));
        }
        let epoch = r.u64()?;
        let backend = match r.u8()? {
            BACKEND_SINGLE => CheckpointBackend::Single,
            BACKEND_SHARDED => {
                let n = r.count()?;
                let mut partition = PartitionMap::new();
                for _ in 0..n {
                    let relation = r.str()?.to_owned();
                    let attribute = r.str()?.to_owned();
                    partition.set(relation, attribute);
                }
                CheckpointBackend::Sharded { partition }
            }
            b => return Err(CodecError::Invalid(format!("bad backend tag {b}"))),
        };
        let shard_count = r.count()?;
        if shard_count == 0 {
            return Err(CodecError::Invalid("checkpoint with zero shards".into()));
        }
        let mut shards = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let pages = r.count()?;
            let mut shard = Vec::with_capacity(pages);
            for _ in 0..pages {
                shard.push(RelationPage::decode(&mut r)?);
            }
            shards.push(shard);
        }
        r.expect_end()?;
        Ok(Checkpoint {
            epoch,
            backend,
            shards,
        })
    }

    /// Rebuilds one owned [`Database`] per shard from the pages (declared
    /// indexes re-declared, still built lazily; statistics and materialized
    /// answers are *not* part of a checkpoint — they are derived state,
    /// recomputed from scratch after recovery).
    pub fn databases(&self) -> Result<Vec<Database>> {
        self.shards
            .iter()
            .map(|pages| {
                let schemas = pages
                    .iter()
                    .map(|page| {
                        let attrs: Vec<&str> = page.attributes.iter().map(String::as_str).collect();
                        RelationSchema::new(&page.name, &attrs)
                    })
                    .collect();
                let schema =
                    DatabaseSchema::from_relations(schemas).map_err(DurabilityError::Data)?;
                let mut db = Database::empty(schema);
                for page in pages {
                    for attrs in &page.declared {
                        db.declare_index(&page.name, attrs)
                            .map_err(DurabilityError::Data)?;
                    }
                    db.insert_all(&page.name, page.tuples.iter().cloned())
                        .map_err(DurabilityError::Data)?;
                }
                Ok(db)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_data::schema::social_schema;
    use si_data::{tuple, ShardedSnapshotStore, SnapshotStore};

    fn base() -> Database {
        let mut db = Database::empty(social_schema());
        for i in 0..20i64 {
            db.insert("person", tuple![i, format!("p{i}"), "NYC"])
                .unwrap();
            db.insert("friend", tuple![i, (i + 1) % 20]).unwrap();
        }
        db.declare_index("friend", &["id1".into()]).unwrap();
        db
    }

    #[test]
    fn single_checkpoints_round_trip_and_rebuild() {
        let store = SnapshotStore::restore(base(), 9);
        let ckpt = Checkpoint::single(&store.pin());
        assert_eq!(ckpt.epoch, 9);
        assert_eq!(ckpt.shard_count(), 1);

        let bytes = ckpt.encode();
        let decoded = Checkpoint::decode(&bytes).unwrap();
        assert_eq!(decoded, ckpt);

        let dbs = decoded.databases().unwrap();
        assert_eq!(dbs.len(), 1);
        let db = &dbs[0];
        let orig = base();
        assert!(db.contains_database(&orig) && orig.contains_database(db));
        // Declared indexes came back (lazily).
        assert!(db.relation("friend").unwrap().has_index(&["id1".into()]));
        assert!(!db
            .relation("friend")
            .unwrap()
            .has_built_index(&["id1".into()]));
    }

    #[test]
    fn sharded_checkpoints_carry_the_partition_map() {
        let partition = PartitionMap::new()
            .with("person", "id")
            .with("friend", "id1");
        let store = ShardedSnapshotStore::new(base(), partition.clone(), 3).unwrap();
        let ckpt = Checkpoint::sharded(&store.pin());
        assert_eq!(ckpt.shard_count(), 3);
        let decoded = Checkpoint::decode(&ckpt.encode()).unwrap();
        assert_eq!(decoded, ckpt);
        match &decoded.backend {
            CheckpointBackend::Sharded { partition: p } => assert_eq!(*p, partition),
            other => panic!("wrong backend: {other:?}"),
        }
        // Per-shard databases merge back to the original instance.
        let dbs = decoded.databases().unwrap();
        let mut merged = Database::empty(social_schema());
        for db in &dbs {
            for rel in db.relations() {
                for t in rel.iter() {
                    merged.insert(rel.name(), t.clone()).unwrap();
                }
            }
        }
        let orig = base();
        assert!(merged.contains_database(&orig) && orig.contains_database(&merged));
    }

    #[test]
    fn decode_rejects_damage() {
        let store = SnapshotStore::new(base());
        let bytes = Checkpoint::single(&store.pin()).encode();
        assert!(Checkpoint::decode(&bytes[..bytes.len() - 3]).is_err());
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(Checkpoint::decode(&wrong_magic).is_err());
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 9;
        assert!(Checkpoint::decode(&wrong_version).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(Checkpoint::decode(&trailing).is_err());
    }
}
