//! # `si-durability` — the durability plane
//!
//! Everything above this crate keeps `D` in memory; this crate makes
//! commits survive a process death.  Three pieces:
//!
//! * [`storage`] — the [`Storage`] abstraction (append-only files with
//!   explicit sync): [`DirStorage`] over real files, and the
//!   fault-injecting [`SimDisk`] that the crash-recovery harness uses to
//!   kill the "process" after any byte and deterministically reconstruct
//!   the disk at every kill point.
//! * [`checkpoint`] — [`Checkpoint`]: a framed, content-addressed snapshot
//!   of every shard's relation pages at one epoch, the base recovery
//!   starts from.
//! * [`wal`] — [`Wal`]: the append-only epoch-stamped commit log
//!   (fsync-on-commit; group commits arrive pre-merged and pay one
//!   fsync), checkpoint-triggered log truncation, and [`Wal::recover`],
//!   which rebuilds the **maximal durable prefix** of the pre-crash
//!   history: newest valid checkpoint + contiguous log tail, torn or
//!   corrupt tail dropped and repaired in place.
//!
//! Record framing and all value/tuple/delta/page byte formats come from
//! [`si_data::codec`] (`len ‖ crc32 ‖ payload`, symbols as resolved
//! strings), which doubles as the wire codec for the planned replication
//! transport.
//!
//! The engine integration lives in `si-engine`
//! (`EngineConfig::durability`, `Engine::recover`): commits log before
//! they apply, and recovery rebuilds an engine whose store is epoch-,
//! statistics- and answer-identical to the durable prefix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod storage;
pub mod wal;

pub use checkpoint::{Checkpoint, CheckpointBackend};
pub use storage::{DirStorage, DiskOp, SimDisk, Storage};
pub use wal::{Recovered, Wal, WalTimings};

use si_data::codec::CodecError;
use si_data::DataError;
use std::fmt;

/// Errors of the durability plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurabilityError {
    /// An underlying storage operation failed.
    Io(String),
    /// The simulated disk's kill switch fired — the "process" is dead
    /// until the harness revives it ([`SimDisk::revive`]).
    Killed,
    /// Bytes on disk failed to decode.
    Codec(CodecError),
    /// Replayed state failed a data-plane invariant.
    Data(DataError),
    /// An API-contract violation (non-contiguous epochs, reusing a live
    /// log directory, ...).
    Invariant(String),
    /// Recovery found no valid checkpoint to start from — nothing was
    /// ever durable.
    NoCheckpoint,
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io(msg) => write!(f, "storage error: {msg}"),
            DurabilityError::Killed => write!(f, "storage killed by fault injection"),
            DurabilityError::Codec(e) => write!(f, "codec error: {e}"),
            DurabilityError::Data(e) => write!(f, "data error during replay: {e}"),
            DurabilityError::Invariant(msg) => write!(f, "durability invariant violated: {msg}"),
            DurabilityError::NoCheckpoint => write!(f, "no valid checkpoint found"),
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<CodecError> for DurabilityError {
    fn from(e: CodecError) -> Self {
        DurabilityError::Codec(e)
    }
}

impl From<DataError> for DurabilityError {
    fn from(e: DataError) -> Self {
        DurabilityError::Data(e)
    }
}

/// Result alias for durability operations.
pub type Result<T> = std::result::Result<T, DurabilityError>;

/// Policy knobs for a durable engine, carried in `EngineConfig`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Write a checkpoint (and truncate the log) after this many logged
    /// commit passes; `0` disables automatic checkpoints (manual
    /// `Engine::checkpoint` only).
    pub checkpoint_every: u64,
    /// How many of the newest checkpoints to retain (at least 1).
    pub keep_checkpoints: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            checkpoint_every: 0,
            keep_checkpoints: 2,
        }
    }
}

/// Compile-time thread-safety audit (see `si-data` for the rationale).
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<SimDisk>();
    assert_send_sync::<DirStorage>();
    assert_send_sync::<Checkpoint>();
    assert_send_sync::<DurabilityError>();
    assert_send_sync::<DurabilityConfig>();
    // Wal is Send (it moves into the engine's commit mutex); it is not
    // shared by `&` across threads.
    const fn assert_send<T: Send>() {}
    assert_send::<Wal>();
    assert_send::<Recovered>();
};
