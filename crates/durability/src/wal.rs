//! The epoch-stamped commit WAL and the recovery path.
//!
//! ## Log layout
//!
//! The log lives in segment files `wal-<start-epoch:016x>.log`, each a
//! sequence of frames (`len ‖ crc32 ‖ payload`) whose payload is
//! `epoch: u64 ‖ Delta`.  [`Wal::append`] writes one frame and syncs it —
//! fsync-on-commit.  Group commit needs no extra machinery here: the
//! engine folds a gathered batch into *one* merged delta before applying
//! it, so a whole storm reaches the log as one record and pays one fsync.
//!
//! ## Checkpoint / truncation lifecycle
//!
//! [`Wal::checkpoint`] publishes the current state as
//! `ckpt-<epoch>-<content-id>.ckpt` (tmp → sync → atomic rename), then
//! rolls to a fresh segment starting at `epoch + 1` and deletes all older
//! segments — that deletion *is* log truncation, and it is safe in every
//! crash interleaving because it happens strictly after the checkpoint
//! rename: a crash in between merely leaves stale segments whose records
//! replay as no-ops (their epochs are `≤` the checkpoint's).
//!
//! ## Recovery invariant
//!
//! [`Wal::recover`] loads the newest *valid* checkpoint (frame CRC and
//! name/content id both checked), replays every record with an epoch
//! contiguously above it, and stops at the first torn frame, corrupt
//! frame, or epoch gap — truncating the log there so the store can keep
//! appending.  The recovered state is exactly the **maximal durable
//! prefix** of the pre-crash history: every synced commit survives, the
//! at-most-one torn tail record is dropped, and derived state (indexes,
//! statistics, materialized answers) is rebuilt, never trusted from disk.

use crate::checkpoint::{Checkpoint, CheckpointBackend};
use crate::storage::Storage;
use crate::{DurabilityError, Result};
use si_data::codec::{self, CodecError, Reader};
use si_data::{Database, Delta};

fn segment_name(start_epoch: u64) -> String {
    format!("wal-{start_epoch:016x}.log")
}

fn parse_segment(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn checkpoint_name(epoch: u64, id: u64) -> String {
    format!("ckpt-{epoch:016x}-{id:016x}.ckpt")
}

fn parse_checkpoint(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("ckpt-")?.strip_suffix(".ckpt")?;
    let (epoch_hex, id_hex) = rest.split_once('-')?;
    if epoch_hex.len() != 16 || id_hex.len() != 16 {
        return None;
    }
    Some((
        u64::from_str_radix(epoch_hex, 16).ok()?,
        u64::from_str_radix(id_hex, 16).ok()?,
    ))
}

fn decode_record(payload: &[u8]) -> std::result::Result<(u64, Delta), CodecError> {
    let mut r = Reader::new(payload);
    let epoch = r.u64()?;
    let delta = codec::decode_delta(&mut r)?;
    r.expect_end()?;
    Ok((epoch, delta))
}

/// What [`Wal::recover`] rebuilt.
#[derive(Debug)]
pub struct Recovered {
    /// Epoch of the checkpoint recovery started from.
    pub checkpoint_epoch: u64,
    /// Epoch after replaying the log tail — the store resumes here.
    pub epoch: u64,
    /// Log records replayed on top of the checkpoint.
    pub replayed: u64,
    /// True if recovery discarded anything: a torn or corrupt log tail, an
    /// interrupted checkpoint publish, or an invalid checkpoint file.
    pub repaired: bool,
    /// Store flavour captured by the checkpoint.
    pub backend: CheckpointBackend,
    /// Recovered per-shard contents (one entry for a single store), with
    /// declared indexes re-declared and nothing else derived.
    pub databases: Vec<Database>,
}

/// Cumulative durability timings, measured where the waiting happens.
///
/// The fsync counters cover the per-commit `sync` in [`Wal::append`] — the
/// single dominant latency of a durable commit — and the checkpoint counters
/// cover the whole tmp → sync → rename publish sequence.  The engine's
/// telemetry snapshots this before and after a commit pass and records the
/// difference, so the WAL stays free of any registry dependency.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalTimings {
    /// Commit fsyncs performed.
    pub syncs: u64,
    /// Total nanoseconds spent in commit fsyncs.
    pub sync_nanos: u64,
    /// Duration of the most recent commit fsync.
    pub last_sync_nanos: u64,
    /// Checkpoint publishes performed (tmp → sync → rename).
    pub checkpoint_publishes: u64,
    /// Total nanoseconds spent publishing checkpoints.
    pub checkpoint_nanos: u64,
    /// Duration of the most recent checkpoint publish.
    pub last_checkpoint_nanos: u64,
}

fn nanos_since(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The append-only commit log.  One instance owns the storage; the engine
/// serialises access through its commit path (appends happen under the
/// commit lock, so `&mut self` is natural here).
#[derive(Debug)]
pub struct Wal {
    storage: Box<dyn Storage>,
    segment: String,
    next_epoch: u64,
    records: u64,
    checkpoints: u64,
    segment_bytes: u64,
    timings: WalTimings,
}

impl Wal {
    /// Initialises durable storage with `initial` as the base checkpoint
    /// (normally the store's state at creation) and an empty log.
    ///
    /// Fails if `storage` already holds a log — recovery, not creation, is
    /// the path for that.
    pub fn create(storage: Box<dyn Storage>, initial: &Checkpoint) -> Result<Wal> {
        let existing = storage.list()?;
        if existing
            .iter()
            .any(|n| parse_segment(n).is_some() || parse_checkpoint(n).is_some())
        {
            return Err(DurabilityError::Invariant(
                "storage already holds a log; use recover".into(),
            ));
        }
        let mut wal = Wal {
            storage,
            segment: segment_name(initial.epoch + 1),
            next_epoch: initial.epoch + 1,
            records: 0,
            checkpoints: 0,
            segment_bytes: 0,
            timings: WalTimings::default(),
        };
        wal.write_checkpoint_file(initial)?;
        wal.storage.append(&wal.segment, &[])?;
        Ok(wal)
    }

    /// The storage behind the log (fsync meter access for benches/tests).
    pub fn storage(&self) -> &dyn Storage {
        self.storage.as_ref()
    }

    /// Records appended over this instance's lifetime.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Checkpoints written over this instance's lifetime.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// The epoch the next [`Wal::append`] must carry.
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// Bytes appended to the current (post-checkpoint) segment so far —
    /// the live-log gauge an operator watches to size checkpoint cadence.
    pub fn segment_bytes(&self) -> u64 {
        self.segment_bytes
    }

    /// Cumulative fsync / checkpoint-publish timings (see [`WalTimings`]).
    pub fn timings(&self) -> WalTimings {
        self.timings
    }

    /// Logs the commit that takes the store to `epoch`: one framed record,
    /// one fsync.  Must be called *before* the in-memory store applies the
    /// delta (write-ahead), with contiguous epochs.
    pub fn append(&mut self, epoch: u64, delta: &Delta) -> Result<()> {
        if epoch != self.next_epoch {
            return Err(DurabilityError::Invariant(format!(
                "wal append at epoch {epoch}, expected {}",
                self.next_epoch
            )));
        }
        let mut payload = Vec::new();
        codec::put_u64(&mut payload, epoch);
        codec::encode_delta(&mut payload, delta);
        let frame = codec::frame(&payload);
        self.storage.append(&self.segment, &frame)?;
        let sync_start = std::time::Instant::now();
        self.storage.sync(&self.segment)?;
        let sync_nanos = nanos_since(sync_start);
        self.timings.syncs += 1;
        self.timings.sync_nanos += sync_nanos;
        self.timings.last_sync_nanos = sync_nanos;
        self.segment_bytes += frame.len() as u64;
        self.records += 1;
        self.next_epoch = epoch + 1;
        Ok(())
    }

    fn write_checkpoint_file(&mut self, ckpt: &Checkpoint) -> Result<()> {
        let publish_start = std::time::Instant::now();
        let payload = ckpt.encode();
        let id = codec::content_id(&payload);
        let name = checkpoint_name(ckpt.epoch, id);
        let tmp = format!("{name}.tmp");
        // A crash may have left a half-written tmp from an earlier attempt
        // at this very name; appending to it would corrupt the frame.
        let _ = self.storage.remove(&tmp);
        self.storage.append(&tmp, &codec::frame(&payload))?;
        self.storage.sync(&tmp)?;
        self.storage.rename(&tmp, &name)?;
        self.checkpoints += 1;
        let publish_nanos = nanos_since(publish_start);
        self.timings.checkpoint_publishes += 1;
        self.timings.checkpoint_nanos += publish_nanos;
        self.timings.last_checkpoint_nanos = publish_nanos;
        Ok(())
    }

    /// Publishes `ckpt` (which must capture the current epoch), truncates
    /// the log under it, and prunes all but the newest `keep` checkpoints.
    pub fn checkpoint(&mut self, ckpt: &Checkpoint, keep: usize) -> Result<()> {
        if ckpt.epoch + 1 != self.next_epoch {
            return Err(DurabilityError::Invariant(format!(
                "checkpoint at epoch {}, store is at {}",
                ckpt.epoch,
                self.next_epoch - 1
            )));
        }
        self.write_checkpoint_file(ckpt)?;
        // Roll to a fresh segment, then delete the ones the checkpoint
        // supersedes (this deletion is the log truncation; see module docs
        // for why this order is crash-safe).
        let old = std::mem::replace(&mut self.segment, segment_name(ckpt.epoch + 1));
        if old != self.segment {
            self.segment_bytes = 0;
            self.storage.append(&self.segment, &[])?;
            for name in self.storage.list()? {
                if parse_segment(&name).is_some() && name != self.segment {
                    self.storage.remove(&name)?;
                }
            }
        }
        // Prune old checkpoints (always keeping at least one).
        let mut ckpts: Vec<(u64, u64, String)> = self
            .storage
            .list()?
            .into_iter()
            .filter_map(|n| parse_checkpoint(&n).map(|(e, id)| (e, id, n)))
            .collect();
        ckpts.sort();
        let cut = ckpts.len().saturating_sub(keep.max(1));
        for (_, _, name) in &ckpts[..cut] {
            self.storage.remove(name)?;
        }
        Ok(())
    }

    /// Rebuilds the durable state from `storage`: newest valid checkpoint,
    /// plus the contiguous log tail above it, with the log repaired in
    /// place (torn/corrupt tail truncated) so the returned [`Wal`] can keep
    /// appending from the recovered epoch.
    pub fn recover(storage: Box<dyn Storage>) -> Result<(Recovered, Wal)> {
        let files = storage.list()?;
        let mut repaired = false;

        // Interrupted checkpoint publishes are junk by construction.
        for name in files.iter().filter(|n| n.ends_with(".tmp")) {
            storage.remove(name)?;
            repaired = true;
        }

        // Newest checkpoint that passes all three gates: frame CRC,
        // name/content id, payload decode.
        let mut candidates: Vec<(u64, u64, String)> = files
            .iter()
            .filter_map(|n| parse_checkpoint(n).map(|(e, id)| (e, id, n.clone())))
            .collect();
        candidates.sort();
        let mut checkpoint = None;
        for (epoch, id, name) in candidates.iter().rev() {
            let bytes = storage.read(name)?;
            let mut pos = 0usize;
            let valid = match codec::read_frame(&bytes, &mut pos) {
                Ok(payload) if pos == bytes.len() && codec::content_id(payload) == *id => {
                    Checkpoint::decode(payload)
                        .ok()
                        .filter(|c| c.epoch == *epoch)
                }
                _ => None,
            };
            match valid {
                Some(c) => {
                    checkpoint = Some(c);
                    break;
                }
                None => {
                    // An invalid published checkpoint (bit damage) cannot be
                    // trusted; drop it and fall back to an older one.
                    storage.remove(name)?;
                    repaired = true;
                }
            }
        }
        let Some(checkpoint) = checkpoint else {
            return Err(DurabilityError::NoCheckpoint);
        };

        // Replay the log tail on top of the checkpoint's databases.
        let mut databases = checkpoint.databases()?;
        let router = match &checkpoint.backend {
            CheckpointBackend::Single => None,
            CheckpointBackend::Sharded { partition } => Some(
                partition
                    .router(databases[0].schema(), databases.len())
                    .map_err(DurabilityError::Data)?,
            ),
        };
        let mut segments: Vec<(u64, String)> = files
            .iter()
            .filter_map(|n| parse_segment(n).map(|s| (s, n.clone())))
            .collect();
        segments.sort();
        let mut epoch = checkpoint.epoch;
        let mut replayed = 0u64;
        // (segment index, byte offset of the first invalid frame) — where
        // the durable history ends.
        let mut stop: Option<(usize, u64)> = None;
        'segments: for (i, (_, name)) in segments.iter().enumerate() {
            let bytes = storage.read(name)?;
            let mut pos = 0usize;
            let mut valid_end = 0u64;
            while pos < bytes.len() {
                let Ok(payload) = codec::read_frame(&bytes, &mut pos) else {
                    stop = Some((i, valid_end));
                    break 'segments;
                };
                let Ok((e, delta)) = decode_record(payload) else {
                    stop = Some((i, valid_end));
                    break 'segments;
                };
                if e <= epoch {
                    // Superseded by the checkpoint (a stale segment that a
                    // crash interrupted the truncation of).
                    valid_end = pos as u64;
                    continue;
                }
                if e != epoch + 1 {
                    // An epoch gap means the tail is not a contiguous
                    // continuation of what we have — untrusted.
                    stop = Some((i, valid_end));
                    break 'segments;
                }
                match &router {
                    None => delta
                        .apply_in_place(&mut databases[0])
                        .map_err(DurabilityError::Data)?,
                    Some(r) => {
                        for (db, part) in databases.iter_mut().zip(r.split(&delta)) {
                            part.apply_in_place(db).map_err(DurabilityError::Data)?;
                        }
                    }
                }
                epoch = e;
                replayed += 1;
                valid_end = pos as u64;
            }
        }

        // Repair: cut the log at the first invalid frame so the recovered
        // store can keep appending where the durable history ends.
        if let Some((i, valid_end)) = stop {
            repaired = true;
            storage.truncate(&segments[i].1, valid_end)?;
            for (_, name) in &segments[i + 1..] {
                storage.remove(name)?;
            }
            segments.truncate(i + 1);
        }
        let segment = match segments.last() {
            Some((_, name)) => name.clone(),
            None => {
                let name = segment_name(epoch + 1);
                storage.append(&name, &[])?;
                name
            }
        };

        let backend = checkpoint.backend.clone();
        let checkpoint_epoch = checkpoint.epoch;
        Ok((
            Recovered {
                checkpoint_epoch,
                epoch,
                replayed,
                repaired,
                backend,
                databases,
            },
            Wal {
                segment_bytes: storage.read(&segment).map(|b| b.len() as u64).unwrap_or(0),
                storage,
                segment,
                next_epoch: epoch + 1,
                records: 0,
                checkpoints: 0,
                timings: WalTimings::default(),
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::SimDisk;
    use si_data::schema::social_schema;
    use si_data::{tuple, SnapshotStore};

    fn base() -> Database {
        let mut db = Database::empty(social_schema());
        for i in 0..10i64 {
            db.insert("person", tuple![i, format!("p{i}"), "NYC"])
                .unwrap();
        }
        db
    }

    fn delta(i: i64) -> Delta {
        let mut d = Delta::new();
        d.insert("friend", tuple![i, i + 1]);
        d
    }

    #[test]
    fn names_parse_round_trip() {
        assert_eq!(parse_segment(&segment_name(42)), Some(42));
        assert_eq!(
            parse_checkpoint(&checkpoint_name(7, 0xdead)),
            Some((7, 0xdead))
        );
        assert_eq!(parse_segment("wal-zz.log"), None);
        assert_eq!(parse_segment("wal-0.log"), None);
        assert_eq!(parse_checkpoint("ckpt-07.ckpt"), None);
        assert_eq!(
            parse_checkpoint(&format!("{}.tmp", checkpoint_name(7, 1))),
            None
        );
    }

    #[test]
    fn append_replay_recovers_every_synced_commit() {
        let disk = SimDisk::new();
        let store = SnapshotStore::new(base());
        let mut wal =
            Wal::create(Box::new(disk.clone()), &Checkpoint::single(&store.pin())).unwrap();
        let mut db = base();
        for i in 0..5i64 {
            let d = delta(i);
            wal.append(i as u64 + 1, &d).unwrap();
            d.apply_in_place(&mut db).unwrap();
        }
        assert_eq!(wal.records(), 5);
        assert_eq!(disk.syncs(), 1 + 5); // initial checkpoint + 5 commits

        let (rec, resumed) = Wal::recover(Box::new(disk.clone())).unwrap();
        assert_eq!(rec.checkpoint_epoch, 0);
        assert_eq!(rec.epoch, 5);
        assert_eq!(rec.replayed, 5);
        assert!(!rec.repaired);
        assert_eq!(rec.databases.len(), 1);
        assert!(rec.databases[0].contains_database(&db) && db.contains_database(&rec.databases[0]));
        assert_eq!(resumed.next_epoch(), 6);
    }

    #[test]
    fn recovery_resumes_appending_where_the_log_ends() {
        let disk = SimDisk::new();
        let store = SnapshotStore::new(base());
        let mut wal =
            Wal::create(Box::new(disk.clone()), &Checkpoint::single(&store.pin())).unwrap();
        wal.append(1, &delta(0)).unwrap();
        drop(wal);
        let (_, mut resumed) = Wal::recover(Box::new(disk.clone())).unwrap();
        resumed.append(2, &delta(1)).unwrap();
        assert!(matches!(
            resumed.append(9, &delta(2)),
            Err(DurabilityError::Invariant(_))
        ));
        let (rec, _) = Wal::recover(Box::new(disk)).unwrap();
        assert_eq!(rec.epoch, 2);
        assert_eq!(rec.replayed, 2);
    }

    #[test]
    fn checkpoint_truncates_the_log_and_prunes_old_checkpoints() {
        let disk = SimDisk::new();
        let store = SnapshotStore::new(base());
        let mut wal =
            Wal::create(Box::new(disk.clone()), &Checkpoint::single(&store.pin())).unwrap();
        let mut db = base();
        for i in 0..4i64 {
            let d = delta(i);
            wal.append(i as u64 + 1, &d).unwrap();
            d.apply_in_place(&mut db).unwrap();
        }
        let snap = SnapshotStore::restore(db.clone(), 4);
        wal.checkpoint(&Checkpoint::single(&snap.pin()), 1).unwrap();
        // Two checkpoints written in this instance's lifetime: the initial
        // one from `create`, and this one.
        assert_eq!(wal.checkpoints(), 2);

        let files = disk.list().unwrap();
        // One fresh segment, exactly one checkpoint (keep=1 pruned epoch 0).
        assert_eq!(
            files.iter().filter(|n| parse_segment(n).is_some()).count(),
            1
        );
        assert_eq!(
            files
                .iter()
                .filter(|n| parse_checkpoint(n).is_some())
                .count(),
            1
        );

        // Post-checkpoint commits replay on top of it.
        wal.append(5, &delta(10)).unwrap();
        delta(10).apply_in_place(&mut db).unwrap();
        let (rec, _) = Wal::recover(Box::new(disk)).unwrap();
        assert_eq!(rec.checkpoint_epoch, 4);
        assert_eq!(rec.epoch, 5);
        assert_eq!(rec.replayed, 1);
        assert!(rec.databases[0].contains_database(&db) && db.contains_database(&rec.databases[0]));
    }

    #[test]
    fn torn_tail_is_dropped_and_the_log_repaired() {
        let disk = SimDisk::new();
        let store = SnapshotStore::new(base());
        let mut wal =
            Wal::create(Box::new(disk.clone()), &Checkpoint::single(&store.pin())).unwrap();
        wal.append(1, &delta(0)).unwrap();
        let full = disk.written();
        wal.append(2, &delta(1)).unwrap();
        // Tear the final record by truncating the segment mid-frame.
        let seg = segment_name(1);
        let len = disk.read(&seg).unwrap().len() as u64;
        disk.truncate(&seg, len - 3).unwrap();
        let _ = full;

        let (rec, mut resumed) = Wal::recover(Box::new(disk.clone())).unwrap();
        assert_eq!(rec.epoch, 1);
        assert_eq!(rec.replayed, 1);
        assert!(rec.repaired);
        // The torn bytes are gone from disk; appending works again.
        resumed.append(2, &delta(1)).unwrap();
        let (rec2, _) = Wal::recover(Box::new(disk)).unwrap();
        assert_eq!(rec2.epoch, 2);
        assert!(!rec2.repaired);
    }

    #[test]
    fn bit_flipped_record_is_detected_and_cut() {
        let disk = SimDisk::new();
        let store = SnapshotStore::new(base());
        let mut wal =
            Wal::create(Box::new(disk.clone()), &Checkpoint::single(&store.pin())).unwrap();
        let seg = segment_name(1);
        wal.append(1, &delta(0)).unwrap();
        let first_end = disk.read(&seg).unwrap().len();
        wal.append(2, &delta(1)).unwrap();
        wal.append(3, &delta(2)).unwrap();
        // Damage the *second* record: recovery keeps epoch 1, cuts 2 and 3.
        disk.flip_bit(&seg, first_end + codec::FRAME_HEADER + 2, 4);
        let (rec, _) = Wal::recover(Box::new(disk.clone())).unwrap();
        assert_eq!(rec.epoch, 1);
        assert!(rec.repaired);
        assert_eq!(disk.read(&seg).unwrap().len(), first_end);
    }

    #[test]
    fn empty_storage_has_no_checkpoint_and_create_refuses_a_used_log() {
        let disk = SimDisk::new();
        assert!(matches!(
            Wal::recover(Box::new(disk.clone())),
            Err(DurabilityError::NoCheckpoint)
        ));
        let store = SnapshotStore::new(base());
        let ckpt = Checkpoint::single(&store.pin());
        let _wal = Wal::create(Box::new(disk.clone()), &ckpt).unwrap();
        assert!(matches!(
            Wal::create(Box::new(disk), &ckpt),
            Err(DurabilityError::Invariant(_))
        ));
    }
}
