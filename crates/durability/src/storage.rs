//! Storage backends for the durability plane.
//!
//! The WAL and checkpoint machinery talk to a small [`Storage`] trait — a
//! flat namespace of append-only files with explicit `sync` — with two
//! implementations:
//!
//! * [`DirStorage`]: real files under a directory (`std::fs`), for
//!   production use.
//! * [`SimDisk`]: an in-memory simulated disk for the crash-recovery
//!   harness.  It records every mutation in a **write journal**, can be
//!   armed to *kill the process* after any global byte
//!   ([`SimDisk::kill_after`] — the write that crosses the budget is torn
//!   mid-byte and every later operation fails), supports out-of-band bit
//!   flips ([`SimDisk::flip_bit`]), and can deterministically reconstruct
//!   *the exact disk state at any kill point* from the journal of an
//!   un-killed run ([`SimDisk::reconstruct_at`]) — which is what lets the
//!   harness test **every** kill point of a schedule without re-running
//!   the engine once per kill point.
//!
//! ### Crash model
//!
//! Writes become durable in issue order and a crash truncates the
//! in-flight write at an arbitrary byte.  Since the WAL syncs after every
//! record append, the model's one simplification (no reordering of
//! completed-but-unsynced writes) never diverges from a real disk for the
//! write patterns this crate issues: there is at most one unsynced record
//! at any instant, and it is the torn tail recovery must drop anyway.

use crate::{DurabilityError, Result};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A flat namespace of append-only files with explicit sync — everything
/// the WAL needs from a disk.
///
/// All methods take `&self` (interior mutability); implementations must be
/// safe to share across threads.
pub trait Storage: Send + Sync + fmt::Debug {
    /// File names present, in sorted order.
    fn list(&self) -> Result<Vec<String>>;
    /// The full contents of `name`.
    fn read(&self, name: &str) -> Result<Vec<u8>>;
    /// Appends `bytes` to `name`, creating it if absent.
    fn append(&self, name: &str, bytes: &[u8]) -> Result<()>;
    /// Forces `name`'s contents to stable storage (the fsync of a commit).
    fn sync(&self, name: &str) -> Result<()>;
    /// Atomically renames `from` to `to` (replacing `to` if present) — the
    /// publish step of a checkpoint.
    fn rename(&self, from: &str, to: &str) -> Result<()>;
    /// Removes `name`.
    fn remove(&self, name: &str) -> Result<()>;
    /// Truncates `name` to `len` bytes — the log-repair step of recovery.
    fn truncate(&self, name: &str, len: u64) -> Result<()>;
    /// Number of [`Storage::sync`] calls over the storage's lifetime — the
    /// fsync meter the group-commit amortization bench reads.
    fn syncs(&self) -> u64;
}

// ---------------------------------------------------------------------------
// DirStorage
// ---------------------------------------------------------------------------

/// [`Storage`] over real files in one directory.
#[derive(Debug)]
pub struct DirStorage {
    root: PathBuf,
    syncs: AtomicU64,
}

fn io_err(context: &str, e: std::io::Error) -> DurabilityError {
    DurabilityError::Io(format!("{context}: {e}"))
}

impl DirStorage {
    /// Opens (creating if needed) the directory at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| io_err("create storage dir", e))?;
        Ok(DirStorage {
            root,
            syncs: AtomicU64::new(0),
        })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Storage for DirStorage {
    fn list(&self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.root).map_err(|e| io_err("list storage dir", e))? {
            let entry = entry.map_err(|e| io_err("list storage dir", e))?;
            if entry.path().is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn read(&self, name: &str) -> Result<Vec<u8>> {
        fs::read(self.path(name)).map_err(|e| io_err(&format!("read {name}"), e))
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))
            .map_err(|e| io_err(&format!("open {name}"), e))?;
        file.write_all(bytes)
            .map_err(|e| io_err(&format!("append {name}"), e))
    }

    fn sync(&self, name: &str) -> Result<()> {
        let file =
            fs::File::open(self.path(name)).map_err(|e| io_err(&format!("open {name}"), e))?;
        file.sync_all()
            .map_err(|e| io_err(&format!("sync {name}"), e))?;
        self.syncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        fs::rename(self.path(from), self.path(to))
            .map_err(|e| io_err(&format!("rename {from} -> {to}"), e))
    }

    fn remove(&self, name: &str) -> Result<()> {
        fs::remove_file(self.path(name)).map_err(|e| io_err(&format!("remove {name}"), e))
    }

    fn truncate(&self, name: &str, len: u64) -> Result<()> {
        let file = fs::OpenOptions::new()
            .write(true)
            .open(self.path(name))
            .map_err(|e| io_err(&format!("open {name}"), e))?;
        file.set_len(len)
            .map_err(|e| io_err(&format!("truncate {name}"), e))
    }

    fn syncs(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// SimDisk
// ---------------------------------------------------------------------------

/// One entry of the [`SimDisk`] write journal: a mutation exactly as it was
/// applied (a torn append records only the bytes that landed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskOp {
    /// Bytes appended to a file.
    Append {
        /// Target file.
        file: String,
        /// The bytes that actually landed on disk.
        bytes: Vec<u8>,
    },
    /// An atomic rename.
    Rename {
        /// Source name.
        from: String,
        /// Destination name (replaced if present).
        to: String,
    },
    /// A file removal.
    Remove {
        /// Removed file.
        file: String,
    },
    /// A file truncation.
    Truncate {
        /// Truncated file.
        file: String,
        /// Length after truncation.
        len: u64,
    },
}

#[derive(Debug, Default)]
struct SimInner {
    files: BTreeMap<String, Vec<u8>>,
    journal: Vec<DiskOp>,
    written: u64,
    syncs: u64,
    kill_at: Option<u64>,
    killed: bool,
}

/// The in-memory fault-injecting disk.  Cloning the handle shares the same
/// disk (the engine writes through one clone while the harness inspects
/// another).
#[derive(Debug, Clone, Default)]
pub struct SimDisk {
    inner: Arc<Mutex<SimInner>>,
}

impl SimDisk {
    /// An empty disk with no kill budget armed.
    pub fn new() -> Self {
        SimDisk::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SimInner> {
        self.inner.lock().expect("sim disk poisoned")
    }

    /// Arms the kill switch: the write that would push the cumulative
    /// bytes-written counter past `total_bytes` is torn at exactly that
    /// byte, and every subsequent operation fails with
    /// [`DurabilityError::Killed`] until [`SimDisk::revive`].
    pub fn kill_after(&self, total_bytes: u64) {
        self.lock().kill_at = Some(total_bytes);
    }

    /// Clears a kill (the "process restart" before recovery runs).
    pub fn revive(&self) {
        let mut inner = self.lock();
        inner.killed = false;
        inner.kill_at = None;
    }

    /// True once an armed kill has fired.
    pub fn is_killed(&self) -> bool {
        self.lock().killed
    }

    /// Cumulative bytes written over the disk's lifetime (the coordinate
    /// system of kill points).
    pub fn written(&self) -> u64 {
        self.lock().written
    }

    /// A copy of the write journal.
    pub fn journal(&self) -> Vec<DiskOp> {
        self.lock().journal.clone()
    }

    /// Flips bit `bit` of byte `byte` in `name` — out-of-band corruption
    /// (not journalled), for testing CRC detection.
    pub fn flip_bit(&self, name: &str, byte: usize, bit: u8) {
        let mut inner = self.lock();
        let data = inner
            .files
            .get_mut(name)
            .unwrap_or_else(|| panic!("flip_bit: no file {name}"));
        data[byte] ^= 1 << (bit % 8);
    }

    /// Reconstructs, on a fresh disk, the exact file state an un-killed
    /// run's journal implies for a crash at global byte `kill`: journal
    /// operations are replayed in order, the append that crosses `kill` is
    /// torn at the boundary, and everything after it never happened.
    /// `u64::MAX` reconstructs the complete final state.
    pub fn reconstruct_at(journal: &[DiskOp], kill: u64) -> SimDisk {
        let disk = SimDisk::new();
        {
            let mut inner = disk.lock();
            let mut written = 0u64;
            for op in journal {
                match op {
                    DiskOp::Append { file, bytes } => {
                        if written >= kill {
                            break;
                        }
                        let len = bytes.len() as u64;
                        let take = if written + len <= kill {
                            bytes.len()
                        } else {
                            (kill - written) as usize
                        };
                        inner
                            .files
                            .entry(file.clone())
                            .or_default()
                            .extend_from_slice(&bytes[..take]);
                        written += take as u64;
                        if take < bytes.len() {
                            break;
                        }
                    }
                    DiskOp::Rename { from, to } => {
                        if written >= kill {
                            break;
                        }
                        if let Some(data) = inner.files.remove(from) {
                            inner.files.insert(to.clone(), data);
                        }
                    }
                    DiskOp::Remove { file } => {
                        if written >= kill {
                            break;
                        }
                        inner.files.remove(file);
                    }
                    DiskOp::Truncate { file, len } => {
                        if written >= kill {
                            break;
                        }
                        if let Some(data) = inner.files.get_mut(file) {
                            data.truncate(*len as usize);
                        }
                    }
                }
            }
            inner.written = written;
        }
        disk
    }
}

impl SimInner {
    fn check_alive(&self) -> Result<()> {
        if self.killed {
            Err(DurabilityError::Killed)
        } else {
            Ok(())
        }
    }
}

impl Storage for SimDisk {
    fn list(&self) -> Result<Vec<String>> {
        let inner = self.lock();
        inner.check_alive()?;
        Ok(inner.files.keys().cloned().collect())
    }

    fn read(&self, name: &str) -> Result<Vec<u8>> {
        let inner = self.lock();
        inner.check_alive()?;
        inner
            .files
            .get(name)
            .cloned()
            .ok_or_else(|| DurabilityError::Io(format!("read {name}: no such file")))
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let mut inner = self.lock();
        inner.check_alive()?;
        let take = match inner.kill_at {
            Some(kill) if inner.written + bytes.len() as u64 > kill => {
                (kill.saturating_sub(inner.written)) as usize
            }
            _ => bytes.len(),
        };
        inner
            .files
            .entry(name.to_owned())
            .or_default()
            .extend_from_slice(&bytes[..take]);
        inner.written += take as u64;
        inner.journal.push(DiskOp::Append {
            file: name.to_owned(),
            bytes: bytes[..take].to_vec(),
        });
        if take < bytes.len() {
            inner.killed = true;
            return Err(DurabilityError::Killed);
        }
        Ok(())
    }

    fn sync(&self, name: &str) -> Result<()> {
        let mut inner = self.lock();
        inner.check_alive()?;
        if !inner.files.contains_key(name) {
            return Err(DurabilityError::Io(format!("sync {name}: no such file")));
        }
        inner.syncs += 1;
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        let mut inner = self.lock();
        inner.check_alive()?;
        let data = inner
            .files
            .remove(from)
            .ok_or_else(|| DurabilityError::Io(format!("rename {from}: no such file")))?;
        inner.files.insert(to.to_owned(), data);
        inner.journal.push(DiskOp::Rename {
            from: from.to_owned(),
            to: to.to_owned(),
        });
        Ok(())
    }

    fn remove(&self, name: &str) -> Result<()> {
        let mut inner = self.lock();
        inner.check_alive()?;
        inner
            .files
            .remove(name)
            .ok_or_else(|| DurabilityError::Io(format!("remove {name}: no such file")))?;
        inner.journal.push(DiskOp::Remove {
            file: name.to_owned(),
        });
        Ok(())
    }

    fn truncate(&self, name: &str, len: u64) -> Result<()> {
        let mut inner = self.lock();
        inner.check_alive()?;
        let data = inner
            .files
            .get_mut(name)
            .ok_or_else(|| DurabilityError::Io(format!("truncate {name}: no such file")))?;
        data.truncate(len as usize);
        inner.journal.push(DiskOp::Truncate {
            file: name.to_owned(),
            len,
        });
        Ok(())
    }

    fn syncs(&self) -> u64 {
        self.lock().syncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_disk_is_a_storage() {
        let disk = SimDisk::new();
        disk.append("a.log", b"hello ").unwrap();
        disk.append("a.log", b"world").unwrap();
        disk.sync("a.log").unwrap();
        assert_eq!(disk.read("a.log").unwrap(), b"hello world");
        assert_eq!(disk.syncs(), 1);
        assert_eq!(disk.written(), 11);
        disk.rename("a.log", "b.log").unwrap();
        assert_eq!(disk.list().unwrap(), vec!["b.log".to_owned()]);
        disk.truncate("b.log", 5).unwrap();
        assert_eq!(disk.read("b.log").unwrap(), b"hello");
        disk.remove("b.log").unwrap();
        assert!(disk.list().unwrap().is_empty());
        assert!(disk.read("b.log").is_err());
        assert!(disk.sync("b.log").is_err());
    }

    #[test]
    fn kill_tears_the_crossing_write_and_fails_later_ops() {
        let disk = SimDisk::new();
        disk.append("w.log", b"0123").unwrap();
        disk.kill_after(6);
        assert!(matches!(
            disk.append("w.log", b"abcdef"),
            Err(DurabilityError::Killed)
        ));
        assert!(disk.is_killed());
        assert!(matches!(disk.list(), Err(DurabilityError::Killed)));
        assert!(matches!(disk.sync("w.log"), Err(DurabilityError::Killed)));
        disk.revive();
        // Exactly two torn bytes landed.
        assert_eq!(disk.read("w.log").unwrap(), b"0123ab");
        // The disk is writable again after the "restart".
        disk.append("w.log", b"!").unwrap();
        assert_eq!(disk.read("w.log").unwrap(), b"0123ab!");
    }

    #[test]
    fn reconstruct_at_replays_the_journal_to_any_kill_point() {
        let live = SimDisk::new();
        live.append("w.log", b"0123").unwrap();
        live.append("tmp", b"abcd").unwrap();
        live.rename("tmp", "done").unwrap();
        live.append("w.log", b"4567").unwrap();
        live.remove("done").unwrap();
        let journal = live.journal();

        // Full reconstruction equals the final state.
        let full = SimDisk::reconstruct_at(&journal, u64::MAX);
        assert_eq!(full.read("w.log").unwrap(), b"01234567");
        assert!(full.read("done").is_err());

        // Kill mid-second-append: the rename happened, the remove did not.
        let torn = SimDisk::reconstruct_at(&journal, 10);
        assert_eq!(torn.read("w.log").unwrap(), b"012345");
        assert_eq!(torn.read("done").unwrap(), b"abcd");

        // Kill exactly at the first append boundary: nothing after it.
        let early = SimDisk::reconstruct_at(&journal, 4);
        assert_eq!(early.read("w.log").unwrap(), b"0123");
        assert!(early.read("tmp").is_err());
        assert!(early.read("done").is_err());

        // A killed live run matches its reconstruction.
        let killed = SimDisk::reconstruct_at(&journal, u64::MAX);
        killed.kill_after(10);
        let _ = killed.append("x", b"zz");
        let mirror = SimDisk::reconstruct_at(&journal, 10);
        assert_eq!(mirror.read("w.log").unwrap(), b"012345");
    }

    #[test]
    fn flip_bit_damages_exactly_one_bit() {
        let disk = SimDisk::new();
        disk.append("f", &[0b0000_0000, 0b1111_1111]).unwrap();
        disk.flip_bit("f", 1, 3);
        assert_eq!(disk.read("f").unwrap(), vec![0b0000_0000, 0b1111_0111]);
    }

    #[test]
    fn dir_storage_round_trips_through_the_filesystem() {
        let root = std::env::temp_dir().join(format!(
            "si-durability-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&root);
        let disk = DirStorage::open(&root).unwrap();
        disk.append("w.log", b"hello").unwrap();
        disk.append("w.log", b" world").unwrap();
        disk.sync("w.log").unwrap();
        assert_eq!(disk.read("w.log").unwrap(), b"hello world");
        assert_eq!(disk.syncs(), 1);
        disk.rename("w.log", "x.log").unwrap();
        assert_eq!(disk.list().unwrap(), vec!["x.log".to_owned()]);
        disk.truncate("x.log", 5).unwrap();
        assert_eq!(disk.read("x.log").unwrap(), b"hello");
        disk.remove("x.log").unwrap();
        assert!(disk.list().unwrap().is_empty());
        let _ = fs::remove_dir_all(&root);
    }
}
