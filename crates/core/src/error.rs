//! Error type for the scale-independence core.

use si_access::AccessError;
use si_data::DataError;
use si_query::QueryError;
use std::fmt;

/// Errors raised by the scale-independence machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Propagated storage error.
    Data(DataError),
    /// Propagated query error.
    Query(QueryError),
    /// Propagated access-schema error.
    Access(AccessError),
    /// No bounded (scale-independent) plan exists for the query under the
    /// given access schema and parameters; the payload lists the atoms that
    /// could not be covered by any access constraint.
    NotBoundedPlannable {
        /// Human-readable rendering of the atoms that blocked planning.
        blocked_atoms: Vec<String>,
    },
    /// Bounded plans exist, but every one of them has a worst-case fetch
    /// count above the requested budget.
    FetchBudgetExceeded {
        /// The requested maximum worst-case tuples fetched.
        budget: u64,
        /// The smallest worst-case fetch count among the plans found.
        cheapest: u64,
    },
    /// The requested analysis is only exact on small inputs and the input
    /// exceeded the configured limit.
    SearchSpaceTooLarge(String),
    /// The query fragment is not supported by the requested operation.
    Unsupported(String),
    /// An internal invariant was violated.
    Invariant(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Data(e) => write!(f, "{e}"),
            CoreError::Query(e) => write!(f, "{e}"),
            CoreError::Access(e) => write!(f, "{e}"),
            CoreError::NotBoundedPlannable { blocked_atoms } => write!(
                f,
                "no bounded plan exists; blocked atoms: {}",
                blocked_atoms.join(", ")
            ),
            CoreError::FetchBudgetExceeded { budget, cheapest } => write!(
                f,
                "every bounded plan exceeds the fetch budget: cheapest fetches ≤{cheapest} tuples, budget is {budget}"
            ),
            CoreError::SearchSpaceTooLarge(msg) => {
                write!(f, "exact search space too large: {msg}")
            }
            CoreError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            CoreError::Invariant(msg) => write!(f, "invariant violation: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Data(e) => Some(e),
            CoreError::Query(e) => Some(e),
            CoreError::Access(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for CoreError {
    fn from(e: DataError) -> Self {
        CoreError::Data(e)
    }
}

impl From<QueryError> for CoreError {
    fn from(e: QueryError) -> Self {
        CoreError::Query(e)
    }
}

impl From<AccessError> for CoreError {
    fn from(e: AccessError) -> Self {
        CoreError::Access(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = DataError::UnknownRelation("r".into()).into();
        assert!(e.to_string().contains("unknown relation"));
        assert!(std::error::Error::source(&e).is_some());

        let e: CoreError = QueryError::UnboundVariable("x".into()).into();
        assert!(e.to_string().contains('x'));

        let e: CoreError = AccessError::FullScanNotAllowed("visit".into()).into();
        assert!(e.to_string().contains("visit"));

        let e = CoreError::NotBoundedPlannable {
            blocked_atoms: vec!["visit(id, rid)".into()],
        };
        assert!(e.to_string().contains("visit(id, rid)"));
        assert!(std::error::Error::source(&e).is_none());

        assert!(CoreError::SearchSpaceTooLarge("2^40 subsets".into())
            .to_string()
            .contains("2^40"));
        assert!(CoreError::Unsupported("aggregation".into())
            .to_string()
            .contains("aggregation"));
        assert!(CoreError::Invariant("oops".into())
            .to_string()
            .contains("oops"));
    }
}
