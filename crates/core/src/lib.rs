//! # `si-core` — scale independence for querying big data
//!
//! A Rust implementation of the framework of *"On Scale Independence for
//! Querying Big Data"* (Wenfei Fan, Floris Geerts, Leonid Libkin, PODS 2014).
//!
//! A query `Q` is **scale-independent** in a database `D` w.r.t. a budget `M`
//! when some `D_Q ⊆ D` with at most `M` tuples satisfies `Q(D_Q) = Q(D)`:
//! the answer can be computed by fetching a bounded amount of data, no matter
//! how big `D` grows.  This crate provides:
//!
//! * [`si`] — the definitions, witnesses, and the witness problem;
//! * [`qdsi`] / [`qsi`] — exact decision procedures for the QDSI and QSI
//!   problems of Section 3 (with explicit search-space guards, since the
//!   problems are Σp3-/PSPACE-complete and undecidable respectively);
//! * [`controllability`] — the syntactic sufficient conditions of Sections 4
//!   and 5: x̄-controlled FO queries under access schemas, embedded
//!   controllability (closure of embedded constraints), the `RA_A` rules for
//!   relational algebra and its increment/decrement forms, and the
//!   QCntl/QCntlmin problems;
//! * [`bounded`] — bounded (scale-independent) query plans and their
//!   executor: the constructive content of Theorem 4.2, plus the unbounded
//!   baseline;
//! * [`incremental`] — incremental scale independence: change propagation,
//!   bounded maintenance under updates, and ∆QSI;
//! * [`views`] — scale independence using views: rewritings, constrained
//!   variables, VQSI, and view-assisted bounded execution.
//!
//! ## Execution representation
//!
//! All executors in this crate run on the **copy-cheap data plane** shared
//! with `si-query`: `si_data::Value` is a `Copy` enum with interned strings,
//! and partial assignments are flat `si_query::binding::Binding` slabs over a
//! per-execution `si_query::binding::VarTable` (variables numbered once,
//! atoms compiled to slot ids).  Extending an assignment — the inner loop of
//! the Theorem-4.2 executor and of incremental maintenance — clones a flat
//! array of `Copy` values instead of a `BTreeMap<Var, Value>`.
//!
//! ## Quick start
//!
//! ```
//! use si_core::prelude::*;
//! use si_data::{tuple, Database, Value};
//! use si_data::schema::social_schema;
//! use si_query::parse_cq;
//!
//! // The paper's Q1: friends of p living in NYC.
//! let q1 = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
//!
//! // Access schema: at most 5000 friends per person, `id` is a key of person.
//! let access = si_access::facebook_access_schema(5000);
//! let schema = social_schema();
//!
//! // Q1 is p-controlled, hence scale-independent once p is fixed.
//! let planner = BoundedPlanner::new(&schema, &access);
//! let plan = planner.plan(&q1, &["p".into()]).unwrap();
//! assert_eq!(plan.static_cost().max_tuples, 10_000);
//!
//! // Execute it against a (tiny) conforming database.
//! let mut db = Database::empty(schema);
//! db.insert("person", tuple![2, "bob", "NYC"]).unwrap();
//! db.insert("friend", tuple![1, 2]).unwrap();
//! let adb = si_access::AccessIndexedDatabase::new(db, access).unwrap();
//! let result = execute_bounded(&plan, &[Value::int(1)], &adb).unwrap();
//! assert_eq!(result.answers, vec![tuple!["bob"]]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounded;
pub mod controllability;
pub mod error;
pub mod incremental;
pub mod qdsi;
pub mod qsi;
pub mod si;
pub mod trace;
pub mod views;

pub use bounded::{
    execute_bounded, execute_bounded_partitioned, execute_bounded_partitioned_traced,
    execute_bounded_traced, execute_naive, fetch_bounded, BoundedAnswer, BoundedPlan,
    BoundedPlanner, CostBasedPlanner, CostedPlan, PlanStep, SharedFetch,
};
pub use controllability::{
    decide_qcntl, decide_qcntl_min, minimal_controlling_sets, AlgebraControllability,
    ControlFamily, ControllabilityAnalyzer, EmbeddedControllability, ExprForm, QcntlOutcome,
};
pub use error::CoreError;
pub use incremental::{
    decide_delta_qsi, decide_delta_qsi_for_update, maintenance_is_bounded,
    IncrementalBoundedEvaluator,
};
pub use qdsi::{decide_qdsi, decide_qdsi_with_access, DecisionMethod, QdsiOutcome, SearchLimits};
pub use qsi::{decide_qsi, QsiAnswer};
pub use si::{check_witness, is_witness, AnyQuery, Witness};
pub use trace::{ExecPhase, NullTraceSink, TraceSink};
pub use views::{
    decide_vqsi_cq, execute_with_views, find_cheapest_rewriting, find_rewriting, is_rewriting,
    is_scale_independent_using_views, ViewDef, ViewSet, VqsiOutcome,
};

/// Convenience result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// A convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use crate::bounded::{execute_bounded, execute_naive, BoundedPlanner, CostBasedPlanner};
    pub use crate::controllability::{
        AlgebraControllability, ControllabilityAnalyzer, EmbeddedControllability, ExprForm,
    };
    pub use crate::incremental::IncrementalBoundedEvaluator;
    pub use crate::qdsi::{decide_qdsi, SearchLimits};
    pub use crate::qsi::decide_qsi;
    pub use crate::si::AnyQuery;
    pub use crate::views::{execute_with_views, ViewDef, ViewSet};
    pub use crate::CoreError;
}
