//! Execution-phase trace hooks.
//!
//! The serving layer above this crate wants per-request phase timings
//! (how long the bounded *fetch* took versus the *finalize* pass), but the
//! core executor must not know about engines, registries, or sampling
//! policy. [`TraceSink`] is the inversion point: the caller hands the traced
//! executor variants ([`crate::bounded::exec::execute_bounded_traced`],
//! [`crate::bounded::exec::execute_bounded_partitioned_traced`]) a sink, and
//! the executor reports each phase's duration as it completes. The untraced
//! entry points take no sink and pay nothing.

/// Executor phases reported to a [`TraceSink`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecPhase {
    /// Plan compilation, seeding, and every plan step: all base-data access.
    Fetch,
    /// Equality filter, output projection, and answer dedup: no base data.
    Finalize,
}

/// Receiver for executor phase timings.
///
/// Implementations are engine-side (a phase clock, a histogram, a test
/// recorder); the executor only calls [`TraceSink::exec_phase`] once per
/// completed phase with the measured wall-clock nanoseconds.
pub trait TraceSink {
    /// Reports that `phase` just completed and took `nanos` nanoseconds.
    fn exec_phase(&mut self, phase: ExecPhase, nanos: u64);
}

/// A no-op sink (useful as a default or in tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullTraceSink;

impl TraceSink for NullTraceSink {
    fn exec_phase(&mut self, _phase: ExecPhase, _nanos: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_accepts_phases() {
        let mut sink = NullTraceSink;
        sink.exec_phase(ExecPhase::Fetch, 1);
        sink.exec_phase(ExecPhase::Finalize, 2);
    }
}
