//! The decision problem QDSI: is `Q` scale-independent in `D` w.r.t. `M`?
//!
//! Section 3 of the paper shows that QDSI is Σp3-complete for CQ and
//! PSPACE-complete for FO (combined complexity), so any exact procedure is
//! necessarily exponential in the worst case.  This module implements the
//! algorithms underlying the *upper bound* proofs:
//!
//! * for monotone queries (CQ/UCQ) the witness search reduces to a weighted
//!   set-cover–style search over the *provenance* of the answers
//!   (each answer tuple must keep at least one of its derivations);
//! * for Boolean CQ the `O(1)` fast path of Corollary 3.2 applies whenever
//!   `‖Q‖ ≤ M`;
//! * for FO the procedure enumerates sub-instances of size ≤ `M` and solves
//!   the witness problem for each, exactly as in the proof of Theorem 3.1.
//!
//! All exponential searches are guarded by [`SearchLimits`] so that callers
//! (and the complexity benchmarks of experiment E1) control the blow-up
//! explicitly.

use crate::bounded::{execute_bounded, CostBasedPlanner};
use crate::error::CoreError;
use crate::si::{check_witness, AnyQuery, Witness};
use si_access::AccessIndexedDatabase;
use si_data::stats::DatabaseStats;
use si_data::{Database, Tuple};
use si_query::cq_eval::satisfying_bindings;
use si_query::{ConjunctiveQuery, Term};
use std::collections::BTreeSet;

/// Guards on the exponential parts of the exact decision procedures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchLimits {
    /// Maximum number of candidate subsets the FO procedure may enumerate.
    pub max_subsets: u64,
    /// Maximum number of derivation-choice combinations the CQ set-cover
    /// search may explore before giving up.
    pub max_branches: u64,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits {
            max_subsets: 2_000_000,
            max_branches: 5_000_000,
        }
    }
}

/// How the decision was reached (reported for the experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionMethod {
    /// Boolean CQ with `‖Q‖ ≤ M` (Corollary 3.2): constant time.
    BooleanCqFastPath,
    /// The trivial witness `D_Q = D` fits the budget (`M ≥ |D|`).
    WholeDatabase,
    /// Monotone provenance cover search (CQ/UCQ).
    ProvenanceCover,
    /// Exhaustive sub-instance enumeration (FO).
    SubsetEnumeration,
    /// A bounded plan under the access schema produced the witness directly
    /// (see [`decide_qdsi_with_access`]): no exponential search ran.
    BoundedPlanFastPath,
}

/// Outcome of a QDSI decision.
#[derive(Debug, Clone, PartialEq)]
pub struct QdsiOutcome {
    /// Whether `Q ∈ SQ_L(D, M)`.
    pub scale_independent: bool,
    /// A minimal-size witness when one exists and the procedure produced one.
    pub witness: Option<Witness>,
    /// Which procedure produced the answer.
    pub method: DecisionMethod,
    /// Number of candidate witnesses / branches explored (work measure used
    /// by the Table 1 experiments).
    pub explored: u64,
}

/// Decides whether `query` is scale-independent in `db` w.r.t. `m`.
pub fn decide_qdsi(
    query: &AnyQuery,
    db: &Database,
    m: usize,
    limits: &SearchLimits,
) -> Result<QdsiOutcome, CoreError> {
    // Q ∈ SQ_L(D, |D|) always: the whole database is a witness.
    if m >= db.size() {
        return Ok(QdsiOutcome {
            scale_independent: true,
            witness: Some(Witness::from_facts(db.all_facts())),
            method: DecisionMethod::WholeDatabase,
            explored: 0,
        });
    }
    match query {
        AnyQuery::Cq(q) => decide_monotone(query, std::slice::from_ref(q), db, m, limits),
        AnyQuery::Ucq(q) => decide_monotone(query, &q.disjuncts, db, m, limits),
        AnyQuery::Fo(_) => decide_fo(query, db, m, limits),
    }
}

/// Decides QDSI with the help of an access schema, reusing the cost-based
/// planner's estimates before falling back to the exact searches.
///
/// When the cost-based planner finds a bounded plan for a closed CQ (no
/// execution-time parameters), executing the plan fetches a witness `D_Q`
/// directly: the facts the plan touches support every answer, so
/// `Q(D_Q) = Q(D)` by monotonicity.  If that witness fits the budget `m`
/// (verified by [`check_witness`]), the answer is "yes" without any
/// exponential search — the same statistics and cost estimates that drive
/// bounded execution thereby answer the controllability check.  In every
/// other case the decision falls through to [`decide_qdsi`].
pub fn decide_qdsi_with_access(
    query: &AnyQuery,
    adb: &AccessIndexedDatabase,
    m: usize,
    limits: &SearchLimits,
    stats: &DatabaseStats,
) -> Result<QdsiOutcome, CoreError> {
    if let AnyQuery::Cq(q) = query {
        let planner = CostBasedPlanner::new(adb.database().schema(), adb.access_schema(), stats);
        if let Ok(plan) = planner.plan(q, &[]) {
            let result = execute_bounded(&plan, &[], adb)?;
            if result.witness.size() <= m
                && check_witness(query, adb.database(), &result.witness, m)?
            {
                return Ok(QdsiOutcome {
                    scale_independent: true,
                    witness: Some(result.witness),
                    method: DecisionMethod::BoundedPlanFastPath,
                    explored: 0,
                });
            }
        }
    }
    decide_qdsi(query, adb.database(), m, limits)
}

/// Computes a minimum-size witness for a monotone query, or `None` when every
/// witness exceeds `m` facts.  Exposed for the benchmarks, which report the
/// witness sizes themselves.
pub fn minimal_witness_monotone(
    query: &AnyQuery,
    disjuncts: &[ConjunctiveQuery],
    db: &Database,
    m: usize,
    limits: &SearchLimits,
) -> Result<(Option<Witness>, u64), CoreError> {
    // Provenance: for every answer tuple, the alternative fact sets that
    // derive it (across all disjuncts).
    let answers = query.answer_set(db)?;
    if answers.is_empty() {
        // Monotone query with empty answer: the empty witness works.
        return Ok((Some(Witness::empty()), 0));
    }

    let mut per_answer: Vec<Vec<BTreeSet<(String, Tuple)>>> = Vec::new();
    let answer_list: Vec<Tuple> = answers.iter().cloned().collect();
    for answer in &answer_list {
        let mut derivations: Vec<BTreeSet<(String, Tuple)>> = Vec::new();
        for d in disjuncts {
            if d.arity() != answer.arity() {
                continue;
            }
            let bound = d.bind(
                &d.head
                    .iter()
                    .cloned()
                    .zip(answer.iter().cloned())
                    .collect::<Vec<_>>(),
            );
            let bindings = satisfying_bindings(&bound, db, None)?;
            for row in &bindings.rows {
                let mut facts: BTreeSet<(String, Tuple)> = BTreeSet::new();
                for atom in &bound.atoms {
                    let tuple: Option<Tuple> = atom
                        .terms
                        .iter()
                        .map(|t| match t {
                            Term::Const(c) => Some(*c),
                            Term::Var(v) => bindings.vars.id_of(v).and_then(|id| row.get(id)),
                        })
                        .collect();
                    if let Some(tuple) = tuple {
                        facts.insert((atom.relation.clone(), tuple));
                    }
                }
                if !derivations.contains(&facts) {
                    derivations.push(facts);
                }
            }
        }
        if derivations.is_empty() {
            return Err(CoreError::Invariant(format!(
                "answer {answer} has no derivation — evaluator inconsistency"
            )));
        }
        // Prefer small derivations first to find good covers early.
        derivations.sort_by_key(BTreeSet::len);
        per_answer.push(derivations);
    }

    // Order answers by fewest alternatives first (most constrained first).
    let mut order: Vec<usize> = (0..per_answer.len()).collect();
    order.sort_by_key(|&i| per_answer[i].len());

    let mut best: Option<BTreeSet<(String, Tuple)>> = None;
    let mut explored: u64 = 0;
    let mut chosen: BTreeSet<(String, Tuple)> = BTreeSet::new();
    search_cover(
        &per_answer,
        &order,
        0,
        &mut chosen,
        &mut best,
        m,
        limits,
        &mut explored,
    )?;
    Ok((
        best.map(|facts| Witness::from_facts(facts.into_iter().collect())),
        explored,
    ))
}

#[allow(clippy::too_many_arguments)]
fn search_cover(
    per_answer: &[Vec<BTreeSet<(String, Tuple)>>],
    order: &[usize],
    depth: usize,
    chosen: &mut BTreeSet<(String, Tuple)>,
    best: &mut Option<BTreeSet<(String, Tuple)>>,
    m: usize,
    limits: &SearchLimits,
    explored: &mut u64,
) -> Result<(), CoreError> {
    // Prune on the budget and on the best solution found so far.
    let bound = best
        .as_ref()
        .map(|b| b.len().saturating_sub(1))
        .unwrap_or(m);
    if chosen.len() > bound {
        return Ok(());
    }
    if depth == order.len() {
        if best
            .as_ref()
            .map(|b| chosen.len() < b.len())
            .unwrap_or(true)
        {
            *best = Some(chosen.clone());
        }
        return Ok(());
    }
    *explored += 1;
    if *explored > limits.max_branches {
        return Err(CoreError::SearchSpaceTooLarge(format!(
            "provenance cover search exceeded {} branches",
            limits.max_branches
        )));
    }
    let answer = order[depth];
    for derivation in &per_answer[answer] {
        let added: Vec<(String, Tuple)> = derivation
            .iter()
            .filter(|f| !chosen.contains(*f))
            .cloned()
            .collect();
        for f in &added {
            chosen.insert(f.clone());
        }
        search_cover(
            per_answer,
            order,
            depth + 1,
            chosen,
            best,
            m,
            limits,
            explored,
        )?;
        for f in &added {
            chosen.remove(f);
        }
    }
    Ok(())
}

fn decide_monotone(
    query: &AnyQuery,
    disjuncts: &[ConjunctiveQuery],
    db: &Database,
    m: usize,
    limits: &SearchLimits,
) -> Result<QdsiOutcome, CoreError> {
    // Corollary 3.2 fast path: a true Boolean CQ/UCQ needs at most ‖Q‖ facts,
    // a false one needs none, so ‖Q‖ ≤ M answers "yes" in constant time.
    if query.is_boolean() {
        if let Some(tableau) = query.tableau_size() {
            if tableau <= m {
                return Ok(QdsiOutcome {
                    scale_independent: true,
                    witness: None,
                    method: DecisionMethod::BooleanCqFastPath,
                    explored: 0,
                });
            }
        }
    }
    let (witness, explored) = minimal_witness_monotone(query, disjuncts, db, m, limits)?;
    match witness {
        Some(w) if w.size() <= m => Ok(QdsiOutcome {
            scale_independent: true,
            witness: Some(w),
            method: DecisionMethod::ProvenanceCover,
            explored,
        }),
        other => Ok(QdsiOutcome {
            scale_independent: false,
            witness: other.filter(|w| w.size() <= m),
            method: DecisionMethod::ProvenanceCover,
            explored,
        }),
    }
}

fn decide_fo(
    query: &AnyQuery,
    db: &Database,
    m: usize,
    limits: &SearchLimits,
) -> Result<QdsiOutcome, CoreError> {
    let facts = db.all_facts();
    let n = facts.len();
    // Number of subsets of size ≤ m (checked against the guard).
    let mut subsets: u64 = 0;
    let mut acc: u64 = 1;
    for k in 0..=m.min(n) {
        if k > 0 {
            acc = acc.saturating_mul((n - k + 1) as u64) / k as u64;
        }
        subsets = subsets.saturating_add(acc);
        if subsets > limits.max_subsets {
            return Err(CoreError::SearchSpaceTooLarge(format!(
                "FO witness search over {n} facts with M = {m} exceeds {} candidate subsets",
                limits.max_subsets
            )));
        }
    }

    let target = query.answer_set(db)?;
    let mut explored: u64 = 0;
    // Enumerate subsets of size ≤ m by recursive choice.
    let mut current: Vec<(String, Tuple)> = Vec::new();
    let found = enumerate_subsets(
        query,
        db,
        &target,
        &facts,
        0,
        m,
        &mut current,
        &mut explored,
    )?;
    Ok(QdsiOutcome {
        scale_independent: found.is_some(),
        witness: found,
        method: DecisionMethod::SubsetEnumeration,
        explored,
    })
}

#[allow(clippy::too_many_arguments)]
fn enumerate_subsets(
    query: &AnyQuery,
    db: &Database,
    target: &BTreeSet<Tuple>,
    facts: &[(String, Tuple)],
    start: usize,
    remaining: usize,
    current: &mut Vec<(String, Tuple)>,
    explored: &mut u64,
) -> Result<Option<Witness>, CoreError> {
    *explored += 1;
    let sub = db.sub_database(current)?;
    if &query.answer_set(&sub)? == target {
        return Ok(Some(Witness::from_facts(current.clone())));
    }
    if remaining == 0 {
        return Ok(None);
    }
    for i in start..facts.len() {
        current.push(facts[i].clone());
        let found = enumerate_subsets(
            query,
            db,
            target,
            facts,
            i + 1,
            remaining - 1,
            current,
            explored,
        )?;
        current.pop();
        if found.is_some() {
            return Ok(found);
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_data::schema::social_schema;
    use si_data::tuple;
    use si_query::ast::{c, v, Atom};
    use si_query::{ConjunctiveQuery, FoQuery, Formula, UnionQuery};

    fn db() -> Database {
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "NYC"],
                tuple![3, "cat", "NYC"],
                tuple![4, "dan", "LA"],
            ],
        )
        .unwrap();
        db.insert_all(
            "friend",
            vec![tuple![1, 2], tuple![1, 3], tuple![1, 4], tuple![2, 3]],
        )
        .unwrap();
        db
    }

    fn q1_bound(p: i64) -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            "Q1",
            vec!["name".into()],
            vec![
                Atom::new("friend", vec![c(p), v("id")]),
                Atom::new("person", vec![v("id"), v("name"), c("NYC")]),
            ],
        )
    }

    #[test]
    fn whole_database_budget_is_always_yes() {
        let q: AnyQuery = q1_bound(1).into();
        let d = db();
        let out = decide_qdsi(&q, &d, d.size(), &SearchLimits::default()).unwrap();
        assert!(out.scale_independent);
        assert_eq!(out.method, DecisionMethod::WholeDatabase);
    }

    #[test]
    fn q1_needs_two_facts_per_answer() {
        let q: AnyQuery = q1_bound(1).into();
        let d = db();
        // Person 1 has NYC friends 2 and 3: answers {bob, cat}; each answer
        // needs its friend edge and its person tuple → minimum witness 4.
        let out = decide_qdsi(&q, &d, 4, &SearchLimits::default()).unwrap();
        assert!(out.scale_independent);
        assert_eq!(out.method, DecisionMethod::ProvenanceCover);
        let w = out.witness.unwrap();
        assert_eq!(w.size(), 4);
        assert!(crate::si::check_witness(&q, &d, &w, 4).unwrap());

        let out = decide_qdsi(&q, &d, 3, &SearchLimits::default()).unwrap();
        assert!(!out.scale_independent);
    }

    #[test]
    fn shared_facts_are_counted_once() {
        // Q(n1, n2) :- friend(x, y), person(y, n1, "NYC"), person(y, n2, "NYC")
        // Answers repeat the same person fact; the cover must share it.
        let q = ConjunctiveQuery::new(
            "Q",
            vec!["y".into()],
            vec![
                Atom::new("friend", vec![v("x"), v("y")]),
                Atom::new("person", vec![v("y"), v("n"), c("NYC")]),
            ],
        );
        let d = db();
        // Answers: y ∈ {2, 3} (via friend(1,2); friend(1,3)/friend(2,3)).
        let q: AnyQuery = q.into();
        let out = decide_qdsi(&q, &d, 4, &SearchLimits::default()).unwrap();
        assert!(out.scale_independent);
        assert_eq!(out.witness.unwrap().size(), 4);
        let out = decide_qdsi(&q, &d, 3, &SearchLimits::default()).unwrap();
        assert!(!out.scale_independent);
    }

    #[test]
    fn boolean_cq_fast_path() {
        let q: AnyQuery = ConjunctiveQuery::new(
            "B",
            vec![],
            vec![
                Atom::new("friend", vec![v("x"), v("y")]),
                Atom::new("person", vec![v("y"), v("n"), c("NYC")]),
            ],
        )
        .into();
        let d = db();
        let out = decide_qdsi(&q, &d, 2, &SearchLimits::default()).unwrap();
        assert!(out.scale_independent);
        assert_eq!(out.method, DecisionMethod::BooleanCqFastPath);
        // With M = 1 the fast path does not apply; the true minimum is 2.
        let out = decide_qdsi(&q, &d, 1, &SearchLimits::default()).unwrap();
        assert!(!out.scale_independent);
        assert_eq!(out.method, DecisionMethod::ProvenanceCover);
    }

    #[test]
    fn false_boolean_cq_has_empty_witness() {
        let q: AnyQuery = ConjunctiveQuery::new(
            "B",
            vec![],
            vec![Atom::new("person", vec![v("x"), v("n"), c("Tokyo")])],
        )
        .into();
        let d = db();
        let out = decide_qdsi(&q, &d, 0, &SearchLimits::default()).unwrap();
        assert!(out.scale_independent);
    }

    #[test]
    fn ucq_witness_covers_all_disjunct_answers() {
        let u = UnionQuery::new("U", vec![q1_bound(1), q1_bound(2)]).unwrap();
        let q: AnyQuery = u.into();
        let d = db();
        // Answers: from p=1: bob, cat; from p=2: cat. "cat" can be derived
        // via either disjunct; the cover picks the cheapest combination:
        // {friend(1,2), person(2)}, {friend(1,3) or friend(2,3), person(3)} → 4 facts.
        let out = decide_qdsi(&q, &d, 4, &SearchLimits::default()).unwrap();
        assert!(out.scale_independent);
        assert_eq!(out.witness.unwrap().size(), 4);
        let out = decide_qdsi(&q, &d, 3, &SearchLimits::default()).unwrap();
        assert!(!out.scale_independent);
    }

    #[test]
    fn fo_subset_enumeration_handles_negation() {
        // Q() := ∃x,n,c (person(x,n,c) ∧ ¬∃y friend(x,y))
        // "some person has no friends" — true (person 4 has no outgoing edge
        // … actually person 4 has none; person 3 has none either).
        let body = Formula::exists(
            vec!["x".into(), "n".into(), "ci".into()],
            Formula::Atom(Atom::new("person", vec![v("x"), v("n"), v("ci")])).and(
                Formula::exists(
                    vec!["y".into()],
                    Formula::Atom(Atom::new("friend", vec![v("x"), v("y")])),
                )
                .negate(),
            ),
        );
        let q: AnyQuery = FoQuery::boolean("NoFriends", body).into();
        let d = db();
        // A single person fact whose id has no friend edge in the *witness*
        // suffices: note the witness may drop friend edges freely because the
        // query is not monotone.  So M = 1 works.
        let out = decide_qdsi(&q, &d, 1, &SearchLimits::default()).unwrap();
        assert!(out.scale_independent);
        assert_eq!(out.method, DecisionMethod::SubsetEnumeration);
        assert_eq!(out.witness.unwrap().size(), 1);

        // M = 0: the empty database makes the query false while Q(D) is true.
        let out = decide_qdsi(&q, &d, 0, &SearchLimits::default()).unwrap();
        assert!(!out.scale_independent);
    }

    #[test]
    fn fo_search_guard_triggers_on_large_budgets() {
        let q: AnyQuery = FoQuery::boolean(
            "B",
            Formula::exists(
                vec!["x".into(), "y".into()],
                Formula::Atom(Atom::new("friend", vec![v("x"), v("y")])),
            ),
        )
        .into();
        let d = db();
        let limits = SearchLimits {
            max_subsets: 5,
            max_branches: 5,
        };
        let err = decide_qdsi(&q, &d, 4, &limits).unwrap_err();
        assert!(matches!(err, CoreError::SearchSpaceTooLarge(_)));
    }

    #[test]
    fn cover_search_guard_triggers() {
        let q: AnyQuery = q1_bound(1).into();
        let d = db();
        let limits = SearchLimits {
            max_subsets: 1,
            max_branches: 1,
        };
        let err = decide_qdsi(&q, &d, 2, &limits).unwrap_err();
        assert!(matches!(err, CoreError::SearchSpaceTooLarge(_)));
    }

    #[test]
    fn access_fast_path_answers_via_bounded_plan() {
        use si_access::{facebook_access_schema, AccessIndexedDatabase};

        let q: AnyQuery = q1_bound(1).into();
        let adb = AccessIndexedDatabase::new(db(), facebook_access_schema(5000)).unwrap();
        let stats = adb.statistics();
        // Person 1 has NYC friends 2 and 3: the plan fetches 3 friend edges
        // and 3 person tuples (one LA) — a 6-fact witness, within m = 6.
        let out = decide_qdsi_with_access(&q, &adb, 6, &SearchLimits::default(), &stats).unwrap();
        assert!(out.scale_independent);
        assert_eq!(out.method, DecisionMethod::BoundedPlanFastPath);
        assert_eq!(out.explored, 0);
        let w = out.witness.unwrap();
        assert!(w.size() <= 6);
        assert!(crate::si::check_witness(&q, adb.database(), &w, 6).unwrap());

        // A tighter budget defeats the plan witness and falls back to the
        // exact provenance search (minimum witness is 4).
        let out = decide_qdsi_with_access(&q, &adb, 4, &SearchLimits::default(), &stats).unwrap();
        assert!(out.scale_independent);
        assert_eq!(out.method, DecisionMethod::ProvenanceCover);

        // Open queries (free variables, no parameters supplied) cannot take
        // the fast path and fall back too.
        let open: AnyQuery = ConjunctiveQuery::new(
            "Q1",
            vec!["name".into()],
            vec![
                Atom::new("friend", vec![v("p"), v("id")]),
                Atom::new("person", vec![v("id"), v("name"), c("NYC")]),
            ],
        )
        .into();
        let out =
            decide_qdsi_with_access(&open, &adb, 4, &SearchLimits::default(), &stats).unwrap();
        assert_ne!(out.method, DecisionMethod::BoundedPlanFastPath);
    }

    #[test]
    fn monotone_empty_answer_gives_empty_witness() {
        let q: AnyQuery = q1_bound(99).into();
        let d = db();
        let out = decide_qdsi(&q, &d, 0, &SearchLimits::default()).unwrap();
        assert!(out.scale_independent);
        assert_eq!(out.witness.unwrap().size(), 0);
    }
}
