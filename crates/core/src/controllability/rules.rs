//! The inductive rules for x̄-controlled FO queries (Section 4).
//!
//! A query `Q(x̄)` is *x̄-controlled* under an access schema `A` when the
//! rules of Section 4 derive it; Theorem 4.2 then guarantees that `Q` is
//! efficiently x̄-scale-independent under `A`.  This module computes, for a
//! formula, the family of **minimal controlling sets**: `Q` is x̄-controlled
//! iff some derived set is contained in `x̄` (the *expansion* rule closes the
//! family upward, so keeping only minimal sets loses nothing).
//!
//! The rules implemented (names as in the paper):
//!
//! * **atoms** — `R(ȳ)` is controlled by the variables sitting on the `X`
//!   attributes of any constraint `(R, X, N, T) ∈ A` (constants in those
//!   positions need not be provided).  In addition, following the reading
//!   used in Example 4.1 ("all base relations are … controlled by all their
//!   free variables"), an atom is always controlled by the full set of its
//!   variables: providing every attribute value is a membership probe that
//!   retrieves at most one tuple.
//! * **conditions** — Boolean combinations of equalities are controlled by
//!   their free variables.
//! * **disjunction**, **conjunction**, **safe negation**,
//!   **existential quantification**, **universal quantification**,
//!   **expansion** — as in the paper; see the match arms below.

use crate::error::CoreError;
use si_access::AccessSchema;
use si_query::{Atom, FoQuery, Formula, Term, Var};
use std::collections::BTreeSet;

/// A controlling set of variables.
pub type VarSet = BTreeSet<Var>;

/// A family of controlling sets, kept minimal under set inclusion.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ControlFamily {
    sets: Vec<VarSet>,
}

impl ControlFamily {
    /// The empty family: the (sub)formula is not controlled by anything.
    pub fn none() -> Self {
        ControlFamily { sets: Vec::new() }
    }

    /// A family with a single controlling set.
    pub fn single(set: VarSet) -> Self {
        let mut f = ControlFamily::none();
        f.insert(set);
        f
    }

    /// Inserts a controlling set, keeping the family minimal: supersets of
    /// existing sets are dropped, and existing supersets of the new set are
    /// removed.
    pub fn insert(&mut self, set: VarSet) {
        if self.sets.iter().any(|s| s.is_subset(&set)) {
            return;
        }
        self.sets.retain(|s| !set.is_subset(s));
        self.sets.push(set);
    }

    /// Merges another family into this one.
    pub fn extend(&mut self, other: ControlFamily) {
        for s in other.sets {
            self.insert(s);
        }
    }

    /// The minimal controlling sets.
    pub fn sets(&self) -> &[VarSet] {
        &self.sets
    }

    /// True iff no controlling set was derived.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// True iff the formula is controlled by `vars`, i.e. some derived set is
    /// contained in `vars` (this realises the *expansion* rule).
    pub fn controlled_by(&self, vars: &VarSet) -> bool {
        self.sets.iter().any(|s| s.is_subset(vars))
    }

    /// True iff the formula is *controlled* in the paper's absolute sense:
    /// controlled by (a subset of) its own free variables — with minimal
    /// sets this is simply non-emptiness, because every derived set consists
    /// of free variables.
    pub fn is_controlled(&self) -> bool {
        !self.is_empty()
    }

    /// The smallest controlling set, if any (used by QCntl).
    pub fn smallest(&self) -> Option<&VarSet> {
        self.sets.iter().min_by_key(|s| s.len())
    }
}

/// Derives controlling-set families for formulas under a fixed access schema.
#[derive(Debug, Clone)]
pub struct Controllability<'a> {
    access: &'a AccessSchema,
}

impl<'a> Controllability<'a> {
    /// Creates an analyzer for the given access schema.
    pub fn new(access: &'a AccessSchema) -> Self {
        Controllability { access }
    }

    /// The family of minimal controlling sets of `formula`.
    pub fn controlling_sets(&self, formula: &Formula) -> ControlFamily {
        match formula {
            Formula::True | Formula::False => ControlFamily::single(VarSet::new()),
            Formula::Eq(l, r) => {
                // conditions rule: controlled by its free variables.
                let mut vars = VarSet::new();
                for t in [l, r] {
                    if let Term::Var(v) = t {
                        vars.insert(v.clone());
                    }
                }
                ControlFamily::single(vars)
            }
            Formula::Atom(atom) => self.atom_sets(atom),
            Formula::And(f, g) => self.conjunction_sets(f, g),
            Formula::Or(f, g) => {
                // disjunction rule: union of controlling sets of the two sides.
                let cf = self.controlling_sets(f);
                let cg = self.controlling_sets(g);
                let mut out = ControlFamily::none();
                for sf in cf.sets() {
                    for sg in cg.sets() {
                        out.insert(sf.union(sg).cloned().collect());
                    }
                }
                out
            }
            Formula::Not(_) => {
                // Standalone negation is not covered by any rule; it only
                // becomes usable through the safe-negation pattern handled in
                // the conjunction case.
                ControlFamily::none()
            }
            Formula::Implies(_, _) => {
                // Implication outside the universal-quantification pattern is
                // not covered by the rules.
                ControlFamily::none()
            }
            Formula::Exists(vars, body) => {
                // existential quantification: drop controlling sets that
                // mention a quantified variable (those values can no longer
                // be provided from outside).
                let inner = self.controlling_sets(body);
                let quantified: BTreeSet<&Var> = vars.iter().collect();
                let mut out = ControlFamily::none();
                for s in inner.sets() {
                    if s.iter().all(|v| !quantified.contains(v)) {
                        out.insert(s.clone());
                    }
                }
                out
            }
            Formula::Forall(vars, body) => self.forall_sets(vars, body),
        }
    }

    /// Convenience: controlling sets of a named query's body.
    pub fn query_controlling_sets(&self, query: &FoQuery) -> ControlFamily {
        self.controlling_sets(&query.body)
    }

    /// Is `query` x̄-controlled for `x̄ = vars`?
    pub fn is_controlled_by(&self, query: &FoQuery, vars: &[Var]) -> bool {
        let set: VarSet = vars.iter().cloned().collect();
        let free = query.body.free_variables();
        if !set.iter().all(|v| free.contains(v)) {
            // Controlling variables must be free variables of the query
            // (expansion allows supersets only within the free variables).
            return false;
        }
        self.query_controlling_sets(query).controlled_by(&set)
    }

    /// Is `query` controlled (by all of its free variables)?
    pub fn is_controlled(&self, query: &FoQuery) -> bool {
        self.query_controlling_sets(query).is_controlled()
    }

    fn atom_sets(&self, atom: &Atom) -> ControlFamily {
        let mut family = ControlFamily::none();
        // Membership probe: all variables of the atom.
        let all_vars: VarSet = atom.variables().into_iter().collect();
        family.insert(all_vars);
        // One controlling set per applicable access constraint.
        for constraint in self.access.constraints_on(&atom.relation) {
            if let Some(vars) = self.constraint_variables(atom, &constraint.on) {
                family.insert(vars);
            }
        }
        // Embedded constraints whose output covers every attribute of the
        // relation behave like plain constraints for the plain rules.
        for embedded in self.access.embedded_on(&atom.relation) {
            if embedded.onto.len() >= atom.terms.len() {
                if let Some(vars) = self.constraint_variables(atom, &embedded.from) {
                    family.insert(vars);
                }
            }
        }
        family
    }

    /// The variables of `atom` sitting on the attributes `on` of its relation
    /// (positions are resolved by attribute order of the access constraint's
    /// relation).  Returns `None` when the attribute list cannot be resolved
    /// against the atom's arity — in that case the constraint is ignored.
    fn constraint_variables(&self, atom: &Atom, on: &[String]) -> Option<VarSet> {
        // Attribute names are positional: we need the relation schema to map
        // names to positions.  The access schema was validated against the
        // database schema, but here we only have the atom; we rely on the
        // convention (used throughout the workspace) that constraints store
        // attribute names and atoms are positional over the same relation
        // schema.  The position lookup is provided by the schema recorded in
        // the access schema's constraints, so we ask the atom's relation via
        // the constraint's attribute order: the caller must have kept the
        // schema consistent.  We therefore resolve positions lazily through
        // the `schema` captured at construction time of the higher-level
        // analyzer (see `ControllabilityWithSchema`).
        let _ = (atom, on);
        None
    }
}

/// Controllability analysis that can resolve attribute names to atom
/// positions through the database schema.  This is the analyzer used by the
/// rest of the crate; [`Controllability`] exists separately only to keep the
/// rule implementations testable without a schema.
#[derive(Debug, Clone)]
pub struct ControllabilityAnalyzer<'a> {
    access: &'a AccessSchema,
    schema: &'a si_data::DatabaseSchema,
}

impl<'a> ControllabilityAnalyzer<'a> {
    /// Creates an analyzer.
    pub fn new(schema: &'a si_data::DatabaseSchema, access: &'a AccessSchema) -> Self {
        ControllabilityAnalyzer { access, schema }
    }

    /// The family of minimal controlling sets of `formula`.
    pub fn controlling_sets(&self, formula: &Formula) -> Result<ControlFamily, CoreError> {
        Ok(match formula {
            Formula::True | Formula::False => ControlFamily::single(VarSet::new()),
            Formula::Eq(l, r) => {
                let mut vars = VarSet::new();
                for t in [l, r] {
                    if let Term::Var(v) = t {
                        vars.insert(v.clone());
                    }
                }
                ControlFamily::single(vars)
            }
            Formula::Atom(atom) => self.atom_sets(atom)?,
            Formula::And(f, g) => self.conjunction_sets(f, g)?,
            Formula::Or(f, g) => {
                let cf = self.controlling_sets(f)?;
                let cg = self.controlling_sets(g)?;
                let mut out = ControlFamily::none();
                for sf in cf.sets() {
                    for sg in cg.sets() {
                        out.insert(sf.union(sg).cloned().collect());
                    }
                }
                out
            }
            Formula::Not(_) | Formula::Implies(_, _) => ControlFamily::none(),
            Formula::Exists(vars, body) => {
                let inner = self.controlling_sets(body)?;
                let quantified: BTreeSet<&Var> = vars.iter().collect();
                let mut out = ControlFamily::none();
                for s in inner.sets() {
                    if s.iter().all(|v| !quantified.contains(v)) {
                        out.insert(s.clone());
                    }
                }
                out
            }
            Formula::Forall(vars, body) => self.forall_sets(vars, body)?,
        })
    }

    /// Controlling sets of a named query's body.
    pub fn query_controlling_sets(&self, query: &FoQuery) -> Result<ControlFamily, CoreError> {
        self.controlling_sets(&query.body)
    }

    /// Is `query` x̄-controlled for `x̄ = vars`?
    pub fn is_controlled_by(&self, query: &FoQuery, vars: &[Var]) -> Result<bool, CoreError> {
        let set: VarSet = vars.iter().cloned().collect();
        let free = query.body.free_variables();
        if !set.iter().all(|v| free.contains(v)) {
            return Ok(false);
        }
        Ok(self.query_controlling_sets(query)?.controlled_by(&set))
    }

    /// Is `query` controlled by (all of) its free variables?
    pub fn is_controlled(&self, query: &FoQuery) -> Result<bool, CoreError> {
        Ok(self.query_controlling_sets(query)?.is_controlled())
    }

    fn atom_sets(&self, atom: &Atom) -> Result<ControlFamily, CoreError> {
        let rel = self.schema.relation(&atom.relation)?;
        if rel.arity() != atom.terms.len() {
            return Err(CoreError::Query(si_query::QueryError::AtomArity {
                relation: atom.relation.clone(),
                expected: rel.arity(),
                actual: atom.terms.len(),
            }));
        }
        let mut family = ControlFamily::none();
        // Membership-probe reading: the atom is controlled by all of its
        // variables.
        family.insert(atom.variables().into_iter().collect());
        let mut add_for = |attrs: &[String]| -> Result<(), CoreError> {
            let mut vars = VarSet::new();
            for a in attrs {
                let pos = rel.position_of(a)?;
                match &atom.terms[pos] {
                    Term::Var(v) => {
                        vars.insert(v.clone());
                    }
                    Term::Const(_) => {
                        // A constant already provides the value; nothing to add.
                    }
                }
            }
            family.insert(vars);
            Ok(())
        };
        for constraint in self.access.constraints_on(&atom.relation) {
            add_for(&constraint.on)?;
        }
        for embedded in self.access.embedded_on(&atom.relation) {
            // An embedded constraint whose output covers all attributes acts
            // like a plain constraint here; narrower ones are handled by the
            // embedded-controllability rules.
            if embedded.onto.len() == rel.arity() {
                add_for(&embedded.from)?;
            }
        }
        Ok(family)
    }

    fn conjunction_sets(&self, f: &Formula, g: &Formula) -> Result<ControlFamily, CoreError> {
        let mut out = ControlFamily::none();
        // Safe negation: Q ∧ ¬Q' with Q' controlled and FV(Q') ⊆ FV(Q).
        for (positive, negated) in [(f, g), (g, f)] {
            if let Formula::Not(inner) = negated {
                let inner_free = inner.free_variables();
                let positive_free = positive.free_variables();
                if inner_free.is_subset(&positive_free)
                    && self.controlling_sets(inner)?.is_controlled()
                {
                    out.extend(self.controlling_sets(positive)?);
                }
            }
        }
        // Plain conjunction rule.
        let cf = self.controlling_sets(f)?;
        let cg = self.controlling_sets(g)?;
        let free_f = f.free_variables();
        let free_g = g.free_variables();
        for sf in cf.sets() {
            for sg in cg.sets() {
                // x̄1 ∪ (x̄2 − ȳ1): provide f's controlling set, then g's
                // minus whatever f's output already binds.
                let left: VarSet = sf
                    .iter()
                    .cloned()
                    .chain(sg.iter().filter(|v| !free_f.contains(*v)).cloned())
                    .collect();
                out.insert(left);
                // Symmetric case x̄2 ∪ (x̄1 − ȳ2).
                let right: VarSet = sg
                    .iter()
                    .cloned()
                    .chain(sf.iter().filter(|v| !free_g.contains(*v)).cloned())
                    .collect();
                out.insert(right);
            }
        }
        Ok(out)
    }

    fn forall_sets(&self, vars: &[Var], body: &Formula) -> Result<ControlFamily, CoreError> {
        // universal quantification rule: ∀ȳ (Q(x̄, ȳ) → Q'(z̄)) is
        // x̄-controlled when Q is x̄-controlled and Q' is controlled with
        // z̄ ⊆ x̄ ∪ ȳ.
        if let Formula::Implies(premise, conclusion) = body {
            let premise_free = premise.free_variables();
            let conclusion_free = conclusion.free_variables();
            let quantified: BTreeSet<&Var> = vars.iter().collect();
            let allowed: BTreeSet<&Var> = premise_free.iter().chain(vars.iter()).collect();
            if conclusion_free.iter().all(|v| allowed.contains(v))
                && self.controlling_sets(conclusion)?.is_controlled()
            {
                let inner = self.controlling_sets(premise)?;
                let mut out = ControlFamily::none();
                for s in inner.sets() {
                    if s.iter().all(|v| !quantified.contains(v)) {
                        out.insert(s.clone());
                    }
                }
                return Ok(out);
            }
        }
        Ok(ControlFamily::none())
    }
}

// The schema-less `Controllability` type shares the conjunction/forall logic
// with the analyzer; the atom rule cannot resolve attribute positions without
// a schema, so it only exposes the membership-probe set there.
impl<'a> Controllability<'a> {
    fn conjunction_sets(&self, f: &Formula, g: &Formula) -> ControlFamily {
        let mut out = ControlFamily::none();
        for (positive, negated) in [(f, g), (g, f)] {
            if let Formula::Not(inner) = negated {
                let inner_free = inner.free_variables();
                let positive_free = positive.free_variables();
                if inner_free.is_subset(&positive_free)
                    && self.controlling_sets(inner).is_controlled()
                {
                    out.extend(self.controlling_sets(positive));
                }
            }
        }
        let cf = self.controlling_sets(f);
        let cg = self.controlling_sets(g);
        let free_f = f.free_variables();
        let free_g = g.free_variables();
        for sf in cf.sets() {
            for sg in cg.sets() {
                let left: VarSet = sf
                    .iter()
                    .cloned()
                    .chain(sg.iter().filter(|v| !free_f.contains(*v)).cloned())
                    .collect();
                out.insert(left);
                let right: VarSet = sg
                    .iter()
                    .cloned()
                    .chain(sf.iter().filter(|v| !free_g.contains(*v)).cloned())
                    .collect();
                out.insert(right);
            }
        }
        out
    }

    fn forall_sets(&self, vars: &[Var], body: &Formula) -> ControlFamily {
        if let Formula::Implies(premise, conclusion) = body {
            let premise_free = premise.free_variables();
            let conclusion_free = conclusion.free_variables();
            let quantified: BTreeSet<&Var> = vars.iter().collect();
            let allowed: BTreeSet<&Var> = premise_free.iter().chain(vars.iter()).collect();
            if conclusion_free.iter().all(|v| allowed.contains(v))
                && self.controlling_sets(conclusion).is_controlled()
            {
                let inner = self.controlling_sets(premise);
                let mut out = ControlFamily::none();
                for s in inner.sets() {
                    if s.iter().all(|v| !quantified.contains(v)) {
                        out.insert(s.clone());
                    }
                }
                return out;
            }
        }
        ControlFamily::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_access::{facebook_access_schema, AccessConstraint};
    use si_data::schema::{social_schema, social_schema_dated};
    use si_query::ast::{c, v};
    use si_query::parse_fo_query;

    fn vars(names: &[&str]) -> VarSet {
        names.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn control_family_keeps_minimal_sets() {
        let mut f = ControlFamily::none();
        f.insert(vars(&["a", "b"]));
        f.insert(vars(&["a"]));
        f.insert(vars(&["a", "c"]));
        // {a} subsumes both {a, b} and {a, c}, so only {a} remains.
        assert_eq!(f.sets().len(), 1);
        assert!(f.controlled_by(&vars(&["a"])));
        assert!(f.controlled_by(&vars(&["a", "z"])));
        assert!(!f.controlled_by(&vars(&["b"])));
        assert_eq!(f.smallest().unwrap(), &vars(&["a"]));
    }

    #[test]
    fn q1_is_p_controlled_under_facebook_schema() {
        // Example 4.1: Q1(p, name) is p-controlled.
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let analyzer = ControllabilityAnalyzer::new(&schema, &access);
        let q1 =
            parse_fo_query(r#"Q1(p, name) := exists id. friend(p, id) & person(id, name, "NYC")"#)
                .unwrap();
        assert!(analyzer.is_controlled_by(&q1, &["p".into()]).unwrap());
        assert!(analyzer
            .is_controlled_by(&q1, &["p".into(), "name".into()])
            .unwrap());
        // Not controlled by name alone.
        assert!(!analyzer.is_controlled_by(&q1, &["name".into()]).unwrap());
        // Non-free variables cannot control.
        assert!(!analyzer.is_controlled_by(&q1, &["id".into()]).unwrap());
        let family = analyzer.query_controlling_sets(&q1).unwrap();
        assert_eq!(family.smallest().unwrap(), &vars(&["p"]));
    }

    #[test]
    fn q1_is_not_p_controlled_without_constraints() {
        let schema = social_schema();
        let access = AccessSchema::new();
        let analyzer = ControllabilityAnalyzer::new(&schema, &access);
        let q1 =
            parse_fo_query(r#"Q1(p, name) := exists id. friend(p, id) & person(id, name, "NYC")"#)
                .unwrap();
        assert!(!analyzer.is_controlled_by(&q1, &["p".into()]).unwrap());
        // Even all free variables do not control it: id is existentially
        // quantified and no constraint lets us enumerate it.
        assert!(!analyzer
            .is_controlled_by(&q1, &["p".into(), "name".into()])
            .unwrap());
    }

    #[test]
    fn q3_is_not_controlled_under_plain_schema() {
        // Example 4.1: Q3 is not scale-independent under the plain schema —
        // the existential quantification "forgets" rid, mm, dd.
        let schema = social_schema_dated();
        let access = facebook_access_schema(5000);
        let analyzer = ControllabilityAnalyzer::new(&schema, &access);
        let q3 = parse_fo_query(
            r#"Q3(rn, p, yy) := exists id, rid, pn, mm, dd. friend(p, id) & visit(id, rid, yy, mm, dd) & person(id, pn, "NYC") & restr(rid, rn, "NYC", "A")"#,
        )
        .unwrap();
        assert!(!analyzer
            .is_controlled_by(&q3, &["p".into(), "yy".into()])
            .unwrap());
        assert!(!analyzer
            .is_controlled_by(&q3, &["rn".into(), "p".into(), "yy".into()])
            .unwrap());
    }

    #[test]
    fn atoms_are_controlled_by_all_their_variables() {
        let schema = social_schema();
        let access = AccessSchema::new();
        let analyzer = ControllabilityAnalyzer::new(&schema, &access);
        let q = parse_fo_query("Q(x, y) := friend(x, y)").unwrap();
        assert!(analyzer
            .is_controlled_by(&q, &["x".into(), "y".into()])
            .unwrap());
        assert!(!analyzer.is_controlled_by(&q, &["x".into()]).unwrap());
    }

    #[test]
    fn constants_discharge_constraint_attributes() {
        // friend(1, id): the constraint on id1 is satisfied by the constant,
        // so the atom is ∅-controlled.
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let analyzer = ControllabilityAnalyzer::new(&schema, &access);
        let q = si_query::FoQuery::new(
            "Q",
            vec!["id".into()],
            Formula::Atom(Atom::new("friend", vec![c(1), v("id")])),
        );
        assert!(analyzer.is_controlled_by(&q, &[]).unwrap());
    }

    #[test]
    fn disjunction_unions_controlling_sets() {
        let schema = social_schema();
        let access = facebook_access_schema(5000).with(AccessConstraint::new(
            "person",
            &["city"],
            1_000_000,
            5,
        ));
        let analyzer = ControllabilityAnalyzer::new(&schema, &access);
        // Q(p, id, city) := friend(p, id) | exists n. person(id, n, city)
        let q = parse_fo_query("Q(p, id, city) := friend(p, id) | (exists n. person(id, n, city))")
            .unwrap();
        // friend is p-controlled (id1 constraint); person is city-controlled
        // and id-controlled (key); union needs one set from each side.
        assert!(analyzer
            .is_controlled_by(&q, &["p".into(), "city".into()])
            .unwrap());
        assert!(analyzer
            .is_controlled_by(&q, &["p".into(), "id".into()])
            .unwrap());
        assert!(!analyzer.is_controlled_by(&q, &["p".into()]).unwrap());
    }

    #[test]
    fn safe_negation_keeps_positive_controlling_sets() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let analyzer = ControllabilityAnalyzer::new(&schema, &access);
        // Friends of p that are not friends of q… here: friend(p, id) ∧ ¬friend(id, p).
        let q = parse_fo_query("Q(p, id) := friend(p, id) & ! friend(id, p)").unwrap();
        // friend(id, p) is controlled (by all its variables {id, p} ⊆ FV of
        // the positive part), so the conjunction inherits friend(p, id)'s
        // p-control.
        assert!(analyzer.is_controlled_by(&q, &["p".into()]).unwrap());
    }

    #[test]
    fn standalone_negation_is_not_controlled() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let analyzer = ControllabilityAnalyzer::new(&schema, &access);
        let q = parse_fo_query("Q(p, id) := ! friend(p, id)").unwrap();
        assert!(!analyzer
            .is_controlled_by(&q, &["p".into(), "id".into()])
            .unwrap());
    }

    #[test]
    fn universal_quantification_rule_from_the_paper_example() {
        // The SQL example of Section 4: R(x, y) ∧ x = 1 ∧ ∀z (S(x,y,z) → T(x,y,z)).
        // With (R, A, N, T) and (S, {A,B}, N', T') in A, the query is
        // controlled (T is controlled by all its variables).
        let mut schema = si_data::DatabaseSchema::new();
        schema
            .add_relation(si_data::RelationSchema::new("r", &["a", "b"]))
            .unwrap();
        schema
            .add_relation(si_data::RelationSchema::new("s", &["a", "b", "c"]))
            .unwrap();
        schema
            .add_relation(si_data::RelationSchema::new("t", &["a", "b", "c"]))
            .unwrap();
        let access = AccessSchema::new()
            .with(AccessConstraint::new("r", &["a"], 100, 1))
            .with(AccessConstraint::new("s", &["a", "b"], 50, 1));
        let analyzer = ControllabilityAnalyzer::new(&schema, &access);
        let q =
            parse_fo_query("Q(x, y) := r(x, y) & x = 1 & (forall z. (s(x, y, z) -> t(x, y, z)))")
                .unwrap();
        assert!(analyzer.is_controlled_by(&q, &["x".into()]).unwrap());
        // Without the constraint on S, the universally quantified z cannot be
        // enumerated boundedly: every controlling set of the premise mentions
        // z, so the ∀ rule derives nothing and the query is not controlled at
        // all — exactly the "build an index on A,B for S" advice of the paper.
        let weaker = AccessSchema::new().with(AccessConstraint::new("r", &["a"], 100, 1));
        let analyzer = ControllabilityAnalyzer::new(&schema, &weaker);
        assert!(!analyzer.is_controlled_by(&q, &["x".into()]).unwrap());
        assert!(!analyzer
            .is_controlled_by(&q, &["x".into(), "y".into()])
            .unwrap());
    }

    #[test]
    fn schema_less_analyzer_only_uses_membership_probes() {
        let access = facebook_access_schema(5000);
        let analyzer = Controllability::new(&access);
        let q = parse_fo_query("Q(x, y) := friend(x, y)").unwrap();
        let family = analyzer.query_controlling_sets(&q);
        assert_eq!(family.sets().len(), 1);
        assert!(analyzer.is_controlled_by(&q, &["x".into(), "y".into()]));
        assert!(!analyzer.is_controlled_by(&q, &["x".into()]));
        assert!(analyzer.is_controlled(&q));
    }

    #[test]
    fn atom_arity_mismatch_is_an_error() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let analyzer = ControllabilityAnalyzer::new(&schema, &access);
        let bad = Formula::Atom(Atom::new("friend", vec![v("x")]));
        assert!(analyzer.controlling_sets(&bad).is_err());
        let unknown = Formula::Atom(Atom::new("enemy", vec![v("x")]));
        assert!(analyzer.controlling_sets(&unknown).is_err());
    }
}
