//! Embedded controllability: x̄\[ȳ\]-controlled queries (Section 4).
//!
//! Embedded access constraints `(R, X[Y], N, T)` let a bounded plan
//! *enumerate* values of the `Y` attributes from values of the `X`
//! attributes (at most `N` combinations).  The paper's rules 1–4 compose such
//! steps across a conjunction; their combined power for conjunctions of atoms
//! is captured by a **closure computation** analogous to the closure of a set
//! of functional dependencies:
//!
//! starting from the provided variables (parameters and constants), repeatedly
//! apply any constraint whose input variables are already known, adding its
//! output variables — each application enumerates at most `N` value
//! combinations, so the whole closure stays bounded.
//!
//! *Proposition 4.5* then reads: if the closure of the parameters covers the
//! output variables, the query (with parameters fixed) is efficiently
//! scale-independent.  The bounded planner additionally asks for the closure
//! to cover *all* body variables, which yields a complete fetch-and-check
//! evaluation strategy (this is exactly what Example 4.6 does for `Q3`).

use crate::error::CoreError;
use si_access::AccessSchema;
use si_data::DatabaseSchema;
use si_query::{ConjunctiveQuery, Term, Var};
use std::collections::BTreeSet;

/// One applied enumeration step in a closure derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosureStep {
    /// The relation whose constraint was applied.
    pub relation: String,
    /// Index of the atom (within the query's atom list) the step applies to.
    pub atom_index: usize,
    /// Variables that had to be known before the step.
    pub requires: BTreeSet<Var>,
    /// Variables newly bound by the step.
    pub provides: BTreeSet<Var>,
    /// The cardinality bound of the constraint used.
    pub bound: usize,
    /// The time bound of the constraint used.
    pub time: u64,
    /// Human-readable description of the constraint used.
    pub via: String,
}

/// The result of an embedded-controllability closure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmbeddedClosure {
    /// Variables known at the end (the `ȳ` of the derived `x̄[ȳ]` pair).
    pub known: BTreeSet<Var>,
    /// The steps applied, in order.
    pub steps: Vec<ClosureStep>,
}

impl EmbeddedClosure {
    /// True iff every variable in `vars` ends up known.
    pub fn covers<'v>(&self, vars: impl IntoIterator<Item = &'v Var>) -> bool {
        vars.into_iter().all(|v| self.known.contains(v))
    }

    /// The product of the step bounds — the worst-case number of candidate
    /// assignments the closure can enumerate (data-independent).
    pub fn enumeration_bound(&self) -> u64 {
        self.steps
            .iter()
            .fold(1u64, |acc, s| acc.saturating_mul(s.bound as u64))
    }
}

/// Analyzer for embedded controllability of conjunctions of atoms.
#[derive(Debug, Clone)]
pub struct EmbeddedControllability<'a> {
    schema: &'a DatabaseSchema,
    access: &'a AccessSchema,
}

impl<'a> EmbeddedControllability<'a> {
    /// Creates an analyzer.
    pub fn new(schema: &'a DatabaseSchema, access: &'a AccessSchema) -> Self {
        EmbeddedControllability { schema, access }
    }

    /// Computes the closure of `params` under the embedded (and lifted plain)
    /// constraints applicable to the atoms of `query`.
    ///
    /// Constants occurring in atoms and variables equated to constants are
    /// treated as provided.  Variable/variable equalities propagate
    /// knowledge in both directions.
    pub fn closure(
        &self,
        query: &ConjunctiveQuery,
        params: &[Var],
    ) -> Result<EmbeddedClosure, CoreError> {
        query.validate(self.schema)?;
        let mut known: BTreeSet<Var> = params.iter().cloned().collect();
        // Variables equated to constants are known.
        for (l, r) in &query.equalities {
            match (l, r) {
                (Term::Var(v), Term::Const(_)) | (Term::Const(_), Term::Var(v)) => {
                    known.insert(v.clone());
                }
                _ => {}
            }
        }
        let mut steps: Vec<ClosureStep> = Vec::new();
        let mut applied: BTreeSet<(usize, String)> = BTreeSet::new();
        loop {
            let mut progress = false;
            // Equality propagation.
            for (l, r) in &query.equalities {
                if let (Term::Var(a), Term::Var(b)) = (l, r) {
                    if known.contains(a) && known.insert(b.clone()) {
                        progress = true;
                    }
                    if known.contains(b) && known.insert(a.clone()) {
                        progress = true;
                    }
                }
            }
            // Constraint applications.
            for (atom_index, atom) in query.atoms.iter().enumerate() {
                let rel = self.schema.relation(&atom.relation)?;
                for constraint in self.access.all_embedded_on(&atom.relation, self.schema) {
                    let key = (atom_index, constraint.to_string());
                    if applied.contains(&key) {
                        continue;
                    }
                    // Map the constraint's attribute names to the atom's terms.
                    let mut requires: BTreeSet<Var> = BTreeSet::new();
                    let mut inputs_known = true;
                    for a in &constraint.from {
                        let pos = rel.position_of(a)?;
                        match &atom.terms[pos] {
                            Term::Const(_) => {}
                            Term::Var(v) => {
                                if known.contains(v) {
                                    requires.insert(v.clone());
                                } else {
                                    inputs_known = false;
                                    break;
                                }
                            }
                        }
                    }
                    if !inputs_known {
                        continue;
                    }
                    let mut provides: BTreeSet<Var> = BTreeSet::new();
                    for a in &constraint.onto {
                        let pos = rel.position_of(a)?;
                        if let Term::Var(v) = &atom.terms[pos] {
                            if !known.contains(v) {
                                provides.insert(v.clone());
                            }
                        }
                    }
                    if provides.is_empty() {
                        continue;
                    }
                    for v in &provides {
                        known.insert(v.clone());
                    }
                    applied.insert(key);
                    steps.push(ClosureStep {
                        relation: atom.relation.clone(),
                        atom_index,
                        requires,
                        provides,
                        bound: constraint.bound,
                        time: constraint.time,
                        via: constraint.to_string(),
                    });
                    progress = true;
                }
            }
            if !progress {
                break;
            }
        }
        Ok(EmbeddedClosure { known, steps })
    }

    /// Proposition 4.5 check: with `params` fixed, can the query's *head*
    /// variables be enumerated boundedly?  (The query is x̄[x̄ ∪ ȳ]-controlled
    /// with x̄ = params and ȳ ⊇ head ∖ params.)
    pub fn is_embedded_controlled(
        &self,
        query: &ConjunctiveQuery,
        params: &[Var],
    ) -> Result<bool, CoreError> {
        let closure = self.closure(query, params)?;
        Ok(query.head.iter().all(|v| closure.known.contains(v)))
    }

    /// Stronger check used by the bounded planner: with `params` fixed, can
    /// *every* body variable be enumerated boundedly?  When this holds the
    /// query can be answered by enumerating candidate assignments and
    /// verifying each atom with a membership probe.
    pub fn is_fully_determined(
        &self,
        query: &ConjunctiveQuery,
        params: &[Var],
    ) -> Result<bool, CoreError> {
        let closure = self.closure(query, params)?;
        Ok(query
            .body_variables()
            .iter()
            .all(|v| closure.known.contains(v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_access::{facebook_access_schema, AccessSchema, EmbeddedConstraint};
    use si_data::schema::{social_schema, social_schema_dated};
    use si_query::parse_cq;

    fn q3() -> ConjunctiveQuery {
        parse_cq(
            r#"Q3(rn, p, yy) :- friend(p, id), visit(id, rid, yy, mm, dd), person(id, pn, "NYC"), restr(rid, rn, "NYC", "A")"#,
        )
        .unwrap()
    }

    /// The enriched access schema of Example 4.6: plain Facebook constraints
    /// plus the 366-days-per-year bound and the FD id,yy,mm,dd → rid.
    fn example_46_access() -> AccessSchema {
        facebook_access_schema(5000)
            .with_embedded(EmbeddedConstraint::new(
                "visit",
                &["yy"],
                &["mm", "dd"],
                366,
                3,
            ))
            .with_embedded(EmbeddedConstraint::functional_dependency(
                "visit",
                &["id", "yy", "mm", "dd"],
                &["rid"],
                1,
            ))
    }

    #[test]
    fn q3_is_not_embedded_controlled_under_plain_schema() {
        let schema = social_schema_dated();
        let access = facebook_access_schema(5000);
        let analyzer = EmbeddedControllability::new(&schema, &access);
        assert!(!analyzer
            .is_embedded_controlled(&q3(), &["p".into(), "yy".into()])
            .unwrap());
        assert!(!analyzer
            .is_fully_determined(&q3(), &["p".into(), "yy".into()])
            .unwrap());
    }

    #[test]
    fn q3_becomes_controlled_with_embedded_constraints() {
        // Example 4.6: with the 366-day bound and the dining FD, Q3 is
        // (p, yy)-controlled.
        let schema = social_schema_dated();
        let access = example_46_access();
        let analyzer = EmbeddedControllability::new(&schema, &access);
        let closure = analyzer.closure(&q3(), &["p".into(), "yy".into()]).unwrap();
        assert!(closure.covers(&q3().body_variables()));
        assert!(analyzer
            .is_embedded_controlled(&q3(), &["p".into(), "yy".into()])
            .unwrap());
        assert!(analyzer
            .is_fully_determined(&q3(), &["p".into(), "yy".into()])
            .unwrap());
        // But not with p alone: yy cannot be enumerated.
        assert!(!analyzer
            .is_embedded_controlled(&q3(), &["p".into()])
            .unwrap());
        // The enumeration bound is data-independent: 5000 friends × 366 days.
        assert!(closure.enumeration_bound() >= 5000 * 366);
    }

    #[test]
    fn closure_steps_record_the_derivation() {
        let schema = social_schema_dated();
        let access = example_46_access();
        let analyzer = EmbeddedControllability::new(&schema, &access);
        let closure = analyzer.closure(&q3(), &["p".into(), "yy".into()]).unwrap();
        let relations: Vec<&str> = closure.steps.iter().map(|s| s.relation.as_str()).collect();
        assert!(relations.contains(&"friend"));
        assert!(relations.contains(&"visit"));
        assert!(relations.contains(&"restr"));
        // The FD step requires id, yy, mm, dd and provides rid.
        let fd_step = closure
            .steps
            .iter()
            .find(|s| s.provides.contains("rid"))
            .unwrap();
        assert!(fd_step.requires.contains("id"));
        assert_eq!(fd_step.bound, 1);
    }

    #[test]
    fn constants_and_equalities_seed_the_closure() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let analyzer = EmbeddedControllability::new(&schema, &access);
        // friend(1, id): the constant provides id1, so id is enumerable with
        // no parameters at all.
        let q = parse_cq("Q(id) :- friend(1, id)").unwrap();
        assert!(analyzer.is_embedded_controlled(&q, &[]).unwrap());
        // Q(id) :- friend(p, id), p = 7 — the equality provides p.
        let q = parse_cq("Q(id) :- friend(p, id), p = 7").unwrap();
        assert!(analyzer.is_embedded_controlled(&q, &[]).unwrap());
        // Variable/variable equality propagates knowledge.
        let q = parse_cq("Q(id) :- friend(q, id), q = p").unwrap();
        assert!(analyzer.is_embedded_controlled(&q, &["p".into()]).unwrap());
        assert!(!analyzer.is_embedded_controlled(&q, &[]).unwrap());
    }

    #[test]
    fn q1_closure_matches_plain_controllability() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let analyzer = EmbeddedControllability::new(&schema, &access);
        let q1 = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        assert!(analyzer.is_fully_determined(&q1, &["p".into()]).unwrap());
        assert!(!analyzer.is_fully_determined(&q1, &[]).unwrap());
    }

    #[test]
    fn closure_bound_multiplies_step_bounds() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let analyzer = EmbeddedControllability::new(&schema, &access);
        let q1 = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        let closure = analyzer.closure(&q1, &["p".into()]).unwrap();
        assert_eq!(closure.enumeration_bound(), 5000);
        assert!(closure.covers(&["name".to_string()]));
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let analyzer = EmbeddedControllability::new(&schema, &access);
        let bad = parse_cq("Q(x) :- enemy(x)").unwrap();
        assert!(analyzer.closure(&bad, &[]).is_err());
    }
}
