//! Controllability: the syntactic sufficient conditions for scale
//! independence of Section 4 (first-order rules, embedded constraints) and
//! Section 5 (`RA_A` rules for relational algebra, including increment and
//! decrement forms), together with the QCntl / QCntlmin decision problems.

pub mod algebra_rules;
pub mod embedded_rules;
pub mod qcntl;
pub mod rules;

pub use algebra_rules::{AlgebraControllability, AttrFamily, AttrSet, ExprForm};
pub use embedded_rules::{ClosureStep, EmbeddedClosure, EmbeddedControllability};
pub use qcntl::{decide_qcntl, decide_qcntl_min, minimal_controlling_sets, QcntlOutcome};
pub use rules::{ControlFamily, Controllability, ControllabilityAnalyzer, VarSet};
