//! The `RA_A` rules of Section 5: controllability for relational algebra
//! expressions and for their increment (`E∆`) and decrement (`E∇`) forms.
//!
//! The paper inductively generates a set `RA_A` of pairs `(E, X)` where `E`
//! is a relational algebra expression (possibly annotated with `∆` or `∇`)
//! and `X` a set of its output attributes, such that `σ_{X=a̅}(E)` is
//! scale-independent under `A` (Theorem 5.4), and such that when both
//! `(E∆, X)` and `(E∇, X)` are derivable, `σ_{X=a̅}(E)` is *incrementally*
//! scale-independent.
//!
//! This module computes, for an expression, the family of minimal attribute
//! sets `X` with `(E, X) ∈ RA_A` (and likewise for `E∆` / `E∇`).  The
//! *expansion* rule (`X ⊆ Y ⊆ attr(E)` ⇒ `(E, Y) ∈ RA_A`) is realised by the
//! subset test of [`AttrFamily::controlled_by`].

use crate::error::CoreError;
use si_access::AccessSchema;
use si_data::DatabaseSchema;
use si_query::algebra::{Condition, RaExpr};
use std::collections::BTreeSet;

/// A set of attribute names.
pub type AttrSet = BTreeSet<String>;

/// A family of controlling attribute sets, kept minimal under inclusion.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttrFamily {
    sets: Vec<AttrSet>,
}

impl AttrFamily {
    /// The empty family (no derivable controlling set).
    pub fn none() -> Self {
        AttrFamily { sets: Vec::new() }
    }

    /// A family with one set.
    pub fn single(set: AttrSet) -> Self {
        let mut f = AttrFamily::none();
        f.insert(set);
        f
    }

    /// Inserts a set, keeping the family minimal.
    pub fn insert(&mut self, set: AttrSet) {
        if self.sets.iter().any(|s| s.is_subset(&set)) {
            return;
        }
        self.sets.retain(|s| !set.is_subset(s));
        self.sets.push(set);
    }

    /// Merges another family.
    pub fn extend(&mut self, other: AttrFamily) {
        for s in other.sets {
            self.insert(s);
        }
    }

    /// The minimal sets.
    pub fn sets(&self) -> &[AttrSet] {
        &self.sets
    }

    /// True iff no controlling set is derivable.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Expansion rule: `(E, attrs)` is derivable iff some minimal set is
    /// contained in `attrs`.
    pub fn controlled_by(&self, attrs: &AttrSet) -> bool {
        self.sets.iter().any(|s| s.is_subset(attrs))
    }

    /// True iff the expression is controlled by all of its attributes
    /// (needed e.g. for the right-hand side of a difference).
    pub fn is_controlled(&self) -> bool {
        !self.is_empty()
    }

    /// Smallest derivable set, if any.
    pub fn smallest(&self) -> Option<&AttrSet> {
        self.sets.iter().min_by_key(|s| s.len())
    }
}

/// Which form of the expression a derivation refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExprForm {
    /// The expression itself.
    Plain,
    /// Its increment `E∆`.
    Delta,
    /// Its decrement `E∇`.
    Nabla,
}

/// Derives `RA_A` memberships for relational algebra expressions.
#[derive(Debug, Clone)]
pub struct AlgebraControllability<'a> {
    schema: &'a DatabaseSchema,
    access: &'a AccessSchema,
}

impl<'a> AlgebraControllability<'a> {
    /// Creates an analyzer.
    pub fn new(schema: &'a DatabaseSchema, access: &'a AccessSchema) -> Self {
        AlgebraControllability { schema, access }
    }

    /// The minimal attribute sets `X` with `(E, X) ∈ RA_A` for the requested
    /// form of `E`.
    pub fn controlling_sets(&self, expr: &RaExpr, form: ExprForm) -> Result<AttrFamily, CoreError> {
        match form {
            ExprForm::Plain => self.plain(expr),
            ExprForm::Delta => self.delta(expr),
            ExprForm::Nabla => self.nabla(expr),
        }
    }

    /// Theorem 5.4(1): is `σ_{X=a̅}(E)` scale-independent for `X = attrs`?
    pub fn is_scale_independent(&self, expr: &RaExpr, attrs: &[String]) -> Result<bool, CoreError> {
        let set: AttrSet = attrs.iter().cloned().collect();
        let out_attrs: AttrSet = expr.attributes(self.schema)?.into_iter().collect();
        if !set.is_subset(&out_attrs) {
            return Ok(false);
        }
        Ok(self.plain(expr)?.controlled_by(&set))
    }

    /// Theorem 5.4(2): is `σ_{X=a̅}(E)` *incrementally* scale-independent for
    /// `X = attrs`, i.e. are both `(E∆, X)` and `(E∇, X)` derivable?
    pub fn is_incrementally_scale_independent(
        &self,
        expr: &RaExpr,
        attrs: &[String],
    ) -> Result<bool, CoreError> {
        let set: AttrSet = attrs.iter().cloned().collect();
        let out_attrs: AttrSet = expr.attributes(self.schema)?.into_iter().collect();
        if !set.is_subset(&out_attrs) {
            return Ok(false);
        }
        Ok(self.delta(expr)?.controlled_by(&set) && self.nabla(expr)?.controlled_by(&set))
    }

    fn plain(&self, expr: &RaExpr) -> Result<AttrFamily, CoreError> {
        let attrs: AttrSet = expr.attributes(self.schema)?.into_iter().collect();
        Ok(match expr {
            RaExpr::Relation(name) => {
                let mut family = AttrFamily::none();
                // Membership-probe reading: providing all attributes bounds
                // the selection by 1 tuple (kept consistent with the FO side).
                family.insert(attrs.clone());
                for c in self.access.constraints_on(name) {
                    family.insert(c.on.iter().cloned().collect());
                }
                if self.access.has_full_access(name) {
                    family.insert(AttrSet::new());
                }
                family
            }
            // ∆R / ∇R used as *inputs* of an expression are small given the
            // update, so they are controlled by the empty set (this mirrors
            // the base case of the decrement/increment rules).
            RaExpr::DeltaRelation(_) | RaExpr::NablaRelation(_) => {
                AttrFamily::single(AttrSet::new())
            }
            RaExpr::Select(input, conditions) => {
                let inner = self.plain(input)?;
                let fixed: AttrSet = conditions
                    .iter()
                    .filter_map(Condition::fixes_attribute)
                    .map(str::to_owned)
                    .collect();
                let mut family = AttrFamily::none();
                for s in inner.sets() {
                    family.insert(s.difference(&fixed).cloned().collect());
                }
                family
            }
            RaExpr::Project(input, keep) => {
                let inner = self.plain(input)?;
                let keep: AttrSet = keep.iter().cloned().collect();
                let mut family = AttrFamily::none();
                for s in inner.sets() {
                    if s.is_subset(&keep) {
                        family.insert(s.clone());
                    }
                }
                family
            }
            RaExpr::Rename(input, mapping) => {
                let inner = self.plain(input)?;
                let mut family = AttrFamily::none();
                for s in inner.sets() {
                    family.insert(
                        s.iter()
                            .map(|a| {
                                mapping
                                    .iter()
                                    .find(|(old, _)| old == a)
                                    .map(|(_, new)| new.clone())
                                    .unwrap_or_else(|| a.clone())
                            })
                            .collect(),
                    );
                }
                family
            }
            RaExpr::Union(l, r) => {
                let fl = self.plain(l)?;
                let fr = self.plain(r)?;
                let mut family = AttrFamily::none();
                for sl in fl.sets() {
                    for sr in fr.sets() {
                        family.insert(sl.union(sr).cloned().collect());
                    }
                }
                family
            }
            RaExpr::Diff(l, r) => {
                // (E1 − E2, X1) requires (E2, attr(E2)) ∈ RA_A.
                let fr = self.plain(r)?;
                if fr.is_controlled() {
                    self.plain(l)?
                } else {
                    AttrFamily::none()
                }
            }
            RaExpr::Intersect(l, r) => {
                // E1 ∩ E2 ⊆ E1: either side's controlling sets work, provided
                // the other side is controlled by all of its attributes.
                let fl = self.plain(l)?;
                let fr = self.plain(r)?;
                let mut family = AttrFamily::none();
                if fr.is_controlled() {
                    family.extend(fl.clone());
                }
                if fl.is_controlled() {
                    family.extend(fr);
                }
                family
            }
            RaExpr::Join(l, r) => {
                let fl = self.plain(l)?;
                let fr = self.plain(r)?;
                let attrs_l: AttrSet = l.attributes(self.schema)?.into_iter().collect();
                let attrs_r: AttrSet = r.attributes(self.schema)?.into_iter().collect();
                let mut family = AttrFamily::none();
                for sl in fl.sets() {
                    for sr in fr.sets() {
                        // X1 ∪ (X2 − attr(E1)) and the symmetric variant.
                        family.insert(
                            sl.iter()
                                .cloned()
                                .chain(sr.difference(&attrs_l).cloned())
                                .collect(),
                        );
                        family.insert(
                            sr.iter()
                                .cloned()
                                .chain(sl.difference(&attrs_r).cloned())
                                .collect(),
                        );
                    }
                }
                let _ = attrs;
                family
            }
        })
    }

    fn nabla(&self, expr: &RaExpr) -> Result<AttrFamily, CoreError> {
        Ok(match expr {
            // (R∇, ∅) ∈ RA_A.
            RaExpr::Relation(_) => AttrFamily::single(AttrSet::new()),
            RaExpr::DeltaRelation(_) | RaExpr::NablaRelation(_) => {
                AttrFamily::single(AttrSet::new())
            }
            RaExpr::Select(input, _) => self.nabla(input)?,
            RaExpr::Project(input, keep) => {
                // Requires (E∇, X), (E, X) and (E∆, X) with X ⊆ Y.
                let keep: AttrSet = keep.iter().cloned().collect();
                let n = self.nabla(input)?;
                let p = self.plain(input)?;
                let d = self.delta(input)?;
                let mut family = AttrFamily::none();
                for s in n.sets() {
                    if s.is_subset(&keep) && p.controlled_by(s) && d.controlled_by(s) {
                        family.insert(s.clone());
                    }
                }
                family
            }
            RaExpr::Rename(input, mapping) => rename_family(self.nabla(input)?, mapping),
            RaExpr::Union(l, r) => {
                // Requires (Ei∇, Xi), (Ei, attr), (Ei∆, attr).
                if self.plain(l)?.is_controlled()
                    && self.plain(r)?.is_controlled()
                    && self.delta(l)?.is_controlled()
                    && self.delta(r)?.is_controlled()
                {
                    union_pairs(&self.nabla(l)?, &self.nabla(r)?)
                } else {
                    AttrFamily::none()
                }
            }
            RaExpr::Diff(l, r) => {
                // (E1−E2)∇ needs (E1∇, X), (E2∆, Z), (Ei, attr).
                if self.plain(l)?.is_controlled() && self.plain(r)?.is_controlled() {
                    union_pairs(&self.nabla(l)?, &self.delta(r)?)
                } else {
                    AttrFamily::none()
                }
            }
            RaExpr::Intersect(l, r) => {
                if self.plain(l)?.is_controlled() && self.plain(r)?.is_controlled() {
                    union_pairs(&self.nabla(l)?, &self.nabla(r)?)
                } else {
                    AttrFamily::none()
                }
            }
            RaExpr::Join(l, r) => {
                // (E1⋈E2)∇ needs (Ei∇, Xi), (Ei, Yi); result
                // X1 ∪ X2 ∪ (Y1 − attr(E2)) ∪ (Y2 − attr(E1)).
                self.join_change_family(l, r, ExprForm::Nabla)?
            }
        })
    }

    fn delta(&self, expr: &RaExpr) -> Result<AttrFamily, CoreError> {
        Ok(match expr {
            RaExpr::Relation(_) => AttrFamily::single(AttrSet::new()),
            RaExpr::DeltaRelation(_) | RaExpr::NablaRelation(_) => {
                AttrFamily::single(AttrSet::new())
            }
            RaExpr::Select(input, _) => self.delta(input)?,
            RaExpr::Project(input, keep) => {
                let keep: AttrSet = keep.iter().cloned().collect();
                let d = self.delta(input)?;
                let p = self.plain(input)?;
                let mut family = AttrFamily::none();
                for s in d.sets() {
                    if s.is_subset(&keep) && p.controlled_by(s) {
                        family.insert(s.clone());
                    }
                }
                family
            }
            RaExpr::Rename(input, mapping) => rename_family(self.delta(input)?, mapping),
            RaExpr::Union(l, r) => {
                if self.plain(l)?.is_controlled() && self.plain(r)?.is_controlled() {
                    union_pairs(&self.delta(l)?, &self.delta(r)?)
                } else {
                    AttrFamily::none()
                }
            }
            RaExpr::Diff(l, r) => {
                // (E1−E2)∆ needs (E1∆, X1), (E2∇, Z2), (Ei, attr).
                if self.plain(l)?.is_controlled() && self.plain(r)?.is_controlled() {
                    union_pairs(&self.delta(l)?, &self.nabla(r)?)
                } else {
                    AttrFamily::none()
                }
            }
            RaExpr::Intersect(l, r) => {
                if self.plain(l)?.is_controlled() && self.plain(r)?.is_controlled() {
                    union_pairs(&self.delta(l)?, &self.delta(r)?)
                } else {
                    AttrFamily::none()
                }
            }
            RaExpr::Join(l, r) => self.join_change_family(l, r, ExprForm::Delta)?,
        })
    }

    /// Shared shape of the join increment/decrement rules:
    /// X1 ∪ X2 ∪ (Y1 − attr(E2)) ∪ (Y2 − attr(E1)), where Xi controls the
    /// change of Ei and Yi controls Ei itself.
    fn join_change_family(
        &self,
        l: &RaExpr,
        r: &RaExpr,
        form: ExprForm,
    ) -> Result<AttrFamily, CoreError> {
        let (cl, cr) = match form {
            ExprForm::Delta => (self.delta(l)?, self.delta(r)?),
            ExprForm::Nabla => (self.nabla(l)?, self.nabla(r)?),
            ExprForm::Plain => unreachable!("join_change_family is only for change forms"),
        };
        let pl = self.plain(l)?;
        let pr = self.plain(r)?;
        let attrs_l: AttrSet = l.attributes(self.schema)?.into_iter().collect();
        let attrs_r: AttrSet = r.attributes(self.schema)?.into_iter().collect();
        let mut family = AttrFamily::none();
        for x1 in cl.sets() {
            for x2 in cr.sets() {
                for y1 in pl.sets() {
                    for y2 in pr.sets() {
                        let set: AttrSet = x1
                            .iter()
                            .cloned()
                            .chain(x2.iter().cloned())
                            .chain(y1.difference(&attrs_r).cloned())
                            .chain(y2.difference(&attrs_l).cloned())
                            .collect();
                        family.insert(set);
                    }
                }
            }
        }
        Ok(family)
    }
}

fn rename_family(inner: AttrFamily, mapping: &[(String, String)]) -> AttrFamily {
    let mut family = AttrFamily::none();
    for s in inner.sets() {
        family.insert(
            s.iter()
                .map(|a| {
                    mapping
                        .iter()
                        .find(|(old, _)| old == a)
                        .map(|(_, new)| new.clone())
                        .unwrap_or_else(|| a.clone())
                })
                .collect(),
        );
    }
    family
}

fn union_pairs(a: &AttrFamily, b: &AttrFamily) -> AttrFamily {
    let mut family = AttrFamily::none();
    for sa in a.sets() {
        for sb in b.sets() {
            family.insert(sa.union(sb).cloned().collect());
        }
    }
    family
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_access::{facebook_access_schema, AccessConstraint, AccessSchema};
    use si_data::schema::social_schema;

    fn attrs(names: &[&str]) -> AttrSet {
        names.iter().map(|s| (*s).to_string()).collect()
    }

    /// Q1 in relational algebra: friend ⋈ ρ[id→id2](σ[city=NYC](person)),
    /// projected to (id1, name).
    fn q1_expr() -> RaExpr {
        RaExpr::relation("friend")
            .join(
                RaExpr::relation("person")
                    .select_eq("city", "NYC")
                    .rename(&[("id", "id2")]),
            )
            .project(&["id1", "name"])
    }

    #[test]
    fn base_relations_use_constraints_and_full_access() {
        let schema = social_schema();
        let access = facebook_access_schema(5000).with_full_access("visit");
        let analyzer = AlgebraControllability::new(&schema, &access);
        let friend = analyzer
            .controlling_sets(&RaExpr::relation("friend"), ExprForm::Plain)
            .unwrap();
        assert!(friend.controlled_by(&attrs(&["id1"])));
        assert!(!friend.controlled_by(&attrs(&["id2"])));
        let visit = analyzer
            .controlling_sets(&RaExpr::relation("visit"), ExprForm::Plain)
            .unwrap();
        assert!(visit.controlled_by(&attrs(&[])));
        // ∆R / ∇R are ∅-controlled.
        let d = analyzer
            .controlling_sets(&RaExpr::delta("visit"), ExprForm::Plain)
            .unwrap();
        assert!(d.controlled_by(&attrs(&[])));
    }

    #[test]
    fn selection_discharges_fixed_attributes() {
        let schema = social_schema();
        let access =
            AccessSchema::new().with(AccessConstraint::new("person", &["id", "city"], 1, 1));
        let analyzer = AlgebraControllability::new(&schema, &access);
        let expr = RaExpr::relation("person").select_eq("city", "NYC");
        let family = analyzer.controlling_sets(&expr, ExprForm::Plain).unwrap();
        // city is fixed by the selection, so id alone controls.
        assert!(family.controlled_by(&attrs(&["id"])));
        assert!(!family.controlled_by(&attrs(&["name"])));
    }

    #[test]
    fn q1_expression_is_id1_controlled() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let analyzer = AlgebraControllability::new(&schema, &access);
        assert!(analyzer
            .is_scale_independent(&q1_expr(), &["id1".into()])
            .unwrap());
        assert!(!analyzer
            .is_scale_independent(&q1_expr(), &["name".into()])
            .unwrap());
        // Attributes outside the output are rejected.
        assert!(!analyzer
            .is_scale_independent(&q1_expr(), &["city".into()])
            .unwrap());
    }

    #[test]
    fn q1_without_constraints_is_not_controlled_by_id1() {
        let schema = social_schema();
        let access = AccessSchema::new();
        let analyzer = AlgebraControllability::new(&schema, &access);
        assert!(!analyzer
            .is_scale_independent(&q1_expr(), &["id1".into()])
            .unwrap());
    }

    #[test]
    fn projection_drops_sets_outside_the_projection() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let analyzer = AlgebraControllability::new(&schema, &access);
        // π[name](person): the id-key controlling set mentions id, which is
        // projected away, so only … nothing remains (name is not a key).
        let expr = RaExpr::relation("person").project(&["name"]);
        let family = analyzer.controlling_sets(&expr, ExprForm::Plain).unwrap();
        assert!(family.is_empty());
    }

    #[test]
    fn union_and_difference_follow_the_paper_rules() {
        let schema = social_schema();
        let access =
            facebook_access_schema(5000).with(AccessConstraint::new("visit", &["id"], 100, 1));
        let analyzer = AlgebraControllability::new(&schema, &access);
        // visit ∪ visit: controlled by id (union of the two sides' sets).
        let u = RaExpr::relation("visit").union(RaExpr::relation("visit"));
        assert!(analyzer.is_scale_independent(&u, &["id".into()]).unwrap());
        // friend − (friend): RHS is controlled by all attributes (membership
        // probe), so the difference inherits the LHS's id1 control.
        let d = RaExpr::relation("friend").diff(RaExpr::relation("friend"));
        assert!(analyzer.is_scale_independent(&d, &["id1".into()]).unwrap());
    }

    #[test]
    fn incremental_controllability_of_a_join() {
        let schema = social_schema();
        // Make both relations key-accessible on their join attribute so the
        // join's change family is small.
        let access = AccessSchema::new()
            .with(AccessConstraint::new("friend", &["id2"], 5000, 1))
            .with(AccessConstraint::new("visit", &["id"], 100, 1));
        let analyzer = AlgebraControllability::new(&schema, &access);
        let expr = RaExpr::relation("friend")
            .rename(&[("id2", "id")])
            .join(RaExpr::relation("visit"));
        // (E∆, X) and (E∇, X): base deltas are ∅-controlled; the join rule
        // then needs Y1/Y2 minus the other side's attributes, giving
        // {id1}… let us just check Theorem 5.4(2) for X = {id1, id, rid}
        // (all attributes) and for the more interesting X = {id}.
        let all: Vec<String> = expr.attributes(&schema).unwrap();
        assert!(analyzer
            .is_incrementally_scale_independent(&expr, &all)
            .unwrap());
        let nabla = analyzer.controlling_sets(&expr, ExprForm::Nabla).unwrap();
        let delta = analyzer.controlling_sets(&expr, ExprForm::Delta).unwrap();
        assert!(!nabla.is_empty());
        assert!(!delta.is_empty());
    }

    #[test]
    fn rename_maps_controlling_attributes() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let analyzer = AlgebraControllability::new(&schema, &access);
        let expr = RaExpr::relation("friend").rename(&[("id1", "src")]);
        let family = analyzer.controlling_sets(&expr, ExprForm::Plain).unwrap();
        assert!(family.controlled_by(&attrs(&["src"])));
        assert!(!family.controlled_by(&attrs(&["id1"])));
        // Change forms commute with rename as well.
        let nabla = analyzer.controlling_sets(&expr, ExprForm::Nabla).unwrap();
        assert!(nabla.controlled_by(&attrs(&[])));
    }

    #[test]
    fn smallest_and_display_helpers() {
        let mut f = AttrFamily::none();
        f.insert(attrs(&["a", "b"]));
        f.insert(attrs(&["c"]));
        assert_eq!(f.smallest().unwrap(), &attrs(&["c"]));
        assert_eq!(f.sets().len(), 2);
        f.extend(AttrFamily::single(attrs(&[])));
        assert_eq!(f.sets().len(), 1);
        assert!(f.controlled_by(&attrs(&[])));
        assert!(AttrFamily::none().is_empty());
    }
}
