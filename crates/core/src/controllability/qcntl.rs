//! The decision problems QCntl and QCntlmin (Theorem 4.4).
//!
//! * **QCntl**: given an access schema `A`, a number `K` and a query `Q(ȳ)`,
//!   is there a tuple `x̄` with `|x̄| ≤ K` such that `Q` is x̄-controlled?
//! * **QCntlmin**: given `A`, `Q` and a variable `x`, is `Q` *minimally*
//!   controlled by some `x̄` containing `x` (x̄-controlled but not
//!   x̄'-controlled for any proper subtuple x̄')?
//!
//! Both are NP-complete (the paper reduces from candidate-key / prime-
//! attribute problems), which shows up here as the potentially exponential
//! size of the family of minimal controlling sets; the procedures below are
//! exact and their cost is measured by the benchmarks of experiment E6.

use crate::controllability::rules::{ControlFamily, ControllabilityAnalyzer};
use crate::error::CoreError;
use si_access::AccessSchema;
use si_data::DatabaseSchema;
use si_query::{FoQuery, Var};

/// Outcome of a QCntl decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QcntlOutcome {
    /// Whether some controlling tuple of size ≤ K exists.
    pub controllable_within: bool,
    /// A smallest controlling set (regardless of K), if any exists.
    pub smallest: Option<Vec<Var>>,
    /// The number of minimal controlling sets derived (work measure).
    pub family_size: usize,
}

/// Decides QCntl: is there `x̄` with `|x̄| ≤ k` such that `query` is
/// x̄-controlled under `access`?
pub fn decide_qcntl(
    query: &FoQuery,
    schema: &DatabaseSchema,
    access: &AccessSchema,
    k: usize,
) -> Result<QcntlOutcome, CoreError> {
    let analyzer = ControllabilityAnalyzer::new(schema, access);
    let family = analyzer.query_controlling_sets(query)?;
    let smallest = family
        .smallest()
        .map(|s| s.iter().cloned().collect::<Vec<Var>>());
    Ok(QcntlOutcome {
        controllable_within: smallest.as_ref().map(|s| s.len() <= k).unwrap_or(false),
        smallest,
        family_size: family.sets().len(),
    })
}

/// Decides QCntlmin: is `query` minimally controlled by some `x̄` containing
/// `variable`?
///
/// The derivable controlling sets are upward closed (expansion rule), so the
/// minimal controlling tuples are exactly the minimal sets of the derived
/// family; the answer is whether `variable` occurs in one of them.
pub fn decide_qcntl_min(
    query: &FoQuery,
    schema: &DatabaseSchema,
    access: &AccessSchema,
    variable: &str,
) -> Result<bool, CoreError> {
    let analyzer = ControllabilityAnalyzer::new(schema, access);
    let family = analyzer.query_controlling_sets(query)?;
    Ok(family.sets().iter().any(|s| s.contains(variable)))
}

/// Returns every minimal controlling set of the query (the full family),
/// sorted by size then lexicographically — used by benchmarks and examples to
/// display the search space behind Theorem 4.4.
pub fn minimal_controlling_sets(
    query: &FoQuery,
    schema: &DatabaseSchema,
    access: &AccessSchema,
) -> Result<Vec<Vec<Var>>, CoreError> {
    let analyzer = ControllabilityAnalyzer::new(schema, access);
    let family: ControlFamily = analyzer.query_controlling_sets(query)?;
    let mut sets: Vec<Vec<Var>> = family
        .sets()
        .iter()
        .map(|s| s.iter().cloned().collect())
        .collect();
    sets.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    Ok(sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_access::{facebook_access_schema, AccessConstraint};
    use si_data::schema::social_schema;
    use si_data::{DatabaseSchema, RelationSchema};
    use si_query::parse_fo_query;

    #[test]
    fn q1_is_controllable_with_one_variable() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let q1 =
            parse_fo_query(r#"Q1(p, name) := exists id. friend(p, id) & person(id, name, "NYC")"#)
                .unwrap();
        let out = decide_qcntl(&q1, &schema, &access, 1).unwrap();
        assert!(out.controllable_within);
        assert_eq!(out.smallest, Some(vec!["p".to_string()]));
        let out = decide_qcntl(&q1, &schema, &access, 0).unwrap();
        assert!(!out.controllable_within);
    }

    #[test]
    fn qcntl_min_detects_prime_variables() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let q1 =
            parse_fo_query(r#"Q1(p, name) := exists id. friend(p, id) & person(id, name, "NYC")"#)
                .unwrap();
        // p occurs in the minimal controlling set {p}; name does not occur
        // in any minimal controlling set.
        assert!(decide_qcntl_min(&q1, &schema, &access, "p").unwrap());
        assert!(!decide_qcntl_min(&q1, &schema, &access, "name").unwrap());
    }

    #[test]
    fn uncontrollable_queries_report_no_smallest_set() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        // Negation alone is not derivable.
        let q = parse_fo_query("Q(x, y) := ! friend(x, y)").unwrap();
        let out = decide_qcntl(&q, &schema, &access, 5).unwrap();
        assert!(!out.controllable_within);
        assert!(out.smallest.is_none());
        assert_eq!(out.family_size, 0);
        assert!(!decide_qcntl_min(&q, &schema, &access, "x").unwrap());
    }

    #[test]
    fn family_can_contain_multiple_incomparable_sets() {
        // A schema with several alternative "keys" mirrors the candidate-key
        // reduction of Theorem 4.4: r(a, b, c) with constraints on {a} and
        // {b} gives two incomparable minimal controlling sets for a query
        // that projects away c.
        let schema =
            DatabaseSchema::from_relations(vec![RelationSchema::new("r", &["a", "b", "c"])])
                .unwrap();
        let access = AccessSchema::new()
            .with(AccessConstraint::new("r", &["a"], 10, 1))
            .with(AccessConstraint::new("r", &["b"], 10, 1));
        let q = parse_fo_query("Q(a, b) := exists c. r(a, b, c)").unwrap();
        let sets = minimal_controlling_sets(&q, &schema, &access).unwrap();
        assert_eq!(sets, vec![vec!["a".to_string()], vec!["b".to_string()]]);
        let out = decide_qcntl(&q, &schema, &access, 1).unwrap();
        assert!(out.controllable_within);
        assert_eq!(out.family_size, 2);
        assert!(decide_qcntl_min(&q, &schema, &access, "a").unwrap());
        assert!(decide_qcntl_min(&q, &schema, &access, "b").unwrap());
    }
}
