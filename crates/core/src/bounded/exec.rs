//! Execution of bounded plans against an access-indexed database.
//!
//! The executor realises the evaluation strategy from the proof of
//! Theorem 4.2: it maintains a set of partial assignments for the query's
//! variables and extends them step by step, touching the base data only
//! through the access-schema-mediated retrieval primitives of
//! [`AccessIndexedDatabase`].  The result records the answers, the witness
//! `D_Q` (the base facts actually used) and the exact access cost.
//!
//! Assignments are flat [`Binding`]s over a [`VarTable`] built once per
//! execution: variables are numbered up front, atoms and equalities are
//! compiled to slot ids, and every extension step clones a flat slab of
//! `Copy` values instead of a `BTreeMap` — the copy-cheap data plane shared
//! with the `si-query` evaluators.

use crate::bounded::plan::{BoundedPlan, PlanStep};
use crate::error::CoreError;
use crate::si::Witness;
use si_access::AccessIndexedDatabase;
use si_data::{MeterSnapshot, Tuple, TupleSet, Value};
use si_query::binding::{Binding, VarId, VarTable};
use si_query::Term;

/// The result of executing a bounded plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundedAnswer {
    /// The answer tuples, projected onto the plan's output variables.
    pub answers: Vec<Tuple>,
    /// The witness `D_Q`: the base facts fetched and used by the evaluation.
    pub witness: Witness,
    /// The access cost of this execution (difference of meter snapshots).
    pub accesses: MeterSnapshot,
}

/// An atom term compiled to the plan's variable table.
#[derive(Debug, Clone, Copy)]
enum CTerm {
    Slot(VarId),
    Const(Value),
}

/// Where a probe-key component comes from.
#[derive(Debug, Clone)]
enum KeySrc {
    Const(Value),
    Slot(VarId),
}

/// Extends `binding` with the bindings induced by matching the compiled atom
/// against `tuple`; returns `None` on any inconsistency (constant mismatch or
/// conflicting variable binding).
fn extend_binding(binding: &Binding, cterms: &[CTerm], tuple: &Tuple) -> Option<Binding> {
    if tuple.arity() != cterms.len() {
        return None;
    }
    let mut extended = binding.clone();
    for (pos, ct) in cterms.iter().enumerate() {
        let value = tuple[pos];
        match ct {
            CTerm::Const(c) => {
                if *c != value {
                    return None;
                }
            }
            CTerm::Slot(id) => {
                if !extended.bind(*id, value) {
                    return None;
                }
            }
        }
    }
    Some(extended)
}

/// Executes `plan` with the given parameter values over `adb`.
///
/// `parameter_values` must supply one value per plan parameter, in order.
pub fn execute_bounded(
    plan: &BoundedPlan,
    parameter_values: &[Value],
    adb: &AccessIndexedDatabase,
) -> Result<BoundedAnswer, CoreError> {
    if parameter_values.len() != plan.parameters.len() {
        return Err(CoreError::Invariant(format!(
            "plan expects {} parameter values, got {}",
            plan.parameters.len(),
            parameter_values.len()
        )));
    }
    let before = adb.meter_snapshot();
    let schema = adb.database().schema();

    // --- compile: number the variables once, then translate atoms and
    // equalities to slot ids.
    let mut vars = VarTable::new();
    for p in &plan.parameters {
        vars.intern(p);
    }
    for v in plan.query.body_variables() {
        vars.intern(&v);
    }
    let compiled: Vec<Vec<CTerm>> = plan
        .query
        .atoms
        .iter()
        .map(|atom| {
            atom.terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => CTerm::Slot(vars.intern(v)),
                    Term::Const(c) => CTerm::Const(*c),
                })
                .collect()
        })
        .collect();
    let mut var_var_eqs: Vec<(VarId, VarId)> = Vec::new();
    let mut var_const_eqs: Vec<(VarId, Value)> = Vec::new();
    let mut consistent = true;
    for (l, r) in &plan.query.equalities {
        match (l, r) {
            (Term::Var(a), Term::Var(b)) => {
                var_var_eqs.push((vars.intern(a), vars.intern(b)));
            }
            (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) => {
                var_const_eqs.push((vars.intern(v), *c));
            }
            (Term::Const(c1), Term::Const(c2)) => {
                if c1 != c2 {
                    consistent = false;
                }
            }
        }
    }

    // Seed binding: parameters plus variables equated to constants.
    let mut seed = Binding::for_table(&vars);
    for (p, value) in plan.parameters.iter().zip(parameter_values.iter()) {
        let id = vars.id_of(p).expect("parameter interned above");
        if !seed.bind(id, *value) {
            consistent = false;
        }
    }
    for (id, c) in &var_const_eqs {
        if !seed.bind(*id, *c) {
            consistent = false;
        }
    }

    // Boundness is uniform across the rows of a step, so it is tracked once.
    let mut bound: Vec<bool> = (0..vars.len() as VarId)
        .map(|id| seed.is_bound(id))
        .collect();
    let mut rows: Vec<Binding> = if consistent { vec![seed] } else { Vec::new() };
    let mut witness_facts: Vec<(String, Tuple)> = Vec::new();

    for step in &plan.steps {
        if rows.is_empty() {
            break;
        }
        // Propagate variable/variable equalities into each row where one side
        // is known, and fold the resulting boundness into `bound`.
        for row in rows.iter_mut() {
            loop {
                let mut changed = false;
                for (a, b) in &var_var_eqs {
                    match (row.get(*a), row.get(*b)) {
                        (Some(va), None) => {
                            row.set(*b, va);
                            changed = true;
                        }
                        (None, Some(vb)) => {
                            row.set(*a, vb);
                            changed = true;
                        }
                        _ => {}
                    }
                }
                if !changed {
                    break;
                }
            }
        }
        loop {
            let mut changed = false;
            for (a, b) in &var_var_eqs {
                let (ba, bb) = (bound[*a as usize], bound[*b as usize]);
                if ba != bb {
                    bound[*a as usize] = true;
                    bound[*b as usize] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let atom = &plan.query.atoms[step.atom_index()];
        let cterms = &compiled[step.atom_index()];
        let rel_schema = schema.relation(&atom.relation)?;
        let mut next: Vec<Binding> = Vec::new();

        match step {
            PlanStep::Fetch {
                probe_attributes,
                constraint,
                ..
            } => {
                // Resolve the probe attributes once: constants and bound
                // slots form the key; positions that became bound later (not
                // in the recorded list) are checked after the fetch by
                // `extend_binding`.
                let mut fetch_attrs: Vec<String> = Vec::new();
                let mut key_src: Vec<KeySrc> = Vec::new();
                for a in probe_attributes {
                    let pos = rel_schema.position_of(a)?;
                    match cterms[pos] {
                        CTerm::Const(c) => {
                            fetch_attrs.push(a.clone());
                            key_src.push(KeySrc::Const(c));
                        }
                        CTerm::Slot(id) => {
                            if bound[id as usize] {
                                fetch_attrs.push(a.clone());
                                key_src.push(KeySrc::Slot(id));
                            }
                        }
                    }
                }
                let mut key: Vec<Value> = Vec::with_capacity(key_src.len());
                for row in &rows {
                    key.clear();
                    for src in &key_src {
                        key.push(match src {
                            KeySrc::Const(c) => *c,
                            KeySrc::Slot(id) => row.get(*id).expect("bound slot carries a value"),
                        });
                    }
                    // Fetch through the constraint the *planner* chose: the
                    // plan is the authority on the access path, so a tied or
                    // looser constraint in the schema cannot silently turn an
                    // index-backed step into a bounded scan.
                    let fetched = adb.fetch_via(constraint, &atom.relation, &fetch_attrs, &key)?;
                    for tuple in fetched {
                        if let Some(extended) = extend_binding(row, cterms, &tuple) {
                            witness_facts.push((atom.relation.clone(), tuple));
                            next.push(extended);
                        }
                    }
                }
                for ct in cterms {
                    if let CTerm::Slot(id) = ct {
                        bound[*id as usize] = true;
                    }
                }
            }
            PlanStep::Enumerate { constraint, .. } => {
                // Enumerate values for the constraint's output attributes that
                // are not yet bound.
                let mut from_attrs: Vec<String> = Vec::new();
                let mut key_src: Vec<KeySrc> = Vec::new();
                for a in &constraint.from {
                    let pos = rel_schema.position_of(a)?;
                    match cterms[pos] {
                        CTerm::Const(c) => {
                            from_attrs.push(a.clone());
                            key_src.push(KeySrc::Const(c));
                        }
                        CTerm::Slot(id) => {
                            if !bound[id as usize] {
                                return Err(CoreError::Invariant(format!(
                                    "enumerate step requires `{}` to be bound",
                                    vars.name_of(id)
                                )));
                            }
                            from_attrs.push(a.clone());
                            key_src.push(KeySrc::Slot(id));
                        }
                    }
                }
                let onto = &constraint.onto;
                let onto_cterms: Vec<CTerm> = onto
                    .iter()
                    .map(|a| rel_schema.position_of(a).map(|pos| cterms[pos]))
                    .collect::<Result<_, _>>()?;
                let mut key: Vec<Value> = Vec::with_capacity(key_src.len());
                for row in &rows {
                    key.clear();
                    for src in &key_src {
                        key.push(match src {
                            KeySrc::Const(c) => *c,
                            KeySrc::Slot(id) => row.get(*id).expect("bound slot carries a value"),
                        });
                    }
                    let projections =
                        adb.fetch_embedded(&atom.relation, &from_attrs, &key, onto)?;
                    for proj in projections {
                        // proj is a tuple over `onto` attribute order.
                        if let Some(extended) = extend_binding(row, &onto_cterms, &proj) {
                            next.push(extended);
                        }
                    }
                }
                for ct in &onto_cterms {
                    if let CTerm::Slot(id) = ct {
                        bound[*id as usize] = true;
                    }
                }
            }
            PlanStep::Check { .. } => {
                for row in &rows {
                    let tuple: Option<Tuple> = cterms
                        .iter()
                        .map(|ct| match ct {
                            CTerm::Const(c) => Some(*c),
                            CTerm::Slot(id) => row.get(*id),
                        })
                        .collect();
                    let tuple = tuple.ok_or_else(|| {
                        CoreError::Invariant(
                            "membership check reached with unbound variables".into(),
                        )
                    })?;
                    if adb.contains(&atom.relation, &tuple)? {
                        witness_facts.push((atom.relation.clone(), tuple));
                        next.push(row.clone());
                    }
                }
            }
        }
        rows = next;
    }

    // Final equality filter (covers equalities between variables bound by
    // different steps).
    rows.retain(|row| {
        var_var_eqs
            .iter()
            .all(|(a, b)| match (row.get(*a), row.get(*b)) {
                (Some(va), Some(vb)) => va == vb,
                _ => false,
            })
            && var_const_eqs.iter().all(|(id, c)| row.get(*id) == Some(*c))
    });

    // Project onto the output variables, deduplicating in derivation order.
    let outputs = plan.output_variables();
    let output_ids: Vec<VarId> = outputs
        .iter()
        .map(|v| {
            vars.id_of(v).ok_or_else(|| {
                CoreError::Invariant(format!("output variable `{v}` missing from the plan"))
            })
        })
        .collect::<Result<_, _>>()?;
    let mut answers = TupleSet::new();
    for row in &rows {
        let tuple = row.project(&output_ids).ok_or_else(|| {
            CoreError::Invariant("output variable not bound at the end of the plan".into())
        })?;
        answers.insert(tuple);
    }

    let after = adb.meter_snapshot();
    Ok(BoundedAnswer {
        answers: answers.into_vec(),
        witness: Witness::from_facts(witness_facts),
        accesses: after.since(&before),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::plan::BoundedPlanner;
    use si_access::{facebook_access_schema, EmbeddedConstraint};
    use si_data::schema::{social_schema, social_schema_dated};
    use si_data::{tuple, Database};
    use si_query::{evaluate_cq, parse_cq};

    fn social_db() -> Database {
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "NYC"],
                tuple![3, "cat", "LA"],
                tuple![4, "dan", "NYC"],
            ],
        )
        .unwrap();
        db.insert_all(
            "friend",
            vec![
                tuple![1, 2],
                tuple![1, 3],
                tuple![1, 4],
                tuple![2, 4],
                tuple![3, 1],
            ],
        )
        .unwrap();
        db.insert_all(
            "restr",
            vec![
                tuple![10, "sushi", "NYC", "A"],
                tuple![11, "taco", "NYC", "B"],
                tuple![12, "pasta", "LA", "A"],
            ],
        )
        .unwrap();
        db.insert_all(
            "visit",
            vec![tuple![2, 10], tuple![4, 10], tuple![4, 11], tuple![3, 12]],
        )
        .unwrap();
        db
    }

    #[test]
    fn q1_bounded_execution_matches_naive_and_is_bounded() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &access);
        let q1 = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        let plan = planner.plan(&q1, &["p".into()]).unwrap();
        let adb = AccessIndexedDatabase::new(social_db(), access).unwrap();

        let result = execute_bounded(&plan, &[Value::int(1)], &adb).unwrap();
        let mut answers = result.answers.clone();
        answers.sort();
        assert_eq!(answers, vec![tuple!["bob"], tuple!["dan"]]);

        // Same answers as naive evaluation with p bound to 1.
        let bound = q1.bind(&[("p".into(), Value::int(1))]);
        let mut naive = evaluate_cq(&bound, adb.database(), None).unwrap();
        naive.sort();
        assert_eq!(answers, naive);

        // Access cost: 3 friend tuples + 3 person probes (1 tuple each for
        // NYC friends 2, 4 and LA friend 3 which yields a tuple that fails
        // the city filter → fetched but filtered by the probe itself).
        assert!(result.accesses.tuples_fetched <= 6);
        assert!(result.accesses.full_scans == 0);

        // The witness really is a witness.
        assert!(crate::si::check_witness(
            &crate::si::AnyQuery::Cq(bound),
            adb.database(),
            &result.witness,
            result.witness.size()
        )
        .unwrap());
    }

    #[test]
    fn bounded_execution_for_person_without_nyc_friends_is_empty() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &access);
        let q1 = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        let plan = planner.plan(&q1, &["p".into()]).unwrap();
        let adb = AccessIndexedDatabase::new(social_db(), access).unwrap();
        // Person 4 has no outgoing friend edges.
        let result = execute_bounded(&plan, &[Value::int(4)], &adb).unwrap();
        assert!(result.answers.is_empty());
        assert_eq!(result.witness.size(), 0);
    }

    #[test]
    fn q2_with_restaurant_key_is_bounded() {
        // Q2 for a fixed person: friend, visit, person, restr.  visit has no
        // constraint in the plain Facebook schema, so add one on id.
        let schema = social_schema();
        let access = facebook_access_schema(5000).with(si_access::AccessConstraint::new(
            "visit",
            &["id"],
            1000,
            1,
        ));
        let planner = BoundedPlanner::new(&schema, &access);
        let q2 = parse_cq(
            r#"Q2(p, rn) :- friend(p, id), visit(id, rid), person(id, pn, "NYC"), restr(rid, rn, "NYC", "A")"#,
        )
        .unwrap();
        let plan = planner.plan(&q2, &["p".into()]).unwrap();
        let adb = AccessIndexedDatabase::new(social_db(), access).unwrap();
        let result = execute_bounded(&plan, &[Value::int(1)], &adb).unwrap();
        assert_eq!(result.answers, vec![tuple!["sushi"]]);
        // Cross-check against naive evaluation.
        let bound = q2.bind(&[("p".into(), Value::int(1))]);
        assert_eq!(
            result.answers,
            evaluate_cq(&bound, adb.database(), None).unwrap()
        );
    }

    #[test]
    fn q3_embedded_plan_executes_correctly() {
        let schema = social_schema_dated();
        let access = facebook_access_schema(5000)
            .with_embedded(EmbeddedConstraint::new(
                "visit",
                &["yy"],
                &["mm", "dd"],
                366,
                3,
            ))
            .with_embedded(EmbeddedConstraint::functional_dependency(
                "visit",
                &["id", "yy", "mm", "dd"],
                &["rid"],
                1,
            ));
        let planner = BoundedPlanner::new(&schema, &access);
        let q3 = parse_cq(
            r#"Q3(rn, p, yy) :- friend(p, id), visit(id, rid, yy, mm, dd), person(id, pn, "NYC"), restr(rid, rn, "NYC", "A")"#,
        )
        .unwrap();
        let plan = planner.plan(&q3, &["p".into(), "yy".into()]).unwrap();

        let mut db = Database::empty(schema.clone());
        db.insert_all(
            "person",
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "NYC"],
                tuple![3, "cat", "LA"],
            ],
        )
        .unwrap();
        db.insert_all("friend", vec![tuple![1, 2], tuple![1, 3]])
            .unwrap();
        db.insert_all(
            "restr",
            vec![
                tuple![10, "sushi", "NYC", "A"],
                tuple![11, "taco", "NYC", "B"],
            ],
        )
        .unwrap();
        db.insert_all(
            "visit",
            vec![
                tuple![2, 10, 2013, 5, 1],
                tuple![2, 11, 2013, 6, 2],
                tuple![3, 10, 2013, 7, 3],
                tuple![2, 10, 2014, 1, 1],
            ],
        )
        .unwrap();
        let adb = AccessIndexedDatabase::new(db, access).unwrap();
        let result = execute_bounded(&plan, &[Value::int(1), Value::int(2013)], &adb).unwrap();
        // Friend 2 (NYC) visited sushi (A-rated, NYC) in 2013; taco is
        // B-rated; friend 3 lives in LA.
        assert_eq!(result.answers, vec![tuple!["sushi"]]);
        // Cross-check with naive evaluation of the bound query.
        let bound = q3.bind(&[("p".into(), Value::int(1)), ("yy".into(), Value::int(2013))]);
        assert_eq!(
            result.answers,
            evaluate_cq(&bound, adb.database(), None).unwrap()
        );
        assert!(result.accesses.full_scans == 0);
    }

    #[test]
    fn parameter_arity_mismatch_is_rejected() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &access);
        let q1 = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        let plan = planner.plan(&q1, &["p".into()]).unwrap();
        let adb = AccessIndexedDatabase::new(social_db(), facebook_access_schema(5000)).unwrap();
        assert!(matches!(
            execute_bounded(&plan, &[], &adb),
            Err(CoreError::Invariant(_))
        ));
    }

    #[test]
    fn contradictory_equalities_produce_empty_answers() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &access);
        let q = parse_cq(r#"Q(name) :- friend(1, id), person(id, name, "NYC"), 1 = 2"#).unwrap();
        let plan = planner.plan(&q, &[]).unwrap();
        let adb = AccessIndexedDatabase::new(social_db(), access).unwrap();
        let result = execute_bounded(&plan, &[], &adb).unwrap();
        assert!(result.answers.is_empty());
        assert_eq!(result.accesses.tuples_fetched, 0);
    }

    #[test]
    fn static_cost_upper_bounds_measured_cost() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &access);
        let q1 = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        let plan = planner.plan(&q1, &["p".into()]).unwrap();
        let adb = AccessIndexedDatabase::new(social_db(), access).unwrap();
        for p in 1..=4 {
            let result = execute_bounded(&plan, &[Value::int(p)], &adb).unwrap();
            assert!(result.accesses.tuples_fetched <= plan.static_cost().max_tuples);
            assert!(result.accesses.index_probes <= plan.static_cost().max_probes);
        }
    }
}
