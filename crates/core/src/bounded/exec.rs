//! Execution of bounded plans against any [`AccessSource`].
//!
//! The executor realises the evaluation strategy from the proof of
//! Theorem 4.2: it maintains a set of partial assignments for the query's
//! variables and extends them step by step, touching the base data only
//! through the access-schema-mediated retrieval primitives of
//! [`AccessSource`] (an owned [`si_access::AccessIndexedDatabase`], a pinned
//! [`si_access::SnapshotAccess`] version, …).  The result records the
//! answers, the witness `D_Q` (the base facts actually used) and the exact
//! access cost.
//!
//! Assignments are flat [`Binding`]s over a [`VarTable`] built once per
//! execution: variables are numbered up front, atoms and equalities are
//! compiled to slot ids, and every extension step clones a flat slab of
//! `Copy` values instead of a `BTreeMap` — the copy-cheap data plane shared
//! with the `si-query` evaluators.
//!
//! Execution is split into three phases — [`compile`](self) the plan to slot
//! ids, run the steps, finalise (equality filter, projection, dedup) — so
//! that [`execute_bounded_partitioned`] can run the *first* fetch once and
//! fan the surviving rows out morsel-style across worker threads, each
//! worker running the remaining steps over its contiguous chunk with its own
//! meter.  Rows never interact across steps, so the partitioned result
//! (answers, witness, access counts) is identical to the sequential one —
//! the property the `si-engine` correctness tests pin down.

use crate::bounded::plan::{BoundedPlan, PlanStep};
use crate::error::CoreError;
use crate::si::Witness;
use crate::trace::{ExecPhase, TraceSink};
use si_access::AccessSource;
use si_data::{MeterSnapshot, Tuple, TupleSet, Value};
use si_query::binding::{Binding, VarId, VarTable};
use si_query::Term;

/// The result of executing a bounded plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundedAnswer {
    /// The answer tuples, projected onto the plan's output variables.
    pub answers: Vec<Tuple>,
    /// The witness `D_Q`: the base facts fetched and used by the evaluation.
    pub witness: Witness,
    /// The access cost of this execution (difference of meter snapshots).
    pub accesses: MeterSnapshot,
}

/// An atom term compiled to the plan's variable table.
#[derive(Debug, Clone, Copy)]
enum CTerm {
    Slot(VarId),
    Const(Value),
}

/// Where a probe-key component comes from.
#[derive(Debug, Clone)]
enum KeySrc {
    Const(Value),
    Slot(VarId),
}

/// Extends `binding` with the bindings induced by matching the compiled atom
/// against `tuple`; returns `None` on any inconsistency (constant mismatch or
/// conflicting variable binding).
fn extend_binding(binding: &Binding, cterms: &[CTerm], tuple: &Tuple) -> Option<Binding> {
    if tuple.arity() != cterms.len() {
        return None;
    }
    let mut extended = binding.clone();
    for (pos, ct) in cterms.iter().enumerate() {
        let value = tuple[pos];
        match ct {
            CTerm::Const(c) => {
                if *c != value {
                    return None;
                }
            }
            CTerm::Slot(id) => {
                if !extended.bind(*id, value) {
                    return None;
                }
            }
        }
    }
    Some(extended)
}

/// A plan compiled to slot ids, ready to run (phase 1 of execution).
struct CompiledPlan {
    vars: VarTable,
    /// Per-atom compiled terms, indexed like `plan.query.atoms`.
    cterms: Vec<Vec<CTerm>>,
    var_var_eqs: Vec<(VarId, VarId)>,
    var_const_eqs: Vec<(VarId, Value)>,
    /// The seed row (parameters + constant equalities), or none when the
    /// equalities are contradictory.
    seed_rows: Vec<Binding>,
    /// Which slots the seed binds (boundness is uniform across rows).
    seed_bound: Vec<bool>,
}

/// Numbers the variables once and translates atoms and equalities to slot
/// ids; builds the seed binding from the parameter values.
fn compile(plan: &BoundedPlan, parameter_values: &[Value]) -> Result<CompiledPlan, CoreError> {
    if parameter_values.len() != plan.parameters.len() {
        return Err(CoreError::Invariant(format!(
            "plan expects {} parameter values, got {}",
            plan.parameters.len(),
            parameter_values.len()
        )));
    }
    let mut vars = VarTable::new();
    for p in &plan.parameters {
        vars.intern(p);
    }
    for v in plan.query.body_variables() {
        vars.intern(&v);
    }
    let compiled: Vec<Vec<CTerm>> = plan
        .query
        .atoms
        .iter()
        .map(|atom| {
            atom.terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => CTerm::Slot(vars.intern(v)),
                    Term::Const(c) => CTerm::Const(*c),
                })
                .collect()
        })
        .collect();
    let mut var_var_eqs: Vec<(VarId, VarId)> = Vec::new();
    let mut var_const_eqs: Vec<(VarId, Value)> = Vec::new();
    let mut consistent = true;
    for (l, r) in &plan.query.equalities {
        match (l, r) {
            (Term::Var(a), Term::Var(b)) => {
                var_var_eqs.push((vars.intern(a), vars.intern(b)));
            }
            (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) => {
                var_const_eqs.push((vars.intern(v), *c));
            }
            (Term::Const(c1), Term::Const(c2)) => {
                if c1 != c2 {
                    consistent = false;
                }
            }
        }
    }

    // Seed binding: parameters plus variables equated to constants.
    let mut seed = Binding::for_table(&vars);
    for (p, value) in plan.parameters.iter().zip(parameter_values.iter()) {
        let id = vars.id_of(p).expect("parameter interned above");
        if !seed.bind(id, *value) {
            consistent = false;
        }
    }
    for (id, c) in &var_const_eqs {
        if !seed.bind(*id, *c) {
            consistent = false;
        }
    }

    // Boundness is uniform across the rows of a step, so it is tracked once.
    let seed_bound: Vec<bool> = (0..vars.len() as VarId)
        .map(|id| seed.is_bound(id))
        .collect();
    let seed_rows: Vec<Binding> = if consistent { vec![seed] } else { Vec::new() };
    Ok(CompiledPlan {
        vars,
        cterms: compiled,
        var_var_eqs,
        var_const_eqs,
        seed_rows,
        seed_bound,
    })
}

/// Runs a slice of plan steps over `rows` (phase 2), extending `bound` and
/// appending the base facts used to `witness_facts`.
///
/// This is the morsel body: the sequential executor calls it once with every
/// step, the partitioned executor calls it per worker with the tail of the
/// step list and a chunk of the first step's output rows.  Rows never
/// interact, so running chunks on separate workers and concatenating
/// preserves the sequential row order exactly.
fn run_steps<A: AccessSource>(
    plan: &BoundedPlan,
    compiled: &CompiledPlan,
    steps: &[PlanStep],
    mut rows: Vec<Binding>,
    bound: &mut [bool],
    adb: &A,
    witness_facts: &mut Vec<(String, Tuple)>,
) -> Result<Vec<Binding>, CoreError> {
    let schema = adb.db_schema();
    let vars = &compiled.vars;
    let var_var_eqs = &compiled.var_var_eqs;

    for step in steps {
        if rows.is_empty() {
            break;
        }
        // Propagate variable/variable equalities into each row where one side
        // is known, and fold the resulting boundness into `bound`.
        for row in rows.iter_mut() {
            loop {
                let mut changed = false;
                for (a, b) in var_var_eqs {
                    match (row.get(*a), row.get(*b)) {
                        (Some(va), None) => {
                            row.set(*b, va);
                            changed = true;
                        }
                        (None, Some(vb)) => {
                            row.set(*a, vb);
                            changed = true;
                        }
                        _ => {}
                    }
                }
                if !changed {
                    break;
                }
            }
        }
        loop {
            let mut changed = false;
            for (a, b) in var_var_eqs {
                let (ba, bb) = (bound[*a as usize], bound[*b as usize]);
                if ba != bb {
                    bound[*a as usize] = true;
                    bound[*b as usize] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let atom = &plan.query.atoms[step.atom_index()];
        let cterms = &compiled.cterms[step.atom_index()];
        let rel_schema = schema.relation(&atom.relation)?;
        let mut next: Vec<Binding> = Vec::new();

        match step {
            PlanStep::Fetch {
                probe_attributes,
                constraint,
                ..
            } => {
                // Resolve the probe attributes once: constants and bound
                // slots form the key; positions that became bound later (not
                // in the recorded list) are checked after the fetch by
                // `extend_binding`.
                let mut fetch_attrs: Vec<String> = Vec::new();
                let mut key_src: Vec<KeySrc> = Vec::new();
                for a in probe_attributes {
                    let pos = rel_schema.position_of(a)?;
                    match cterms[pos] {
                        CTerm::Const(c) => {
                            fetch_attrs.push(a.clone());
                            key_src.push(KeySrc::Const(c));
                        }
                        CTerm::Slot(id) => {
                            if bound[id as usize] {
                                fetch_attrs.push(a.clone());
                                key_src.push(KeySrc::Slot(id));
                            }
                        }
                    }
                }
                let mut key: Vec<Value> = Vec::with_capacity(key_src.len());
                for row in &rows {
                    key.clear();
                    for src in &key_src {
                        key.push(match src {
                            KeySrc::Const(c) => *c,
                            KeySrc::Slot(id) => row.get(*id).expect("bound slot carries a value"),
                        });
                    }
                    // Fetch through the constraint the *planner* chose: the
                    // plan is the authority on the access path, so a tied or
                    // looser constraint in the schema cannot silently turn an
                    // index-backed step into a bounded scan.
                    let fetched = adb.fetch_via(constraint, &atom.relation, &fetch_attrs, &key)?;
                    for tuple in fetched {
                        if let Some(extended) = extend_binding(row, cterms, &tuple) {
                            witness_facts.push((atom.relation.clone(), tuple));
                            next.push(extended);
                        }
                    }
                }
                for ct in cterms {
                    if let CTerm::Slot(id) = ct {
                        bound[*id as usize] = true;
                    }
                }
            }
            PlanStep::Enumerate { constraint, .. } => {
                // Enumerate values for the constraint's output attributes that
                // are not yet bound.
                let mut from_attrs: Vec<String> = Vec::new();
                let mut key_src: Vec<KeySrc> = Vec::new();
                for a in &constraint.from {
                    let pos = rel_schema.position_of(a)?;
                    match cterms[pos] {
                        CTerm::Const(c) => {
                            from_attrs.push(a.clone());
                            key_src.push(KeySrc::Const(c));
                        }
                        CTerm::Slot(id) => {
                            if !bound[id as usize] {
                                return Err(CoreError::Invariant(format!(
                                    "enumerate step requires `{}` to be bound",
                                    vars.name_of(id)
                                )));
                            }
                            from_attrs.push(a.clone());
                            key_src.push(KeySrc::Slot(id));
                        }
                    }
                }
                let onto = &constraint.onto;
                let onto_cterms: Vec<CTerm> = onto
                    .iter()
                    .map(|a| rel_schema.position_of(a).map(|pos| cterms[pos]))
                    .collect::<Result<_, _>>()?;
                let mut key: Vec<Value> = Vec::with_capacity(key_src.len());
                for row in &rows {
                    key.clear();
                    for src in &key_src {
                        key.push(match src {
                            KeySrc::Const(c) => *c,
                            KeySrc::Slot(id) => row.get(*id).expect("bound slot carries a value"),
                        });
                    }
                    let projections =
                        adb.fetch_embedded(&atom.relation, &from_attrs, &key, onto)?;
                    for proj in projections {
                        // proj is a tuple over `onto` attribute order.
                        if let Some(extended) = extend_binding(row, &onto_cterms, &proj) {
                            next.push(extended);
                        }
                    }
                }
                for ct in &onto_cterms {
                    if let CTerm::Slot(id) = ct {
                        bound[*id as usize] = true;
                    }
                }
            }
            PlanStep::Check { .. } => {
                for row in &rows {
                    let tuple: Option<Tuple> = cterms
                        .iter()
                        .map(|ct| match ct {
                            CTerm::Const(c) => Some(*c),
                            CTerm::Slot(id) => row.get(*id),
                        })
                        .collect();
                    let tuple = tuple.ok_or_else(|| {
                        CoreError::Invariant(
                            "membership check reached with unbound variables".into(),
                        )
                    })?;
                    if adb.contains(&atom.relation, &tuple)? {
                        witness_facts.push((atom.relation.clone(), tuple));
                        next.push(row.clone());
                    }
                }
            }
        }
        rows = next;
    }
    Ok(rows)
}

/// Applies the final equality filter and output projection (phase 3) and
/// assembles the [`BoundedAnswer`].
fn finalize(
    plan: &BoundedPlan,
    compiled: &CompiledPlan,
    mut rows: Vec<Binding>,
    witness_facts: Vec<(String, Tuple)>,
    accesses: MeterSnapshot,
) -> Result<BoundedAnswer, CoreError> {
    // Final equality filter (covers equalities between variables bound by
    // different steps).
    rows.retain(|row| {
        compiled
            .var_var_eqs
            .iter()
            .all(|(a, b)| match (row.get(*a), row.get(*b)) {
                (Some(va), Some(vb)) => va == vb,
                _ => false,
            })
            && compiled
                .var_const_eqs
                .iter()
                .all(|(id, c)| row.get(*id) == Some(*c))
    });

    // Project onto the output variables, deduplicating in derivation order.
    let outputs = plan.output_variables();
    let output_ids: Vec<VarId> = outputs
        .iter()
        .map(|v| {
            compiled.vars.id_of(v).ok_or_else(|| {
                CoreError::Invariant(format!("output variable `{v}` missing from the plan"))
            })
        })
        .collect::<Result<_, _>>()?;
    let mut answers = TupleSet::new();
    for row in &rows {
        let tuple = row.project(&output_ids).ok_or_else(|| {
            CoreError::Invariant("output variable not bound at the end of the plan".into())
        })?;
        answers.insert(tuple);
    }

    Ok(BoundedAnswer {
        answers: answers.into_vec(),
        witness: Witness::from_facts(witness_facts),
        accesses,
    })
}

/// The completed fetch phase of a bounded execution, before any request
/// finalised an answer from it.
///
/// Everything up to and including the plan steps depends only on
/// `(plan, parameter values, snapshot)` — not on *which* of several
/// concurrent requests asked — so N requests with an identical canonical
/// shape, identical parameter values and the same pinned snapshot epoch can
/// run the fetch **once** and each finalise its own [`BoundedAnswer`] from
/// the shared surviving rows.  [`SharedFetch::finalize_one`] touches no base
/// data: the per-request phase is the equality filter, output projection and
/// dedup of the finalisation pass, so its marginal data-access cost is zero and the
/// fetch cost ([`SharedFetch::accesses`]) is charged once for the group.
///
/// Every finalisation is bit-identical to what [`execute_bounded`] would
/// have produced for the same `(plan, values, snapshot)` — same answer
/// order, same witness, same access snapshot.
pub struct SharedFetch {
    compiled: CompiledPlan,
    rows: Vec<Binding>,
    witness_facts: Vec<(String, Tuple)>,
    accesses: MeterSnapshot,
}

impl SharedFetch {
    /// The access cost of the fetch phase — charged once per shared fetch,
    /// however many requests finalise from it.
    pub fn accesses(&self) -> MeterSnapshot {
        self.accesses
    }

    /// Number of partial assignments that survived the plan steps.
    pub fn surviving_rows(&self) -> usize {
        self.rows.len()
    }

    /// Finalises one request's answer from the shared fetched slice —
    /// equality filter, projection, dedup; zero base-data accesses.  `plan`
    /// must be the plan this fetch ran (same `Arc` in the serving layer).
    pub fn finalize_one(&self, plan: &BoundedPlan) -> Result<BoundedAnswer, CoreError> {
        finalize(
            plan,
            &self.compiled,
            self.rows.clone(),
            self.witness_facts.clone(),
            self.accesses,
        )
    }

    /// Finalises the last answer, consuming the fetch (the single-request
    /// path: no clone of rows or witness).
    pub fn into_answer(self, plan: &BoundedPlan) -> Result<BoundedAnswer, CoreError> {
        finalize(
            plan,
            &self.compiled,
            self.rows,
            self.witness_facts,
            self.accesses,
        )
    }
}

/// Runs the fetch phase of `plan` — compile, seed, every plan step — over
/// `adb` and returns the [`SharedFetch`] requests finalise answers from.
///
/// `parameter_values` must supply one value per plan parameter, in order.
pub fn fetch_bounded<A: AccessSource>(
    plan: &BoundedPlan,
    parameter_values: &[Value],
    adb: &A,
) -> Result<SharedFetch, CoreError> {
    let before = adb.meter_snapshot();
    let compiled = compile(plan, parameter_values)?;
    let mut bound = compiled.seed_bound.clone();
    let mut witness_facts: Vec<(String, Tuple)> = Vec::new();
    let rows = run_steps(
        plan,
        &compiled,
        &plan.steps,
        compiled.seed_rows.clone(),
        &mut bound,
        adb,
        &mut witness_facts,
    )?;
    let accesses = adb.meter_snapshot().since(&before);
    Ok(SharedFetch {
        compiled,
        rows,
        witness_facts,
        accesses,
    })
}

/// Executes `plan` with the given parameter values over `adb`.
///
/// `parameter_values` must supply one value per plan parameter, in order.
pub fn execute_bounded<A: AccessSource>(
    plan: &BoundedPlan,
    parameter_values: &[Value],
    adb: &A,
) -> Result<BoundedAnswer, CoreError> {
    fetch_bounded(plan, parameter_values, adb)?.into_answer(plan)
}

/// Wall-clock nanoseconds since `start`, saturating.
fn nanos_since(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// [`execute_bounded`] with per-phase timing reported to `sink`.
///
/// Identical result to [`execute_bounded`]; additionally reports the
/// duration of the fetch phase (compile + seed + plan steps) and of the
/// finalize pass (equality filter + projection + dedup) as
/// [`ExecPhase::Fetch`] / [`ExecPhase::Finalize`].
pub fn execute_bounded_traced<A: AccessSource>(
    plan: &BoundedPlan,
    parameter_values: &[Value],
    adb: &A,
    sink: &mut dyn TraceSink,
) -> Result<BoundedAnswer, CoreError> {
    let start = std::time::Instant::now();
    let fetch = fetch_bounded(plan, parameter_values, adb)?;
    sink.exec_phase(ExecPhase::Fetch, nanos_since(start));
    let start = std::time::Instant::now();
    let answer = fetch.into_answer(plan)?;
    sink.exec_phase(ExecPhase::Finalize, nanos_since(start));
    Ok(answer)
}

/// Executes `plan` morsel-style across `workers` threads.
///
/// The first step runs once (its probe key is the seed binding — the
/// parameters); the surviving partial bindings are split into `workers`
/// contiguous chunks, and each worker runs the remaining steps over its
/// chunk against its own [`AccessSource`] obtained from `source` — in the
/// serving layer that is a [`si_access::SnapshotAccess::fork`] over the same
/// pinned snapshot with a fresh per-worker meter.
///
/// Chunking preserves row order and rows never interact across steps, so
/// the merged answers, witness and access counts are **identical** to
/// [`execute_bounded`] — parallelism changes wall-clock time only.  With
/// `workers <= 1`, fewer than two plan steps, or fewer than two surviving
/// rows, execution stays on the calling thread.
pub fn execute_bounded_partitioned<A, F>(
    plan: &BoundedPlan,
    parameter_values: &[Value],
    source: F,
    workers: usize,
) -> Result<BoundedAnswer, CoreError>
where
    A: AccessSource,
    F: Fn() -> A + Sync,
{
    partitioned_impl(plan, parameter_values, source, workers, None)
}

/// [`execute_bounded_partitioned`] with per-phase timing reported to `sink`.
///
/// The fetch phase covers the first-step probe, the morsel fan-out, and the
/// merge of worker results; the finalize phase is the sequential equality
/// filter + projection + dedup over the merged rows.
pub fn execute_bounded_partitioned_traced<A, F>(
    plan: &BoundedPlan,
    parameter_values: &[Value],
    source: F,
    workers: usize,
    sink: &mut dyn TraceSink,
) -> Result<BoundedAnswer, CoreError>
where
    A: AccessSource,
    F: Fn() -> A + Sync,
{
    partitioned_impl(plan, parameter_values, source, workers, Some(sink))
}

fn partitioned_impl<A, F>(
    plan: &BoundedPlan,
    parameter_values: &[Value],
    source: F,
    workers: usize,
    mut sink: Option<&mut dyn TraceSink>,
) -> Result<BoundedAnswer, CoreError>
where
    A: AccessSource,
    F: Fn() -> A + Sync,
{
    let main = source();
    if workers <= 1 || plan.steps.len() < 2 {
        return match sink {
            Some(sink) => execute_bounded_traced(plan, parameter_values, &main, sink),
            None => execute_bounded(plan, parameter_values, &main),
        };
    }
    let fetch_start = std::time::Instant::now();
    let before = main.meter_snapshot();
    let compiled = compile(plan, parameter_values)?;
    let mut bound = compiled.seed_bound.clone();
    let mut witness_facts: Vec<(String, Tuple)> = Vec::new();
    let (first, rest) = plan.steps.split_first().expect("checked: >= 2 steps");
    let rows = run_steps(
        plan,
        &compiled,
        std::slice::from_ref(first),
        compiled.seed_rows.clone(),
        &mut bound,
        &main,
        &mut witness_facts,
    )?;

    if rows.len() < 2 {
        let rows = run_steps(
            plan,
            &compiled,
            rest,
            rows,
            &mut bound,
            &main,
            &mut witness_facts,
        )?;
        let accesses = main.meter_snapshot().since(&before);
        if let Some(sink) = sink.as_deref_mut() {
            sink.exec_phase(ExecPhase::Fetch, nanos_since(fetch_start));
        }
        let finalize_start = std::time::Instant::now();
        let answer = finalize(plan, &compiled, rows, witness_facts, accesses);
        if let Some(sink) = sink {
            sink.exec_phase(ExecPhase::Finalize, nanos_since(finalize_start));
        }
        return answer;
    }
    let mut accesses = main.meter_snapshot().since(&before);

    // Contiguous chunks keep the sequential row order when concatenated.
    // Workers record witness facts *per step* so the merge can interleave
    // them step-major (all workers' step-2 facts, then step-3, …) — the
    // order the sequential executor produces.
    type WorkerResult = Result<(Vec<Binding>, Vec<Vec<(String, Tuple)>>, MeterSnapshot), CoreError>;
    let chunk_size = rows.len().div_ceil(workers);
    let worker_results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = rows
            .chunks(chunk_size)
            .map(|chunk| {
                let compiled = &compiled;
                let source = &source;
                let bound_after_first = bound.clone();
                scope.spawn(move || {
                    let src = source();
                    let before = src.meter_snapshot();
                    let mut bound = bound_after_first;
                    let mut chunk_rows = chunk.to_vec();
                    let mut witness_per_step: Vec<Vec<(String, Tuple)>> =
                        Vec::with_capacity(rest.len());
                    // One run_steps call per step: identical semantics to one
                    // call with the whole slice (rows and boundness thread
                    // through), but the witness stays step-separable.
                    for step in rest {
                        let mut witness: Vec<(String, Tuple)> = Vec::new();
                        chunk_rows = run_steps(
                            plan,
                            compiled,
                            std::slice::from_ref(step),
                            chunk_rows,
                            &mut bound,
                            &src,
                            &mut witness,
                        )?;
                        witness_per_step.push(witness);
                    }
                    Ok((
                        chunk_rows,
                        witness_per_step,
                        src.meter_snapshot().since(&before),
                    ))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("partitioned worker panicked"))
            .collect()
    });

    let mut all_rows: Vec<Binding> = Vec::new();
    let mut witness_by_step: Vec<Vec<Vec<(String, Tuple)>>> = Vec::new();
    for result in worker_results {
        let (rows_i, witness_i, accesses_i) = result?;
        all_rows.extend(rows_i);
        witness_by_step.push(witness_i);
        accesses = accesses.plus(&accesses_i);
    }
    // Step-major, worker-minor: exactly the sequential append order.
    for step_index in 0..rest.len() {
        for worker_witness in &mut witness_by_step {
            if step_index < worker_witness.len() {
                witness_facts.append(&mut worker_witness[step_index]);
            }
        }
    }
    if let Some(sink) = sink.as_deref_mut() {
        sink.exec_phase(ExecPhase::Fetch, nanos_since(fetch_start));
    }
    let finalize_start = std::time::Instant::now();
    let answer = finalize(plan, &compiled, all_rows, witness_facts, accesses);
    if let Some(sink) = sink {
        sink.exec_phase(ExecPhase::Finalize, nanos_since(finalize_start));
    }
    answer
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::plan::BoundedPlanner;
    use si_access::{facebook_access_schema, AccessIndexedDatabase, EmbeddedConstraint};
    use si_data::schema::{social_schema, social_schema_dated};
    use si_data::{tuple, Database};
    use si_query::{evaluate_cq, parse_cq};

    fn social_db() -> Database {
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "NYC"],
                tuple![3, "cat", "LA"],
                tuple![4, "dan", "NYC"],
            ],
        )
        .unwrap();
        db.insert_all(
            "friend",
            vec![
                tuple![1, 2],
                tuple![1, 3],
                tuple![1, 4],
                tuple![2, 4],
                tuple![3, 1],
            ],
        )
        .unwrap();
        db.insert_all(
            "restr",
            vec![
                tuple![10, "sushi", "NYC", "A"],
                tuple![11, "taco", "NYC", "B"],
                tuple![12, "pasta", "LA", "A"],
            ],
        )
        .unwrap();
        db.insert_all(
            "visit",
            vec![tuple![2, 10], tuple![4, 10], tuple![4, 11], tuple![3, 12]],
        )
        .unwrap();
        db
    }

    #[test]
    fn q1_bounded_execution_matches_naive_and_is_bounded() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &access);
        let q1 = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        let plan = planner.plan(&q1, &["p".into()]).unwrap();
        let adb = AccessIndexedDatabase::new(social_db(), access).unwrap();

        let result = execute_bounded(&plan, &[Value::int(1)], &adb).unwrap();
        let mut answers = result.answers.clone();
        answers.sort();
        assert_eq!(answers, vec![tuple!["bob"], tuple!["dan"]]);

        // Same answers as naive evaluation with p bound to 1.
        let bound = q1.bind(&[("p".into(), Value::int(1))]);
        let mut naive = evaluate_cq(&bound, adb.database(), None).unwrap();
        naive.sort();
        assert_eq!(answers, naive);

        // Access cost: 3 friend tuples + 3 person probes (1 tuple each for
        // NYC friends 2, 4 and LA friend 3 which yields a tuple that fails
        // the city filter → fetched but filtered by the probe itself).
        assert!(result.accesses.tuples_fetched <= 6);
        assert!(result.accesses.full_scans == 0);

        // The witness really is a witness.
        assert!(crate::si::check_witness(
            &crate::si::AnyQuery::Cq(bound),
            adb.database(),
            &result.witness,
            result.witness.size()
        )
        .unwrap());
    }

    #[test]
    fn bounded_execution_for_person_without_nyc_friends_is_empty() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &access);
        let q1 = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        let plan = planner.plan(&q1, &["p".into()]).unwrap();
        let adb = AccessIndexedDatabase::new(social_db(), access).unwrap();
        // Person 4 has no outgoing friend edges.
        let result = execute_bounded(&plan, &[Value::int(4)], &adb).unwrap();
        assert!(result.answers.is_empty());
        assert_eq!(result.witness.size(), 0);
    }

    #[test]
    fn q2_with_restaurant_key_is_bounded() {
        // Q2 for a fixed person: friend, visit, person, restr.  visit has no
        // constraint in the plain Facebook schema, so add one on id.
        let schema = social_schema();
        let access = facebook_access_schema(5000).with(si_access::AccessConstraint::new(
            "visit",
            &["id"],
            1000,
            1,
        ));
        let planner = BoundedPlanner::new(&schema, &access);
        let q2 = parse_cq(
            r#"Q2(p, rn) :- friend(p, id), visit(id, rid), person(id, pn, "NYC"), restr(rid, rn, "NYC", "A")"#,
        )
        .unwrap();
        let plan = planner.plan(&q2, &["p".into()]).unwrap();
        let adb = AccessIndexedDatabase::new(social_db(), access).unwrap();
        let result = execute_bounded(&plan, &[Value::int(1)], &adb).unwrap();
        assert_eq!(result.answers, vec![tuple!["sushi"]]);
        // Cross-check against naive evaluation.
        let bound = q2.bind(&[("p".into(), Value::int(1))]);
        assert_eq!(
            result.answers,
            evaluate_cq(&bound, adb.database(), None).unwrap()
        );
    }

    #[test]
    fn q3_embedded_plan_executes_correctly() {
        let schema = social_schema_dated();
        let access = facebook_access_schema(5000)
            .with_embedded(EmbeddedConstraint::new(
                "visit",
                &["yy"],
                &["mm", "dd"],
                366,
                3,
            ))
            .with_embedded(EmbeddedConstraint::functional_dependency(
                "visit",
                &["id", "yy", "mm", "dd"],
                &["rid"],
                1,
            ));
        let planner = BoundedPlanner::new(&schema, &access);
        let q3 = parse_cq(
            r#"Q3(rn, p, yy) :- friend(p, id), visit(id, rid, yy, mm, dd), person(id, pn, "NYC"), restr(rid, rn, "NYC", "A")"#,
        )
        .unwrap();
        let plan = planner.plan(&q3, &["p".into(), "yy".into()]).unwrap();

        let mut db = Database::empty(schema.clone());
        db.insert_all(
            "person",
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "NYC"],
                tuple![3, "cat", "LA"],
            ],
        )
        .unwrap();
        db.insert_all("friend", vec![tuple![1, 2], tuple![1, 3]])
            .unwrap();
        db.insert_all(
            "restr",
            vec![
                tuple![10, "sushi", "NYC", "A"],
                tuple![11, "taco", "NYC", "B"],
            ],
        )
        .unwrap();
        db.insert_all(
            "visit",
            vec![
                tuple![2, 10, 2013, 5, 1],
                tuple![2, 11, 2013, 6, 2],
                tuple![3, 10, 2013, 7, 3],
                tuple![2, 10, 2014, 1, 1],
            ],
        )
        .unwrap();
        let adb = AccessIndexedDatabase::new(db, access).unwrap();
        let result = execute_bounded(&plan, &[Value::int(1), Value::int(2013)], &adb).unwrap();
        // Friend 2 (NYC) visited sushi (A-rated, NYC) in 2013; taco is
        // B-rated; friend 3 lives in LA.
        assert_eq!(result.answers, vec![tuple!["sushi"]]);
        // Cross-check with naive evaluation of the bound query.
        let bound = q3.bind(&[("p".into(), Value::int(1)), ("yy".into(), Value::int(2013))]);
        assert_eq!(
            result.answers,
            evaluate_cq(&bound, adb.database(), None).unwrap()
        );
        assert!(result.accesses.full_scans == 0);
    }

    #[test]
    fn parameter_arity_mismatch_is_rejected() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &access);
        let q1 = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        let plan = planner.plan(&q1, &["p".into()]).unwrap();
        let adb = AccessIndexedDatabase::new(social_db(), facebook_access_schema(5000)).unwrap();
        assert!(matches!(
            execute_bounded(&plan, &[], &adb),
            Err(CoreError::Invariant(_))
        ));
    }

    #[test]
    fn contradictory_equalities_produce_empty_answers() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &access);
        let q = parse_cq(r#"Q(name) :- friend(1, id), person(id, name, "NYC"), 1 = 2"#).unwrap();
        let plan = planner.plan(&q, &[]).unwrap();
        let adb = AccessIndexedDatabase::new(social_db(), access).unwrap();
        let result = execute_bounded(&plan, &[], &adb).unwrap();
        assert!(result.answers.is_empty());
        assert_eq!(result.accesses.tuples_fetched, 0);
    }

    #[test]
    fn partitioned_execution_is_bit_identical_to_sequential() {
        use si_data::SnapshotStore;
        use std::sync::Arc;
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &access);
        let q1 = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        let plan = planner.plan(&q1, &["p".into()]).unwrap();

        // A database where person 1 has many friends, so the first fetch
        // yields enough rows for every worker to get a non-trivial chunk.
        let mut db = Database::empty(schema);
        for i in 2..200i64 {
            db.insert("friend", tuple![1, i]).unwrap();
            let city = if i % 3 == 0 { "NYC" } else { "LA" };
            db.insert("person", tuple![i, format!("p{i}"), city])
                .unwrap();
        }
        for (relation, attrs) in access.required_indexes() {
            if !attrs.is_empty() {
                db.declare_index(&relation, &attrs).unwrap();
            }
        }
        let sequential = {
            let adb = AccessIndexedDatabase::new(db.clone(), access.clone()).unwrap();
            execute_bounded(&plan, &[Value::int(1)], &adb).unwrap()
        };

        let store = SnapshotStore::new(db);
        let access = Arc::new(access);
        for workers in [1usize, 2, 3, 4, 8, 64] {
            let snap = store.pin();
            let make = || {
                si_access::SnapshotAccess::<si_data::AccessMeter>::new(snap.clone(), access.clone())
            };
            let parallel =
                execute_bounded_partitioned(&plan, &[Value::int(1)], make, workers).unwrap();
            // Identical answers *in the same order*, identical witness,
            // identical access accounting.
            assert_eq!(parallel.answers, sequential.answers, "workers={workers}");
            assert_eq!(parallel.witness, sequential.witness, "workers={workers}");
            assert_eq!(parallel.accesses, sequential.accesses, "workers={workers}");
        }
    }

    #[test]
    fn partitioned_three_step_plan_keeps_the_sequential_witness_order() {
        // Witness facts are appended step-major in sequential execution; a
        // chunk-major merge would reorder them on plans with 3+ steps (this
        // is a regression test for exactly that bug).
        use si_data::SnapshotStore;
        use std::sync::Arc;
        let schema = social_schema();
        let access = facebook_access_schema(5000).with(si_access::AccessConstraint::new(
            "visit",
            &["id"],
            1000,
            1,
        ));
        let planner = BoundedPlanner::new(&schema, &access);
        let q2 = parse_cq(
            r#"Q2(p, rn) :- friend(p, id), visit(id, rid), person(id, pn, "NYC"), restr(rid, rn, "NYC", "A")"#,
        )
        .unwrap();
        let plan = planner.plan(&q2, &["p".into()]).unwrap();
        assert!(plan.steps.len() >= 3, "Q2 must exercise a multi-step tail");

        let mut db = Database::empty(schema);
        for i in 2..120i64 {
            db.insert("friend", tuple![1, i]).unwrap();
            let city = if i % 2 == 0 { "NYC" } else { "LA" };
            db.insert("person", tuple![i, format!("p{i}"), city])
                .unwrap();
            db.insert("visit", tuple![i, 1000 + i % 7]).unwrap();
        }
        for r in 0..7i64 {
            let rating = if r % 2 == 0 { "A" } else { "B" };
            db.insert("restr", tuple![1000 + r, format!("r{r}"), "NYC", rating])
                .unwrap();
        }
        for (relation, attrs) in access.required_indexes() {
            if !attrs.is_empty() {
                db.declare_index(&relation, &attrs).unwrap();
            }
        }
        let sequential = {
            let adb = AccessIndexedDatabase::new(db.clone(), access.clone()).unwrap();
            execute_bounded(&plan, &[Value::int(1)], &adb).unwrap()
        };
        assert!(!sequential.answers.is_empty());

        let store = SnapshotStore::new(db);
        let access = Arc::new(access);
        let snap = store.pin();
        for workers in [2usize, 3, 4, 8] {
            let make = || {
                si_access::SnapshotAccess::<si_data::AccessMeter>::new(snap.clone(), access.clone())
            };
            let parallel =
                execute_bounded_partitioned(&plan, &[Value::int(1)], make, workers).unwrap();
            assert_eq!(parallel.answers, sequential.answers, "workers={workers}");
            assert_eq!(parallel.witness, sequential.witness, "workers={workers}");
            assert_eq!(parallel.accesses, sequential.accesses, "workers={workers}");
        }
    }

    #[test]
    fn partitioned_execution_handles_empty_and_tiny_row_sets() {
        use si_data::SnapshotStore;
        use std::sync::Arc;
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &access);
        let q1 = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        let plan = planner.plan(&q1, &["p".into()]).unwrap();
        let store = SnapshotStore::new(social_db());
        let access = Arc::new(access);
        let snap = store.pin();
        let make =
            || si_access::SnapshotAccess::<si_data::AccessMeter>::new(snap.clone(), access.clone());
        // Person 4 has no outgoing friends: first fetch yields zero rows.
        let empty = execute_bounded_partitioned(&plan, &[Value::int(4)], make, 4).unwrap();
        assert!(empty.answers.is_empty());
        // Person 2 has exactly one friend: single-row fast path.
        let one = execute_bounded_partitioned(&plan, &[Value::int(2)], make, 4).unwrap();
        assert_eq!(one.answers, vec![tuple!["dan"]]);
    }

    #[test]
    fn partitioned_execution_over_a_sharded_source_matches_sequential_unsharded() {
        // Data sharding (ShardedAccess over a hash-partitioned store) and
        // morsel sharding (execute_bounded_partitioned) compose: each worker
        // forks a sharded source over the same pinned shard vector, and the
        // merged result keeps the answer *set*, witness *set* and meter
        // identical to sequential execution over the unsharded store.
        use si_data::{PartitionMap, ShardedSnapshotStore, SnapshotStore};
        use std::collections::BTreeSet;
        use std::sync::Arc;
        let schema = social_schema();
        let access = facebook_access_schema(5000).with(si_access::AccessConstraint::new(
            "visit",
            &["id"],
            1000,
            1,
        ));
        let planner = BoundedPlanner::new(&schema, &access);
        let q2 = parse_cq(
            r#"Q2(p, rn) :- friend(p, id), visit(id, rid), person(id, pn, "NYC"), restr(rid, rn, "NYC", "A")"#,
        )
        .unwrap();
        let plan = planner.plan(&q2, &["p".into()]).unwrap();

        let mut db = Database::empty(schema);
        for i in 2..150i64 {
            db.insert("friend", tuple![1, i]).unwrap();
            let city = if i % 2 == 0 { "NYC" } else { "LA" };
            db.insert("person", tuple![i, format!("p{i}"), city])
                .unwrap();
            db.insert("visit", tuple![i, 1000 + i % 5]).unwrap();
        }
        for r in 0..5i64 {
            let rating = if r % 2 == 0 { "A" } else { "B" };
            db.insert("restr", tuple![1000 + r, format!("r{r}"), "NYC", rating])
                .unwrap();
        }
        for (relation, attrs) in access.required_indexes() {
            if !attrs.is_empty() {
                db.declare_index(&relation, &attrs).unwrap();
            }
        }
        let sequential = {
            let store = SnapshotStore::new(db.clone());
            let view = si_access::SnapshotAccess::<si_data::AccessMeter>::new(
                store.pin(),
                Arc::new(access.clone()),
            );
            execute_bounded(&plan, &[Value::int(1)], &view).unwrap()
        };
        assert!(!sequential.answers.is_empty());
        let partition = PartitionMap::new()
            .with("person", "id")
            .with("friend", "id1")
            .with("visit", "id")
            .with("restr", "rid");

        let canon = |answer: &BoundedAnswer| {
            let mut answers = answer.answers.clone();
            answers.sort();
            let facts: BTreeSet<(String, Tuple)> = answer.witness.facts.iter().cloned().collect();
            (answers, facts)
        };
        let expected = canon(&sequential);
        for data_shards in [1usize, 3, 8] {
            let store =
                ShardedSnapshotStore::new(db.clone(), partition.clone(), data_shards).unwrap();
            let view = store.pin();
            let access = Arc::new(access.clone());
            for workers in [1usize, 2, 4, 8] {
                let make = || {
                    si_access::ShardedAccess::<si_data::AccessMeter>::new(
                        view.clone(),
                        access.clone(),
                    )
                };
                let parallel =
                    execute_bounded_partitioned(&plan, &[Value::int(1)], make, workers).unwrap();
                assert_eq!(
                    canon(&parallel),
                    expected,
                    "data_shards={data_shards} workers={workers}"
                );
                assert_eq!(
                    parallel.accesses, sequential.accesses,
                    "data_shards={data_shards} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn shared_fetch_finalisations_are_bit_identical_to_execute_bounded() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &access);
        let q1 = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        let plan = planner.plan(&q1, &["p".into()]).unwrap();
        let adb = AccessIndexedDatabase::new(social_db(), access).unwrap();

        let reference = execute_bounded(&plan, &[Value::int(1)], &adb).unwrap();
        let fetch = fetch_bounded(&plan, &[Value::int(1)], &adb).unwrap();
        assert_eq!(fetch.accesses(), reference.accesses);
        // Every finalisation from the shared slice equals the reference —
        // same answer order, same witness, same access snapshot.
        for _ in 0..3 {
            let one = fetch.finalize_one(&plan).unwrap();
            assert_eq!(one.answers, reference.answers);
            assert_eq!(one.witness, reference.witness);
            assert_eq!(one.accesses, reference.accesses);
        }
        let last = fetch.into_answer(&plan).unwrap();
        assert_eq!(last.answers, reference.answers);
        assert_eq!(last.witness, reference.witness);
        assert_eq!(last.accesses, reference.accesses);
    }

    #[test]
    fn finalize_one_touches_no_base_data() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &access);
        let q1 = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        let plan = planner.plan(&q1, &["p".into()]).unwrap();
        let adb = AccessIndexedDatabase::new(social_db(), access).unwrap();

        let fetch = fetch_bounded(&plan, &[Value::int(1)], &adb).unwrap();
        assert!(fetch.surviving_rows() > 0);
        let after_fetch = adb.meter_snapshot();
        for _ in 0..5 {
            fetch.finalize_one(&plan).unwrap();
        }
        // The per-request phase is filter + projection + dedup over the
        // already-fetched slice: the meter must not have moved at all.
        assert_eq!(adb.meter_snapshot(), after_fetch);
    }

    #[test]
    fn shared_fetch_of_empty_result_finalises_empty() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &access);
        let q1 = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        let plan = planner.plan(&q1, &["p".into()]).unwrap();
        let adb = AccessIndexedDatabase::new(social_db(), access).unwrap();
        // Person 4 has no outgoing friend edges.
        let fetch = fetch_bounded(&plan, &[Value::int(4)], &adb).unwrap();
        let one = fetch.finalize_one(&plan).unwrap();
        assert!(one.answers.is_empty());
        assert_eq!(one.witness.size(), 0);
    }

    #[test]
    fn static_cost_upper_bounds_measured_cost() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &access);
        let q1 = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        let plan = planner.plan(&q1, &["p".into()]).unwrap();
        let adb = AccessIndexedDatabase::new(social_db(), access).unwrap();
        for p in 1..=4 {
            let result = execute_bounded(&plan, &[Value::int(p)], &adb).unwrap();
            assert!(result.accesses.tuples_fetched <= plan.static_cost().max_tuples);
            assert!(result.accesses.index_probes <= plan.static_cost().max_probes);
        }
    }
}
