//! Execution of bounded plans against an access-indexed database.
//!
//! The executor realises the evaluation strategy from the proof of
//! Theorem 4.2: it maintains a set of partial assignments for the query's
//! variables and extends them step by step, touching the base data only
//! through the access-schema-mediated retrieval primitives of
//! [`AccessIndexedDatabase`].  The result records the answers, the witness
//! `D_Q` (the base facts actually used) and the exact access cost.

use crate::bounded::plan::{BoundedPlan, PlanStep};
use crate::error::CoreError;
use crate::si::Witness;
use si_access::AccessIndexedDatabase;
use si_data::{MeterSnapshot, Tuple, Value};
use si_query::{Term, Var};
use std::collections::{BTreeMap, BTreeSet};

/// A variable assignment built during execution.
type Assignment = BTreeMap<Var, Value>;

/// The result of executing a bounded plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundedAnswer {
    /// The answer tuples, projected onto the plan's output variables.
    pub answers: Vec<Tuple>,
    /// The witness `D_Q`: the base facts fetched and used by the evaluation.
    pub witness: Witness,
    /// The access cost of this execution (difference of meter snapshots).
    pub accesses: MeterSnapshot,
}

/// Executes `plan` with the given parameter values over `adb`.
///
/// `parameter_values` must supply one value per plan parameter, in order.
pub fn execute_bounded(
    plan: &BoundedPlan,
    parameter_values: &[Value],
    adb: &AccessIndexedDatabase,
) -> Result<BoundedAnswer, CoreError> {
    if parameter_values.len() != plan.parameters.len() {
        return Err(CoreError::Invariant(format!(
            "plan expects {} parameter values, got {}",
            plan.parameters.len(),
            parameter_values.len()
        )));
    }
    let before = adb.meter_snapshot();
    let schema = adb.database().schema();

    // Seed assignment: parameters plus variables equated to constants.
    let mut seed: Assignment = plan
        .parameters
        .iter()
        .cloned()
        .zip(parameter_values.iter().cloned())
        .collect();
    let mut consistent = true;
    for (l, r) in &plan.query.equalities {
        match (l, r) {
            (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) => {
                match seed.get(v) {
                    Some(existing) if existing != c => consistent = false,
                    _ => {
                        seed.insert(v.clone(), c.clone());
                    }
                }
            }
            (Term::Const(c1), Term::Const(c2)) if c1 != c2 => consistent = false,
            _ => {}
        }
    }

    let mut assignments: Vec<Assignment> = if consistent { vec![seed] } else { Vec::new() };
    let mut witness_facts: Vec<(String, Tuple)> = Vec::new();

    for step in &plan.steps {
        if assignments.is_empty() {
            break;
        }
        // Propagate variable/variable equalities into each assignment where
        // one side is known.
        for assignment in assignments.iter_mut() {
            loop {
                let mut changed = false;
                for (l, r) in &plan.query.equalities {
                    if let (Term::Var(a), Term::Var(b)) = (l, r) {
                        if let (Some(va), None) =
                            (assignment.get(a).cloned(), assignment.get(b).cloned())
                        {
                            assignment.insert(b.clone(), va);
                            changed = true;
                        } else if let (None, Some(vb)) =
                            (assignment.get(a).cloned(), assignment.get(b).cloned())
                        {
                            assignment.insert(a.clone(), vb);
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
        }

        let atom = &plan.query.atoms[step.atom_index()];
        let rel_schema = schema.relation(&atom.relation)?;
        let mut next: Vec<Assignment> = Vec::new();

        match step {
            PlanStep::Fetch {
                probe_attributes, ..
            } => {
                for assignment in &assignments {
                    // Build the probe key from the bound positions named in
                    // the plan; positions that became bound later (not in the
                    // recorded list) are checked after the fetch.
                    let mut attrs: Vec<String> = Vec::new();
                    let mut key: Vec<Value> = Vec::new();
                    for a in probe_attributes {
                        let pos = rel_schema.position_of(a)?;
                        match &atom.terms[pos] {
                            Term::Const(c) => {
                                attrs.push(a.clone());
                                key.push(c.clone());
                            }
                            Term::Var(v) => {
                                if let Some(value) = assignment.get(v) {
                                    attrs.push(a.clone());
                                    key.push(value.clone());
                                }
                            }
                        }
                    }
                    let fetched = adb.fetch(&atom.relation, &attrs, &key)?;
                    for tuple in fetched {
                        if let Some(extended) = extend_assignment(assignment, atom, &tuple) {
                            witness_facts.push((atom.relation.clone(), tuple.clone()));
                            next.push(extended);
                        }
                    }
                }
            }
            PlanStep::Enumerate { constraint, .. } => {
                // Enumerate values for the constraint's output attributes that
                // are not yet bound.
                for assignment in &assignments {
                    let mut from_attrs: Vec<String> = Vec::new();
                    let mut from_key: Vec<Value> = Vec::new();
                    for a in &constraint.from {
                        let pos = rel_schema.position_of(a)?;
                        match &atom.terms[pos] {
                            Term::Const(c) => {
                                from_attrs.push(a.clone());
                                from_key.push(c.clone());
                            }
                            Term::Var(v) => {
                                let value = assignment.get(v).ok_or_else(|| {
                                    CoreError::Invariant(format!(
                                        "enumerate step requires `{v}` to be bound"
                                    ))
                                })?;
                                from_attrs.push(a.clone());
                                from_key.push(value.clone());
                            }
                        }
                    }
                    let onto: Vec<String> = constraint.onto.clone();
                    let projections =
                        adb.fetch_embedded(&atom.relation, &from_attrs, &from_key, &onto)?;
                    for proj in projections {
                        // proj is a tuple over `onto` attribute order.
                        let mut extended = assignment.clone();
                        let mut ok = true;
                        for (a, value) in onto.iter().zip(proj.iter()) {
                            let pos = rel_schema.position_of(a)?;
                            match &atom.terms[pos] {
                                Term::Const(c) => {
                                    if c != value {
                                        ok = false;
                                        break;
                                    }
                                }
                                Term::Var(v) => match extended.get(v) {
                                    Some(existing) if existing != value => {
                                        ok = false;
                                        break;
                                    }
                                    Some(_) => {}
                                    None => {
                                        extended.insert(v.clone(), value.clone());
                                    }
                                },
                            }
                        }
                        if ok {
                            next.push(extended);
                        }
                    }
                }
            }
            PlanStep::Check { .. } => {
                for assignment in &assignments {
                    let tuple: Option<Tuple> = atom
                        .terms
                        .iter()
                        .map(|t| match t {
                            Term::Const(c) => Some(c.clone()),
                            Term::Var(v) => assignment.get(v).cloned(),
                        })
                        .collect();
                    let tuple = tuple.ok_or_else(|| {
                        CoreError::Invariant(
                            "membership check reached with unbound variables".into(),
                        )
                    })?;
                    if adb.contains(&atom.relation, &tuple)? {
                        witness_facts.push((atom.relation.clone(), tuple));
                        next.push(assignment.clone());
                    }
                }
            }
        }
        assignments = next;
    }

    // Final equality filter (covers equalities between variables bound by
    // different steps).
    assignments.retain(|assignment| {
        plan.query.equalities.iter().all(|(l, r)| {
            let value_of = |t: &Term| match t {
                Term::Var(v) => assignment.get(v).cloned(),
                Term::Const(c) => Some(c.clone()),
            };
            match (value_of(l), value_of(r)) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            }
        })
    });

    // Project onto the output variables.
    let outputs = plan.output_variables();
    let mut seen: BTreeSet<Tuple> = BTreeSet::new();
    let mut answers: Vec<Tuple> = Vec::new();
    for assignment in &assignments {
        let tuple: Option<Tuple> = outputs.iter().map(|v| assignment.get(v).cloned()).collect();
        let tuple = tuple.ok_or_else(|| {
            CoreError::Invariant("output variable not bound at the end of the plan".into())
        })?;
        if seen.insert(tuple.clone()) {
            answers.push(tuple);
        }
    }

    let after = adb.meter_snapshot();
    Ok(BoundedAnswer {
        answers,
        witness: Witness::from_facts(witness_facts),
        accesses: after.since(&before),
    })
}

/// Extends `assignment` with the bindings induced by matching `atom` against
/// `tuple`; returns `None` on any inconsistency (constant mismatch or
/// conflicting variable binding).
fn extend_assignment(assignment: &Assignment, atom: &si_query::Atom, tuple: &Tuple) -> Option<Assignment> {
    let mut extended = assignment.clone();
    for (pos, term) in atom.terms.iter().enumerate() {
        let value = tuple.get(pos)?;
        match term {
            Term::Const(c) => {
                if c != value {
                    return None;
                }
            }
            Term::Var(v) => match extended.get(v) {
                Some(existing) if existing != value => return None,
                Some(_) => {}
                None => {
                    extended.insert(v.clone(), value.clone());
                }
            },
        }
    }
    Some(extended)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::plan::BoundedPlanner;
    use si_access::{facebook_access_schema, EmbeddedConstraint};
    use si_data::schema::{social_schema, social_schema_dated};
    use si_data::{tuple, Database};
    use si_query::{evaluate_cq, parse_cq};

    fn social_db() -> Database {
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "NYC"],
                tuple![3, "cat", "LA"],
                tuple![4, "dan", "NYC"],
            ],
        )
        .unwrap();
        db.insert_all(
            "friend",
            vec![tuple![1, 2], tuple![1, 3], tuple![1, 4], tuple![2, 4], tuple![3, 1]],
        )
        .unwrap();
        db.insert_all(
            "restr",
            vec![
                tuple![10, "sushi", "NYC", "A"],
                tuple![11, "taco", "NYC", "B"],
                tuple![12, "pasta", "LA", "A"],
            ],
        )
        .unwrap();
        db.insert_all(
            "visit",
            vec![tuple![2, 10], tuple![4, 10], tuple![4, 11], tuple![3, 12]],
        )
        .unwrap();
        db
    }

    #[test]
    fn q1_bounded_execution_matches_naive_and_is_bounded() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &access);
        let q1 = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        let plan = planner.plan(&q1, &["p".into()]).unwrap();
        let adb = AccessIndexedDatabase::new(social_db(), access).unwrap();

        let result = execute_bounded(&plan, &[Value::int(1)], &adb).unwrap();
        let mut answers = result.answers.clone();
        answers.sort();
        assert_eq!(answers, vec![tuple!["bob"], tuple!["dan"]]);

        // Same answers as naive evaluation with p bound to 1.
        let bound = q1.bind(&[("p".into(), Value::int(1))]);
        let mut naive = evaluate_cq(&bound, adb.database(), None).unwrap();
        naive.sort();
        assert_eq!(answers, naive);

        // Access cost: 3 friend tuples + 3 person probes (1 tuple each for
        // NYC friends 2, 4 and LA friend 3 which yields a tuple that fails
        // the city filter → fetched but filtered by the probe itself).
        assert!(result.accesses.tuples_fetched <= 6);
        assert!(result.accesses.full_scans == 0);

        // The witness really is a witness.
        assert!(crate::si::check_witness(
            &crate::si::AnyQuery::Cq(bound),
            adb.database(),
            &result.witness,
            result.witness.size()
        )
        .unwrap());
    }

    #[test]
    fn bounded_execution_for_person_without_nyc_friends_is_empty() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &access);
        let q1 = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        let plan = planner.plan(&q1, &["p".into()]).unwrap();
        let adb = AccessIndexedDatabase::new(social_db(), access).unwrap();
        // Person 4 has no outgoing friend edges.
        let result = execute_bounded(&plan, &[Value::int(4)], &adb).unwrap();
        assert!(result.answers.is_empty());
        assert_eq!(result.witness.size(), 0);
    }

    #[test]
    fn q2_with_restaurant_key_is_bounded() {
        // Q2 for a fixed person: friend, visit, person, restr.  visit has no
        // constraint in the plain Facebook schema, so add one on id.
        let schema = social_schema();
        let access = facebook_access_schema(5000)
            .with(si_access::AccessConstraint::new("visit", &["id"], 1000, 1));
        let planner = BoundedPlanner::new(&schema, &access);
        let q2 = parse_cq(
            r#"Q2(p, rn) :- friend(p, id), visit(id, rid), person(id, pn, "NYC"), restr(rid, rn, "NYC", "A")"#,
        )
        .unwrap();
        let plan = planner.plan(&q2, &["p".into()]).unwrap();
        let adb = AccessIndexedDatabase::new(social_db(), access).unwrap();
        let result = execute_bounded(&plan, &[Value::int(1)], &adb).unwrap();
        assert_eq!(result.answers, vec![tuple!["sushi"]]);
        // Cross-check against naive evaluation.
        let bound = q2.bind(&[("p".into(), Value::int(1))]);
        assert_eq!(
            result.answers,
            evaluate_cq(&bound, adb.database(), None).unwrap()
        );
    }

    #[test]
    fn q3_embedded_plan_executes_correctly() {
        let schema = social_schema_dated();
        let access = facebook_access_schema(5000)
            .with_embedded(EmbeddedConstraint::new(
                "visit",
                &["yy"],
                &["mm", "dd"],
                366,
                3,
            ))
            .with_embedded(EmbeddedConstraint::functional_dependency(
                "visit",
                &["id", "yy", "mm", "dd"],
                &["rid"],
                1,
            ));
        let planner = BoundedPlanner::new(&schema, &access);
        let q3 = parse_cq(
            r#"Q3(rn, p, yy) :- friend(p, id), visit(id, rid, yy, mm, dd), person(id, pn, "NYC"), restr(rid, rn, "NYC", "A")"#,
        )
        .unwrap();
        let plan = planner.plan(&q3, &["p".into(), "yy".into()]).unwrap();

        let mut db = Database::empty(schema.clone());
        db.insert_all(
            "person",
            vec![tuple![1, "ann", "NYC"], tuple![2, "bob", "NYC"], tuple![3, "cat", "LA"]],
        )
        .unwrap();
        db.insert_all("friend", vec![tuple![1, 2], tuple![1, 3]])
            .unwrap();
        db.insert_all(
            "restr",
            vec![tuple![10, "sushi", "NYC", "A"], tuple![11, "taco", "NYC", "B"]],
        )
        .unwrap();
        db.insert_all(
            "visit",
            vec![
                tuple![2, 10, 2013, 5, 1],
                tuple![2, 11, 2013, 6, 2],
                tuple![3, 10, 2013, 7, 3],
                tuple![2, 10, 2014, 1, 1],
            ],
        )
        .unwrap();
        let adb = AccessIndexedDatabase::new(db, access).unwrap();
        let result =
            execute_bounded(&plan, &[Value::int(1), Value::int(2013)], &adb).unwrap();
        // Friend 2 (NYC) visited sushi (A-rated, NYC) in 2013; taco is
        // B-rated; friend 3 lives in LA.
        assert_eq!(result.answers, vec![tuple!["sushi"]]);
        // Cross-check with naive evaluation of the bound query.
        let bound = q3.bind(&[
            ("p".into(), Value::int(1)),
            ("yy".into(), Value::int(2013)),
        ]);
        assert_eq!(
            result.answers,
            evaluate_cq(&bound, adb.database(), None).unwrap()
        );
        assert!(result.accesses.full_scans == 0);
    }

    #[test]
    fn parameter_arity_mismatch_is_rejected() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &access);
        let q1 = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        let plan = planner.plan(&q1, &["p".into()]).unwrap();
        let adb = AccessIndexedDatabase::new(social_db(), facebook_access_schema(5000)).unwrap();
        assert!(matches!(
            execute_bounded(&plan, &[], &adb),
            Err(CoreError::Invariant(_))
        ));
    }

    #[test]
    fn contradictory_equalities_produce_empty_answers() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &access);
        let q = parse_cq(r#"Q(name) :- friend(1, id), person(id, name, "NYC"), 1 = 2"#).unwrap();
        let plan = planner.plan(&q, &[]).unwrap();
        let adb = AccessIndexedDatabase::new(social_db(), access).unwrap();
        let result = execute_bounded(&plan, &[], &adb).unwrap();
        assert!(result.answers.is_empty());
        assert_eq!(result.accesses.tuples_fetched, 0);
    }

    #[test]
    fn static_cost_upper_bounds_measured_cost() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &access);
        let q1 = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        let plan = planner.plan(&q1, &["p".into()]).unwrap();
        let adb = AccessIndexedDatabase::new(social_db(), access).unwrap();
        for p in 1..=4 {
            let result = execute_bounded(&plan, &[Value::int(p)], &adb).unwrap();
            assert!(result.accesses.tuples_fetched <= plan.static_cost().max_tuples);
            assert!(result.accesses.index_probes <= plan.static_cost().max_probes);
        }
    }
}
