//! The unbounded baseline used by every experiment.
//!
//! A conventional engine without access-schema knowledge answers a query by
//! scanning (at least) every relation the query mentions, so the number of
//! base tuples it touches grows linearly with `|D|`.  [`execute_naive`] wraps
//! the hash-join evaluator of `si-query` with the same result shape as
//! [`crate::bounded::exec::execute_bounded`], so experiments can compare the
//! two directly.

use crate::bounded::exec::BoundedAnswer;
use crate::error::CoreError;
use crate::si::Witness;
use si_data::{AccessMeter, Database, Value};
use si_query::{evaluate_cq, ConjunctiveQuery, Var};

/// Evaluates `query` with `parameters` bound to `values` by full (unbounded)
/// evaluation over `db`, reporting the same [`BoundedAnswer`] shape as the
/// bounded executor.  The witness field is left empty: naive evaluation has
/// no notion of a small witness — it reads whole relations.
pub fn execute_naive(
    query: &ConjunctiveQuery,
    parameters: &[Var],
    values: &[Value],
    db: &Database,
) -> Result<BoundedAnswer, CoreError> {
    if parameters.len() != values.len() {
        return Err(CoreError::Invariant(format!(
            "expected {} parameter values, got {}",
            parameters.len(),
            values.len()
        )));
    }
    let bindings: Vec<(Var, Value)> = parameters
        .iter()
        .cloned()
        .zip(values.iter().cloned())
        .collect();
    let bound = query.bind(&bindings);
    let meter = AccessMeter::new();
    let answers = evaluate_cq(&bound, db, Some(&meter))?;
    Ok(BoundedAnswer {
        answers,
        witness: Witness::empty(),
        accesses: meter.snapshot(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_data::schema::social_schema;
    use si_data::tuple;
    use si_query::parse_cq;

    fn db() -> Database {
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "NYC"],
                tuple![3, "cat", "LA"],
            ],
        )
        .unwrap();
        db.insert_all("friend", vec![tuple![1, 2], tuple![1, 3], tuple![2, 3]])
            .unwrap();
        db
    }

    #[test]
    fn naive_execution_scans_whole_relations() {
        let q1 = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        let d = db();
        let result = execute_naive(&q1, &["p".into()], &[Value::int(1)], &d).unwrap();
        assert_eq!(result.answers, vec![tuple!["bob"]]);
        // Naive evaluation scanned both relations entirely.
        assert_eq!(result.accesses.full_scans, 2);
        assert_eq!(
            result.accesses.tuples_fetched,
            (d.relation("friend").unwrap().len() + d.relation("person").unwrap().len()) as u64
        );
        assert_eq!(result.witness.size(), 0);
    }

    #[test]
    fn parameter_mismatch_is_rejected() {
        let q1 = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        assert!(matches!(
            execute_naive(&q1, &["p".into()], &[], &db()),
            Err(CoreError::Invariant(_))
        ));
    }
}
