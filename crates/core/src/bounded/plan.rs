//! Bounded (scale-independent) query plans — the constructive content of
//! Theorem 4.2 and Proposition 4.5.
//!
//! Given a conjunctive query, a choice of parameter variables (the `x̄` whose
//! values will be supplied at execution time) and an access schema, the
//! planner produces an ordered list of *access steps*, each of which is
//! authorised by an access constraint and therefore touches a
//! data-independent number of tuples:
//!
//! * [`PlanStep::Fetch`] — probe an index promised by a plain constraint
//!   `(R, X, N, T)`; binds the remaining variables of the atom and consumes
//!   it (at most `N` tuples per probe);
//! * [`PlanStep::Enumerate`] — use an embedded constraint `(R, X[Y], N, T)`
//!   to enumerate candidate values for so-far-unbound variables (at most `N`
//!   combinations per probe) without consuming the atom;
//! * [`PlanStep::Check`] — all positions of an atom are bound: verify the
//!   tuple with a membership probe (at most one tuple).
//!
//! If the planner succeeds, the query (with the chosen parameters) is
//! scale-independent under the access schema and [`BoundedPlan::static_cost`]
//! is a data-independent bound on the tuples fetched; if it fails, it reports
//! the atoms that no constraint can cover
//! ([`CoreError::NotBoundedPlannable`]).

use crate::error::CoreError;
use si_access::{AccessConstraint, AccessSchema, EmbeddedConstraint, StaticCost};
use si_data::DatabaseSchema;
use si_query::{ConjunctiveQuery, Term, Var};
use std::collections::BTreeSet;
use std::fmt;

/// One access step of a bounded plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanStep {
    /// Probe the index of a plain access constraint.
    Fetch {
        /// Index of the atom (in the bound query's atom list) this consumes.
        atom_index: usize,
        /// The constraint that authorises the probe.
        constraint: AccessConstraint,
        /// Attributes bound at probe time (constraint attributes plus any
        /// additional already-bound attributes used as a residual filter).
        probe_attributes: Vec<String>,
    },
    /// Enumerate candidate values through an embedded constraint.
    Enumerate {
        /// Index of the atom whose variables are being enumerated.
        atom_index: usize,
        /// The embedded constraint used.
        constraint: EmbeddedConstraint,
    },
    /// Verify a fully-bound atom with a membership probe.
    Check {
        /// Index of the atom this consumes.
        atom_index: usize,
    },
}

impl PlanStep {
    /// The data-independent bound on tuples produced per invocation.
    pub fn bound(&self) -> usize {
        match self {
            PlanStep::Fetch { constraint, .. } => constraint.bound,
            PlanStep::Enumerate { constraint, .. } => constraint.bound,
            PlanStep::Check { .. } => 1,
        }
    }

    /// The time bound charged per invocation.
    pub fn time(&self) -> u64 {
        match self {
            PlanStep::Fetch { constraint, .. } => constraint.time,
            PlanStep::Enumerate { constraint, .. } => constraint.time,
            PlanStep::Check { .. } => 1,
        }
    }

    /// Does the step consume (fully resolve) its atom?
    pub fn consumes_atom(&self) -> bool {
        !matches!(self, PlanStep::Enumerate { .. })
    }

    /// The atom index the step refers to.
    pub fn atom_index(&self) -> usize {
        match self {
            PlanStep::Fetch { atom_index, .. }
            | PlanStep::Enumerate { atom_index, .. }
            | PlanStep::Check { atom_index } => *atom_index,
        }
    }
}

impl fmt::Display for PlanStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanStep::Fetch {
                atom_index,
                constraint,
                ..
            } => write!(f, "fetch atom #{atom_index} via {constraint}"),
            PlanStep::Enumerate {
                atom_index,
                constraint,
            } => write!(f, "enumerate atom #{atom_index} via {constraint}"),
            PlanStep::Check { atom_index } => write!(f, "membership-check atom #{atom_index}"),
        }
    }
}

/// A bounded plan for a conjunctive query with fixed parameter variables.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundedPlan {
    /// The query after substituting nothing — parameters stay symbolic; they
    /// are bound at execution time.
    pub query: ConjunctiveQuery,
    /// The parameter variables whose values must be supplied to execute.
    pub parameters: Vec<Var>,
    /// The ordered access steps.
    pub steps: Vec<PlanStep>,
    /// Data-independent worst-case cost.
    cost: StaticCost,
}

impl BoundedPlan {
    /// Assembles a plan from its parts (crate-internal: planners are the only
    /// producers of well-formed step sequences).
    pub(crate) fn from_parts(
        query: ConjunctiveQuery,
        parameters: Vec<Var>,
        steps: Vec<PlanStep>,
        cost: StaticCost,
    ) -> Self {
        BoundedPlan {
            query,
            parameters,
            steps,
            cost,
        }
    }

    /// The data-independent worst-case cost of executing the plan once.
    pub fn static_cost(&self) -> StaticCost {
        self.cost
    }

    /// The output variables (head variables that are not parameters).
    pub fn output_variables(&self) -> Vec<Var> {
        self.query
            .head
            .iter()
            .filter(|v| !self.parameters.contains(v))
            .cloned()
            .collect()
    }
}

impl fmt::Display for BoundedPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "BoundedPlan for {} with parameters ({})",
            self.query.name,
            self.parameters.join(", ")
        )?;
        for (i, s) in self.steps.iter().enumerate() {
            writeln!(f, "  {i}. {s}")?;
        }
        write!(f, "  worst case: {}", self.cost)
    }
}

/// Plans bounded evaluations of conjunctive queries under an access schema.
#[derive(Debug, Clone)]
pub struct BoundedPlanner<'a> {
    schema: &'a DatabaseSchema,
    access: &'a AccessSchema,
}

impl<'a> BoundedPlanner<'a> {
    /// Creates a planner.
    pub fn new(schema: &'a DatabaseSchema, access: &'a AccessSchema) -> Self {
        BoundedPlanner { schema, access }
    }

    /// Builds a bounded plan for `query` assuming values for `parameters`
    /// will be supplied at execution time.
    ///
    /// Fails with [`CoreError::NotBoundedPlannable`] when some atom cannot be
    /// covered — i.e. the query is not (known to be) x̄-controlled for
    /// `x̄ = parameters`.
    pub fn plan(
        &self,
        query: &ConjunctiveQuery,
        parameters: &[Var],
    ) -> Result<BoundedPlan, CoreError> {
        query.validate(self.schema)?;
        let mut bound: BTreeSet<Var> = parameters.iter().cloned().collect();
        // Equalities to constants bind variables up front.
        for (l, r) in &query.equalities {
            match (l, r) {
                (Term::Var(v), Term::Const(_)) | (Term::Const(_), Term::Var(v)) => {
                    bound.insert(v.clone());
                }
                _ => {}
            }
        }

        let mut consumed: BTreeSet<usize> = BTreeSet::new();
        let mut used_enumerations: BTreeSet<(usize, String)> = BTreeSet::new();
        let mut steps: Vec<PlanStep> = Vec::new();
        let mut cost = StaticCost::zero();
        let mut multiplicity: u64 = 1;

        while consumed.len() < query.atoms.len() {
            // Propagate variable/variable equalities.
            loop {
                let mut changed = false;
                for (l, r) in &query.equalities {
                    if let (Term::Var(a), Term::Var(b)) = (l, r) {
                        if bound.contains(a) && bound.insert(b.clone()) {
                            changed = true;
                        }
                        if bound.contains(b) && bound.insert(a.clone()) {
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }

            let candidate = self.best_candidate(query, &bound, &consumed, &used_enumerations)?;
            let Some(step) = candidate else {
                let blocked: Vec<String> = query
                    .atoms
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !consumed.contains(i))
                    .map(|(_, a)| a.to_string())
                    .collect();
                return Err(CoreError::NotBoundedPlannable {
                    blocked_atoms: blocked,
                });
            };

            // Account for the step and update the planner state.
            cost = cost.per_result(
                multiplicity,
                StaticCost::single_fetch(step.bound(), step.time()),
            );
            multiplicity = multiplicity.saturating_mul(step.bound() as u64);
            let atom = &query.atoms[step.atom_index()];
            match &step {
                PlanStep::Fetch { .. } | PlanStep::Check { .. } => {
                    consumed.insert(step.atom_index());
                    for v in atom.variables() {
                        bound.insert(v);
                    }
                }
                PlanStep::Enumerate { constraint, .. } => {
                    used_enumerations.insert((step.atom_index(), constraint.to_string()));
                    let rel = self.schema.relation(&atom.relation)?;
                    for a in &constraint.onto {
                        let pos = rel.position_of(a)?;
                        if let Term::Var(v) = &atom.terms[pos] {
                            bound.insert(v.clone());
                        }
                    }
                }
            }
            steps.push(step);
        }

        Ok(BoundedPlan {
            query: query.clone(),
            parameters: parameters.to_vec(),
            steps,
            cost,
        })
    }

    /// Finds the cheapest applicable step, preferring consuming steps.
    fn best_candidate(
        &self,
        query: &ConjunctiveQuery,
        bound: &BTreeSet<Var>,
        consumed: &BTreeSet<usize>,
        used_enumerations: &BTreeSet<(usize, String)>,
    ) -> Result<Option<PlanStep>, CoreError> {
        let mut best: Option<(usize, bool, PlanStep)> = None; // (bound, !consumes, step)
        let mut consider = |candidate: PlanStep| {
            let key = (candidate.bound(), !candidate.consumes_atom());
            match &best {
                Some((b, nc, _)) if (*b, *nc) <= key => {}
                _ => best = Some((key.0, key.1, candidate)),
            }
        };

        for (i, atom) in query.atoms.iter().enumerate() {
            if consumed.contains(&i) {
                continue;
            }
            let rel = self.schema.relation(&atom.relation)?;
            let position_bound = |pos: usize| match &atom.terms[pos] {
                Term::Const(_) => true,
                Term::Var(v) => bound.contains(v),
            };
            let all_bound = (0..atom.terms.len()).all(position_bound);
            if all_bound {
                consider(PlanStep::Check { atom_index: i });
                continue;
            }
            // Plain constraints whose X positions are all bound.
            for constraint in self.access.constraints_on(&atom.relation) {
                let usable = constraint
                    .on
                    .iter()
                    .map(|a| rel.position_of(a))
                    .collect::<Result<Vec<_>, _>>()?
                    .into_iter()
                    .all(position_bound);
                if usable {
                    let probe_attributes: Vec<String> = rel
                        .attributes()
                        .iter()
                        .enumerate()
                        .filter(|(pos, _)| position_bound(*pos))
                        .map(|(_, a)| a.clone())
                        .collect();
                    consider(PlanStep::Fetch {
                        atom_index: i,
                        constraint: constraint.clone(),
                        probe_attributes,
                    });
                }
            }
            // Embedded constraints that can bind at least one new variable.
            for constraint in self.access.embedded_on(&atom.relation) {
                if used_enumerations.contains(&(i, constraint.to_string())) {
                    continue;
                }
                let inputs_ok = constraint
                    .from
                    .iter()
                    .map(|a| rel.position_of(a))
                    .collect::<Result<Vec<_>, _>>()?
                    .into_iter()
                    .all(position_bound);
                if !inputs_ok {
                    continue;
                }
                let binds_something = constraint
                    .onto
                    .iter()
                    .map(|a| rel.position_of(a))
                    .collect::<Result<Vec<_>, _>>()?
                    .into_iter()
                    .any(|pos| !position_bound(pos));
                if binds_something {
                    consider(PlanStep::Enumerate {
                        atom_index: i,
                        constraint: constraint.clone(),
                    });
                }
            }
        }
        Ok(best.map(|(_, _, step)| step))
    }

    /// Convenience: is the query x̄-plannable (and hence scale-independent by
    /// Theorem 4.2) for `x̄ = parameters`?
    pub fn is_plannable(&self, query: &ConjunctiveQuery, parameters: &[Var]) -> bool {
        self.plan(query, parameters).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_access::{facebook_access_schema, AccessSchema, EmbeddedConstraint};
    use si_data::schema::{social_schema, social_schema_dated};
    use si_query::parse_cq;

    fn q1() -> ConjunctiveQuery {
        parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap()
    }

    fn q3() -> ConjunctiveQuery {
        parse_cq(
            r#"Q3(rn, p, yy) :- friend(p, id), visit(id, rid, yy, mm, dd), person(id, pn, "NYC"), restr(rid, rn, "NYC", "A")"#,
        )
        .unwrap()
    }

    #[test]
    fn q1_plan_matches_the_paper_recipe() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &access);
        let plan = planner.plan(&q1(), &["p".into()]).unwrap();
        // Two steps: fetch friends of p, then probe person by id.
        assert_eq!(plan.steps.len(), 2);
        assert!(matches!(plan.steps[0], PlanStep::Fetch { .. }));
        assert!(matches!(plan.steps[1], PlanStep::Fetch { .. }));
        // Worst case: 5000 friend tuples + 5000 person probes of 1 tuple each
        // = 10000 tuples, matching Example 1.1(a)'s M ≥ 10000.
        assert_eq!(plan.static_cost().max_tuples, 10_000);
        assert_eq!(plan.output_variables(), vec!["name".to_string()]);
        assert!(plan.to_string().contains("fetch atom #0"));
    }

    #[test]
    fn q1_is_not_plannable_without_parameters_or_constraints() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &access);
        let err = planner.plan(&q1(), &[]).unwrap_err();
        match err {
            CoreError::NotBoundedPlannable { blocked_atoms } => {
                assert_eq!(blocked_atoms.len(), 2);
            }
            other => panic!("unexpected error {other}"),
        }
        let planner_no_access = AccessSchema::new();
        let planner2 = BoundedPlanner::new(&schema, &planner_no_access);
        assert!(!planner2.is_plannable(&q1(), &["p".into()]));
    }

    #[test]
    fn constants_make_atoms_plannable_without_parameters() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &access);
        let q = parse_cq(r#"Q(name) :- friend(1, id), person(id, name, "NYC")"#).unwrap();
        let plan = planner.plan(&q, &[]).unwrap();
        assert_eq!(plan.static_cost().max_tuples, 10_000);
    }

    #[test]
    fn q3_needs_embedded_constraints() {
        let schema = social_schema_dated();
        let plain = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &plain);
        assert!(!planner.is_plannable(&q3(), &["p".into(), "yy".into()]));

        let enriched = facebook_access_schema(5000)
            .with_embedded(EmbeddedConstraint::new(
                "visit",
                &["yy"],
                &["mm", "dd"],
                366,
                3,
            ))
            .with_embedded(EmbeddedConstraint::functional_dependency(
                "visit",
                &["id", "yy", "mm", "dd"],
                &["rid"],
                1,
            ));
        let planner = BoundedPlanner::new(&schema, &enriched);
        let plan = planner.plan(&q3(), &["p".into(), "yy".into()]).unwrap();
        // The plan uses at least one Enumerate step (the 366-day bound) and a
        // membership check for the visit atom itself.
        assert!(plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::Enumerate { .. })));
        assert!(plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::Check { .. })));
        // Still not plannable with p alone.
        assert!(!planner.is_plannable(&q3(), &["p".into()]));
    }

    #[test]
    fn equalities_to_constants_seed_the_plan() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &access);
        let q = parse_cq(r#"Q(name) :- friend(p, id), person(id, name, "NYC"), p = 1"#).unwrap();
        assert!(planner.is_plannable(&q, &[]));
        // And variable/variable equalities propagate bound-ness.
        let q = parse_cq(r#"Q(name) :- friend(q, id), person(id, name, "NYC"), q = p"#).unwrap();
        assert!(planner.is_plannable(&q, &["p".into()]));
        assert!(!planner.is_plannable(&q, &[]));
    }

    #[test]
    fn cheaper_constraints_are_preferred() {
        let schema = social_schema();
        // Two constraints on friend: a loose one on id1 and a key on both.
        let access = facebook_access_schema(5000).with(si_access::AccessConstraint::new(
            "friend",
            &["id1", "id2"],
            1,
            1,
        ));
        let planner = BoundedPlanner::new(&schema, &access);
        // With both endpoints bound the planner picks the key (bound 1) — via
        // a membership check or the tight constraint, never the 5000 one.
        let q = parse_cq("Q(a, b) :- friend(a, b)").unwrap();
        let plan = planner.plan(&q, &["a".into(), "b".into()]).unwrap();
        assert_eq!(plan.static_cost().max_tuples, 1);
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let planner = BoundedPlanner::new(&schema, &access);
        let bad = parse_cq("Q(x) :- enemy(x)").unwrap();
        assert!(planner.plan(&bad, &[]).is_err());
    }

    #[test]
    fn plan_step_accessors() {
        let fetch = PlanStep::Fetch {
            atom_index: 3,
            constraint: si_access::AccessConstraint::new("friend", &["id1"], 5000, 2),
            probe_attributes: vec!["id1".into()],
        };
        assert_eq!(fetch.bound(), 5000);
        assert_eq!(fetch.time(), 2);
        assert!(fetch.consumes_atom());
        assert_eq!(fetch.atom_index(), 3);
        let check = PlanStep::Check { atom_index: 1 };
        assert_eq!(check.bound(), 1);
        assert_eq!(check.time(), 1);
        let enumerate = PlanStep::Enumerate {
            atom_index: 0,
            constraint: EmbeddedConstraint::new("visit", &["yy"], &["mm"], 366, 3),
        };
        assert!(!enumerate.consumes_atom());
        assert!(enumerate.to_string().contains("enumerate"));
    }
}
