//! Cost-based plan enumeration: dynamic programming over atom sets.
//!
//! The greedy [`super::plan::BoundedPlanner`] orders atoms by the *declared*
//! worst-case bounds `N` of the access constraints.  Declared bounds must
//! hold for every key, so on skewed data they can be wildly pessimistic — a
//! relation with one heavy key forces a large `N` even when the average
//! fanout is 1 — and the greedy order then fetches orders of magnitude more
//! tuples than necessary.
//!
//! [`CostBasedPlanner`] instead enumerates atom orderings with dynamic
//! programming over subsets of consumed atoms.  Each DP state is a set of
//! consumed atoms; transitions consume one more atom through a
//! [`PlanStep::Fetch`] or [`PlanStep::Check`] and are ranked by the
//! *expected* number of tuples fetched, estimated by the statistics-driven
//! [`CostModel`] (row counts, per-column distinct counts).  Alongside the
//! estimate every state carries the exact worst-case [`StaticCost`]
//! accumulated from the constraints, and states whose worst case exceeds an
//! optional **fetch budget** are pruned — the access-constraint fetch bound
//! is the admissibility test, the estimates only rank admissible plans
//! (see `si_access::cost` for the invariants).
//!
//! Queries that need embedded constraints ([`PlanStep::Enumerate`] steps) or
//! have more atoms than the enumeration cap fall back to the greedy planner,
//! so every query plannable before stays plannable; the DP only ever
//! improves the ordering.

use crate::bounded::plan::{BoundedPlan, BoundedPlanner, PlanStep};
use crate::error::CoreError;
use si_access::{AccessSchema, CostModel, StaticCost};
use si_data::stats::DatabaseStats;
use si_data::DatabaseSchema;
use si_query::{ConjunctiveQuery, Term, Var};
use std::collections::BTreeSet;

/// Beyond this many atoms the 2^n enumeration is not worth the planning time
/// and the greedy planner takes over.
const MAX_DP_ATOMS: usize = 12;

/// A plan together with the planner's evidence for choosing it.
#[derive(Debug, Clone, PartialEq)]
pub struct CostedPlan {
    /// The chosen plan, executable by [`crate::bounded::execute_bounded`].
    pub plan: BoundedPlan,
    /// Expected tuples fetched per execution under the statistics snapshot.
    pub estimated_tuples: f64,
    /// Number of DP states expanded while enumerating orderings.
    pub states_explored: usize,
    /// True when the greedy planner produced the plan (embedded constraints
    /// or too many atoms for enumeration).
    pub greedy_fallback: bool,
}

/// Plans bounded evaluations by enumerating atom orderings and ranking them
/// with statistical cost estimates.
#[derive(Debug, Clone)]
pub struct CostBasedPlanner<'a> {
    schema: &'a DatabaseSchema,
    access: &'a AccessSchema,
    model: CostModel<'a>,
}

/// What the DP keeps per atom subset when two orderings reach it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rank {
    /// Minimise expected tuples fetched (the planning objective).
    Estimate,
    /// Minimise worst-case tuples fetched (the budget-soundness retry).
    WorstCase,
}

/// One DP state: the best known way to have consumed a set of atoms.
#[derive(Debug, Clone)]
struct State {
    /// Expected number of partial bindings alive after these steps.
    est_rows: f64,
    /// Expected total tuples fetched so far.
    est_cost: f64,
    /// Exact worst-case cost so far (from declared bounds).
    static_cost: StaticCost,
    /// Worst-case number of partial bindings (product of step bounds).
    static_mult: u64,
    /// Predecessor mask and the step taken from it (None for the seed).
    via: Option<(usize, PlanStep)>,
}

impl<'a> CostBasedPlanner<'a> {
    /// Creates a planner over a database schema, an access schema and a
    /// statistics snapshot (see [`DatabaseStats::collect`]).
    pub fn new(
        schema: &'a DatabaseSchema,
        access: &'a AccessSchema,
        stats: &'a DatabaseStats,
    ) -> Self {
        CostBasedPlanner {
            schema,
            access,
            model: CostModel::new(stats),
        }
    }

    /// Builds the cheapest (by expected tuples fetched) bounded plan for
    /// `query` with the given execution-time `parameters`.
    pub fn plan(
        &self,
        query: &ConjunctiveQuery,
        parameters: &[Var],
    ) -> Result<BoundedPlan, CoreError> {
        self.plan_costed(query, parameters, None).map(|c| c.plan)
    }

    /// Like [`CostBasedPlanner::plan`], returning the cost evidence and
    /// enforcing an optional fetch budget: partial plans whose *worst-case*
    /// tuple count (per the access constraints) exceeds `fetch_budget` are
    /// pruned, and [`CoreError::FetchBudgetExceeded`] is returned when no
    /// plan survives.
    ///
    /// The DP keeps one state per atom subset (ranked by estimated cost), so
    /// with a budget a low-estimate/high-worst-case ordering could shadow the
    /// one that fits.  To keep the budget decision sound, a failed budgeted
    /// run is retried ranking states by worst case — then the kept state per
    /// subset minimises exactly the pruned quantity — before concluding that
    /// no ordering fits.
    pub fn plan_costed(
        &self,
        query: &ConjunctiveQuery,
        parameters: &[Var],
        fetch_budget: Option<u64>,
    ) -> Result<CostedPlan, CoreError> {
        query.validate(self.schema)?;
        if query.atoms.len() > MAX_DP_ATOMS {
            return self.fallback(query, parameters, fetch_budget);
        }
        if let Some(costed) = self.run_dp(query, parameters, fetch_budget, Rank::Estimate)? {
            return Ok(costed);
        }
        if let Some(budget) = fetch_budget {
            if let Some(costed) = self.run_dp(query, parameters, fetch_budget, Rank::WorstCase)? {
                return Ok(costed);
            }
            // No ordering fits the budget; find the cheapest worst case
            // (unbudgeted, worst-case-ranked) purely for the error report.
            if let Some(costed) = self.run_dp(query, parameters, None, Rank::WorstCase)? {
                return Err(CoreError::FetchBudgetExceeded {
                    budget,
                    cheapest: costed.plan.static_cost().max_tuples,
                });
            }
        }
        self.fallback(query, parameters, fetch_budget)
    }

    /// One DP pass; returns `None` when no Fetch/Check-only ordering covers
    /// all atoms (within the budget, when one is given).
    fn run_dp(
        &self,
        query: &ConjunctiveQuery,
        parameters: &[Var],
        fetch_budget: Option<u64>,
        rank: Rank,
    ) -> Result<Option<CostedPlan>, CoreError> {
        let n = query.atoms.len();
        // Seed bound variables: parameters plus variables equated to
        // constants; variable/variable equalities are closed over per state.
        let mut seed: BTreeSet<Var> = parameters.iter().cloned().collect();
        for (l, r) in &query.equalities {
            match (l, r) {
                (Term::Var(v), Term::Const(_)) | (Term::Const(_), Term::Var(v)) => {
                    seed.insert(v.clone());
                }
                _ => {}
            }
        }
        let var_var: Vec<(&Var, &Var)> = query
            .equalities
            .iter()
            .filter_map(|(l, r)| match (l, r) {
                (Term::Var(a), Term::Var(b)) => Some((a, b)),
                _ => None,
            })
            .collect();
        let bound_vars = |mask: usize| -> BTreeSet<Var> {
            let mut bound = seed.clone();
            for (i, atom) in query.atoms.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    bound.extend(atom.variables());
                }
            }
            loop {
                let mut changed = false;
                for (a, b) in &var_var {
                    if bound.contains(*a) && bound.insert((*b).clone()) {
                        changed = true;
                    }
                    if bound.contains(*b) && bound.insert((*a).clone()) {
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            bound
        };

        let full = (1usize << n) - 1;
        let mut states: Vec<Option<State>> = vec![None; full + 1];
        states[0] = Some(State {
            est_rows: 1.0,
            est_cost: 0.0,
            static_cost: StaticCost::zero(),
            static_mult: 1,
            via: None,
        });
        let mut explored = 0usize;

        for mask in 0..=full {
            let Some(state) = states[mask].clone() else {
                continue;
            };
            explored += 1;
            let bound = bound_vars(mask);
            for (i, atom) in query.atoms.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    continue;
                }
                let rel = self.schema.relation(&atom.relation)?;
                let position_bound = |pos: usize| match &atom.terms[pos] {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(v),
                };
                let bound_attrs: Vec<String> = rel
                    .attributes()
                    .iter()
                    .enumerate()
                    .filter(|(pos, _)| position_bound(*pos))
                    .map(|(_, a)| a.clone())
                    .collect();
                let all_bound = bound_attrs.len() == atom.terms.len();

                let mut candidates: Vec<(PlanStep, f64, f64, usize, u64)> = Vec::new();
                if all_bound {
                    // Membership probe: fetches at most one tuple; the
                    // expected survivors are the chance the tuple exists.
                    let est = self.model.estimated_check(&atom.relation, &bound_attrs);
                    candidates.push((PlanStep::Check { atom_index: i }, est, est, 1, 1));
                } else {
                    for constraint in self.access.constraints_on(&atom.relation) {
                        let usable = constraint
                            .on
                            .iter()
                            .map(|a| rel.position_of(a))
                            .collect::<Result<Vec<_>, _>>()?
                            .into_iter()
                            .all(position_bound);
                        if !usable {
                            continue;
                        }
                        let fetched = self.model.estimated_fetch_via(constraint);
                        let survive = self
                            .model
                            .estimated_matches(&atom.relation, &bound_attrs)
                            .min(fetched);
                        candidates.push((
                            PlanStep::Fetch {
                                atom_index: i,
                                constraint: constraint.clone(),
                                probe_attributes: bound_attrs.clone(),
                            },
                            fetched,
                            survive,
                            constraint.bound,
                            constraint.time,
                        ));
                    }
                }

                let next_mask = mask | (1 << i);
                for (step, est_fetched, est_survive, step_bound, step_time) in candidates {
                    let static_cost = state.static_cost.per_result(
                        state.static_mult,
                        StaticCost::single_fetch(step_bound, step_time),
                    );
                    if let Some(budget) = fetch_budget {
                        if static_cost.max_tuples > budget {
                            continue;
                        }
                    }
                    let candidate = State {
                        est_rows: state.est_rows * est_survive,
                        est_cost: state.est_cost + state.est_rows * est_fetched,
                        static_cost,
                        static_mult: state.static_mult.saturating_mul(step_bound as u64),
                        via: Some((mask, step)),
                    };
                    let better = match &states[next_mask] {
                        None => true,
                        Some(existing) => match rank {
                            Rank::Estimate => {
                                (candidate.est_cost, candidate.static_cost.max_tuples)
                                    < (existing.est_cost, existing.static_cost.max_tuples)
                            }
                            Rank::WorstCase => {
                                (candidate.static_cost.max_tuples, candidate.est_cost)
                                    < (existing.static_cost.max_tuples, existing.est_cost)
                            }
                        },
                    };
                    if better {
                        states[next_mask] = Some(candidate);
                    }
                }
            }
        }

        let Some(best) = states[full].clone() else {
            return Ok(None);
        };

        // Reconstruct the step sequence by walking predecessor masks.
        let mut steps: Vec<PlanStep> = Vec::with_capacity(n);
        let mut cursor = full;
        while cursor != 0 {
            let state = states[cursor].as_ref().expect("reached state has an entry");
            let (prev, step) = state.via.clone().expect("non-seed state has a predecessor");
            steps.push(step);
            cursor = prev;
        }
        steps.reverse();

        Ok(Some(CostedPlan {
            plan: BoundedPlan::from_parts(
                query.clone(),
                parameters.to_vec(),
                steps,
                best.static_cost,
            ),
            estimated_tuples: best.est_cost,
            states_explored: explored,
            greedy_fallback: false,
        }))
    }

    /// Greedy fallback for queries the DP cannot cover (embedded-constraint
    /// enumerations, oversized atom counts, or budget-pruned dead ends).
    fn fallback(
        &self,
        query: &ConjunctiveQuery,
        parameters: &[Var],
        fetch_budget: Option<u64>,
    ) -> Result<CostedPlan, CoreError> {
        let plan = BoundedPlanner::new(self.schema, self.access).plan(query, parameters)?;
        if let Some(budget) = fetch_budget {
            let cheapest = plan.static_cost().max_tuples;
            if cheapest > budget {
                return Err(CoreError::FetchBudgetExceeded { budget, cheapest });
            }
        }
        let estimated_tuples = self.estimate_plan(&plan);
        Ok(CostedPlan {
            plan,
            estimated_tuples,
            states_explored: 0,
            greedy_fallback: true,
        })
    }

    /// Expected tuples fetched by an existing plan under this model — the
    /// estimate used to compare a greedy plan with the DP winner.
    pub fn estimate_plan(&self, plan: &BoundedPlan) -> f64 {
        let mut rows = 1.0f64;
        let mut cost = 0.0f64;
        for step in &plan.steps {
            let atom = &plan.query.atoms[step.atom_index()];
            match step {
                PlanStep::Fetch {
                    constraint,
                    probe_attributes,
                    ..
                } => {
                    let fetched = self.model.estimated_fetch_via(constraint);
                    let survive = self
                        .model
                        .estimated_matches(&atom.relation, probe_attributes)
                        .min(fetched);
                    cost += rows * fetched;
                    rows *= survive;
                }
                PlanStep::Enumerate { constraint, .. } => {
                    let fetched = self
                        .model
                        .estimated_matches(&atom.relation, &constraint.from)
                        .min(constraint.bound as f64);
                    cost += rows * fetched;
                    rows *= fetched.max(1.0);
                }
                PlanStep::Check { .. } => {
                    let attrs: Vec<String> = self
                        .schema
                        .relation(&atom.relation)
                        .map(|r| r.attributes().to_vec())
                        .unwrap_or_default();
                    let est = self.model.estimated_check(&atom.relation, &attrs);
                    cost += rows * est;
                    rows *= est;
                }
            }
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::exec::execute_bounded;
    use si_access::{facebook_access_schema, AccessConstraint, AccessIndexedDatabase};
    use si_data::schema::social_schema;
    use si_data::{tuple, Database, Value};
    use si_query::parse_cq;

    fn social_db() -> Database {
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "NYC"],
                tuple![3, "cat", "LA"],
                tuple![4, "dan", "NYC"],
            ],
        )
        .unwrap();
        db.insert_all(
            "friend",
            vec![
                tuple![1, 2],
                tuple![1, 3],
                tuple![1, 4],
                tuple![2, 4],
                tuple![3, 1],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn q1_cost_based_plan_matches_greedy_semantics() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let stats = social_db().statistics();
        let planner = CostBasedPlanner::new(&schema, &access, &stats);
        let q1 = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        let costed = planner.plan_costed(&q1, &["p".into()], None).unwrap();
        assert!(!costed.greedy_fallback);
        assert!(costed.states_explored >= 3);
        // Same shape and static bound as the paper recipe.
        assert_eq!(costed.plan.steps.len(), 2);
        assert_eq!(costed.plan.static_cost().max_tuples, 10_000);
        // The estimate reflects the actual tiny database, not the bound.
        assert!(costed.estimated_tuples < 10.0);

        // Executing the plan gives the same answers as the greedy one.
        let adb = AccessIndexedDatabase::new(social_db(), access.clone()).unwrap();
        let result = execute_bounded(&costed.plan, &[Value::int(1)], &adb).unwrap();
        let greedy = BoundedPlanner::new(&schema, &access)
            .plan(&q1, &["p".into()])
            .unwrap();
        let greedy_result = execute_bounded(&greedy, &[Value::int(1)], &adb).unwrap();
        let mut a = result.answers.clone();
        let mut b = greedy_result.answers.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn planner_prefers_index_backed_path_when_stats_make_scan_worse() {
        // Two ways to resolve the person atom once `id` is bound: a bounded
        // whole-relation fetch (the X = ∅ "scan path") and an indexed probe
        // on id.  Both declare the same worst-case N, so the greedy planner
        // cannot tell them apart — the statistics can.
        let schema = social_schema();
        let access = si_access::AccessSchema::new()
            .with(AccessConstraint::new("person", &[], 1000, 1))
            .with(AccessConstraint::new("person", &["id"], 1000, 1))
            .with(AccessConstraint::new("friend", &["id1"], 1000, 1));
        let stats = social_db().statistics();
        let planner = CostBasedPlanner::new(&schema, &access, &stats);
        let q = parse_cq(r#"Q(name) :- person(p, name, city)"#).unwrap();
        let costed = planner.plan_costed(&q, &["p".into()], None).unwrap();
        match &costed.plan.steps[0] {
            PlanStep::Fetch { constraint, .. } => {
                assert_eq!(constraint.on, vec!["id".to_string()]);
            }
            other => panic!("expected an indexed fetch, got {other}"),
        }
        // 4 persons, key column: one expected tuple instead of four.
        assert!(costed.estimated_tuples <= 1.0 + f64::EPSILON);
    }

    #[test]
    fn skewed_data_reorders_atoms_against_declared_bounds() {
        // friend is skewed: declared N must cover the heavy key (1000), but
        // the average fanout is ~1.  A uniform "visit" with declared N = 100
        // looks cheaper to the greedy planner and worse to the statistics.
        let schema = social_schema();
        let mut db = Database::empty(schema.clone());
        for i in 0..1000i64 {
            db.insert("friend", tuple![0, i + 1]).unwrap();
        }
        for i in 1..2000i64 {
            db.insert("friend", tuple![i, 0]).unwrap();
        }
        for q in 0..20i64 {
            for x in 0..100i64 {
                db.insert("visit", tuple![q, q * 100 + x]).unwrap();
            }
        }
        let access = si_access::AccessSchema::new()
            .with(AccessConstraint::new("friend", &["id1"], 1000, 1))
            .with(AccessConstraint::new("visit", &["id"], 100, 1));
        let stats = db.statistics();
        let planner = CostBasedPlanner::new(&schema, &access, &stats);
        // Both atoms share x; p and q are parameters.
        let q = parse_cq("Q(x) :- friend(p, x), visit(q, x)").unwrap();

        let greedy = BoundedPlanner::new(&schema, &access)
            .plan(&q, &["p".into(), "q".into()])
            .unwrap();
        let costed = planner
            .plan_costed(&q, &["p".into(), "q".into()], None)
            .unwrap();
        // Greedy starts with visit (declared 100 < 1000); the cost-based
        // planner starts with friend (expected ~1.5 < 100).
        assert_eq!(greedy.steps[0].atom_index(), 1);
        assert_eq!(costed.plan.steps[0].atom_index(), 0);
        assert!(costed.estimated_tuples < planner.estimate_plan(&greedy));
    }

    #[test]
    fn fetch_budget_prunes_and_reports() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let stats = social_db().statistics();
        let planner = CostBasedPlanner::new(&schema, &access, &stats);
        let q1 = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        // The only plan fetches ≤ 10000 tuples; a budget of 9999 rejects it.
        let err = planner
            .plan_costed(&q1, &["p".into()], Some(9_999))
            .unwrap_err();
        match err {
            CoreError::FetchBudgetExceeded { budget, cheapest } => {
                assert_eq!(budget, 9_999);
                assert_eq!(cheapest, 10_000);
            }
            other => panic!("unexpected error {other}"),
        }
        let ok = planner
            .plan_costed(&q1, &["p".into()], Some(10_000))
            .unwrap();
        assert_eq!(ok.plan.static_cost().max_tuples, 10_000);
    }

    #[test]
    fn budget_retry_finds_low_worst_case_ordering_shadowed_by_estimates() {
        use si_data::{DatabaseSchema, RelationSchema};
        // Diamond: x and y can be consumed in either order before z.  The
        // estimates prefer y-first (skewed: est 1, declared N = 100); the
        // worst case prefers x-first (uniform: est 10, declared N = 10).
        // With a budget between the two worst cases, the estimate-ranked DP
        // shadows the feasible ordering at mask {x, y} — the worst-case
        // retry must still find it.
        let schema = DatabaseSchema::from_relations(vec![
            RelationSchema::new("x", &["a", "u"]),
            RelationSchema::new("y", &["b", "v"]),
            RelationSchema::new("z", &["u", "v", "w"]),
        ])
        .unwrap();
        let mut db = Database::empty(schema.clone());
        for a in 0..100i64 {
            for j in 0..10i64 {
                db.insert("x", tuple![a, a * 10 + j]).unwrap();
            }
        }
        for b in 0..1000i64 {
            db.insert("y", tuple![b, b]).unwrap();
        }
        let access = si_access::AccessSchema::new()
            .with(AccessConstraint::new("x", &["a"], 10, 1))
            .with(AccessConstraint::new("y", &["b"], 100, 1))
            .with(AccessConstraint::new("z", &["u", "v"], 1, 1));
        let stats = db.statistics();
        let planner = CostBasedPlanner::new(&schema, &access, &stats);
        let q = parse_cq("Q(w) :- x(p, u), y(q, v), z(u, v, w)").unwrap();
        let params = ["p".to_string(), "q".to_string()];

        // Unbudgeted, the estimates pick y-first (worst case 2100)…
        let unbudgeted = planner.plan_costed(&q, &params, None).unwrap();
        assert_eq!(unbudgeted.plan.steps[0].atom_index(), 1);
        assert_eq!(unbudgeted.plan.static_cost().max_tuples, 2100);
        // …but a 2050-tuple budget admits only x-first (worst case 2010).
        let budgeted = planner.plan_costed(&q, &params, Some(2050)).unwrap();
        assert_eq!(budgeted.plan.steps[0].atom_index(), 0);
        assert_eq!(budgeted.plan.static_cost().max_tuples, 2010);
        // Below every ordering, the error reports the true cheapest.
        let err = planner.plan_costed(&q, &params, Some(2000)).unwrap_err();
        assert_eq!(
            err,
            CoreError::FetchBudgetExceeded {
                budget: 2000,
                cheapest: 2010
            }
        );
    }

    #[test]
    fn embedded_constraint_queries_fall_back_to_greedy() {
        use si_access::EmbeddedConstraint;
        use si_data::schema::social_schema_dated;
        let schema = social_schema_dated();
        let access = facebook_access_schema(5000)
            .with_embedded(EmbeddedConstraint::new(
                "visit",
                &["yy"],
                &["mm", "dd"],
                366,
                3,
            ))
            .with_embedded(EmbeddedConstraint::functional_dependency(
                "visit",
                &["id", "yy", "mm", "dd"],
                &["rid"],
                1,
            ));
        let db = Database::empty(schema.clone());
        let stats = db.statistics();
        let planner = CostBasedPlanner::new(&schema, &access, &stats);
        let q3 = parse_cq(
            r#"Q3(rn, p, yy) :- friend(p, id), visit(id, rid, yy, mm, dd), person(id, pn, "NYC"), restr(rid, rn, "NYC", "A")"#,
        )
        .unwrap();
        let costed = planner
            .plan_costed(&q3, &["p".into(), "yy".into()], None)
            .unwrap();
        assert!(costed.greedy_fallback);
        assert!(costed
            .plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::Enumerate { .. })));
    }

    #[test]
    fn unplannable_queries_report_blocked_atoms() {
        let schema = social_schema();
        let access = facebook_access_schema(5000);
        let db = Database::empty(schema.clone());
        let stats = db.statistics();
        let planner = CostBasedPlanner::new(&schema, &access, &stats);
        let q1 = parse_cq(r#"Q1(p, name) :- friend(p, id), person(id, name, "NYC")"#).unwrap();
        let err = planner.plan(&q1, &[]).unwrap_err();
        assert!(matches!(err, CoreError::NotBoundedPlannable { .. }));
    }
}
