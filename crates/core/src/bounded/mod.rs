//! Bounded (scale-independent) evaluation: the constructive side of
//! Theorem 4.2 and Proposition 4.5 — plan construction (greedy and
//! cost-based), plan execution over an access-indexed database, and the
//! unbounded baseline used for comparison.

pub mod costplan;
pub mod exec;
pub mod naive;
pub mod plan;

pub use costplan::{CostBasedPlanner, CostedPlan};
pub use exec::{
    execute_bounded, execute_bounded_partitioned, execute_bounded_partitioned_traced,
    execute_bounded_traced, fetch_bounded, BoundedAnswer, SharedFetch,
};
pub use naive::execute_naive;
pub use plan::{BoundedPlan, BoundedPlanner, PlanStep};
