//! The decision problem QSI: is `Q` scale-independent in *every* instance of
//! the schema w.r.t. `M`?
//!
//! The paper's findings (Section 3):
//!
//! * for non-trivial CQ/UCQ the answer is **no** — monotonicity lets one add
//!   tuples generating ever more answers, each of which needs its own
//!   witness facts (we construct such a counterexample instance explicitly);
//! * for Boolean CQ the answer depends only on the query: the worst case is
//!   the canonical (frozen tableau) database, on which the minimum witness is
//!   the size of the core of `Q`;
//! * for FO the problem is undecidable and `SQ_FO,R(M)` is not even
//!   recursively enumerable (Proposition 3.5), so all this module can offer
//!   for FO is a bounded counterexample search returning
//!   [`QsiAnswer::Unknown`] when it finds nothing.

use crate::error::CoreError;
use crate::qdsi::{decide_qdsi, minimal_witness_monotone, SearchLimits};
use crate::si::AnyQuery;
use si_data::{Database, DatabaseSchema, Tuple, Value};
use si_query::{ConjunctiveQuery, Term};

/// The three possible outcomes of a QSI analysis.
#[derive(Debug, Clone)]
pub enum QsiAnswer {
    /// `Q ∈ SQ_L,R(M)`: scale-independent in every instance.
    ScaleIndependent,
    /// Not scale-independent; the payload is a counterexample instance on
    /// which every witness exceeds `M` facts.
    NotScaleIndependent(Box<Database>),
    /// The analysis could not decide (FO undecidability, or search limits).
    Unknown,
}

impl QsiAnswer {
    /// True iff the answer is [`QsiAnswer::ScaleIndependent`].
    pub fn is_scale_independent(&self) -> bool {
        matches!(self, QsiAnswer::ScaleIndependent)
    }
}

/// Decides QSI for a query.
///
/// `fo_search_depth` bounds the counterexample search for FO queries: all
/// instances with at most that many facts over a small fresh domain are
/// tried.  Pass 0 to skip the search entirely.
pub fn decide_qsi(
    query: &AnyQuery,
    schema: &DatabaseSchema,
    m: usize,
    fo_search_depth: usize,
    limits: &SearchLimits,
) -> Result<QsiAnswer, CoreError> {
    match query {
        AnyQuery::Cq(q) => decide_qsi_cq(q, schema, m, limits),
        AnyQuery::Ucq(u) => {
            // A UCQ is scale-independent over all instances only if each
            // disjunct is (a counterexample for one disjunct is padded so the
            // other disjuncts add answers of their own, never shrinking the
            // required witness).  Conversely the union of per-disjunct
            // witnesses is bounded by the sum of bounds, so we report the
            // conservative conjunction of per-disjunct answers.
            let mut all_independent = true;
            for d in &u.disjuncts {
                match decide_qsi_cq(d, schema, m, limits)? {
                    QsiAnswer::ScaleIndependent => {}
                    QsiAnswer::NotScaleIndependent(cex) => {
                        return Ok(QsiAnswer::NotScaleIndependent(cex))
                    }
                    QsiAnswer::Unknown => all_independent = false,
                }
            }
            Ok(if all_independent {
                QsiAnswer::ScaleIndependent
            } else {
                QsiAnswer::Unknown
            })
        }
        AnyQuery::Fo(_) => decide_qsi_fo_bounded(query, schema, m, fo_search_depth, limits),
    }
}

/// QSI for a conjunctive query.
pub fn decide_qsi_cq(
    query: &ConjunctiveQuery,
    schema: &DatabaseSchema,
    m: usize,
    limits: &SearchLimits,
) -> Result<QsiAnswer, CoreError> {
    query.validate(schema)?;
    let head_has_variable = query
        .head
        .iter()
        .any(|h| query.body_variables().contains(h));

    if query.atoms.is_empty() {
        // No relation atoms: the answer never depends on the data beyond the
        // (empty) active-domain corner cases; treat as trivially
        // scale-independent.
        return Ok(QsiAnswer::ScaleIndependent);
    }

    if head_has_variable && !query.head.is_empty() {
        // Non-trivial data-selecting CQ: construct the counterexample of
        // Proposition-style monotonicity — M+1 disjoint frozen copies of the
        // tableau produce M+1 answers whose derivations are pairwise
        // disjoint, so any witness needs more than M facts.
        let cex = disjoint_copies(query, schema, m + 1)?;
        debug_assert!({
            let q: AnyQuery = query.clone().into();
            !decide_qdsi(&q, &cex, m, limits)?.scale_independent
        });
        return Ok(QsiAnswer::NotScaleIndependent(Box::new(cex)));
    }

    // Boolean CQ (or head of constants only): the hardest instance is the
    // canonical database; the minimum witness there is the size of the core.
    let (canonical, _) = query.canonical_database(schema)?;
    let boolean = ConjunctiveQuery {
        name: query.name.clone(),
        head: Vec::new(),
        atoms: query.atoms.clone(),
        equalities: query.equalities.clone(),
    };
    let any: AnyQuery = boolean.clone().into();
    let (witness, _) = minimal_witness_monotone(
        &any,
        std::slice::from_ref(&boolean),
        &canonical,
        canonical.size(),
        limits,
    )?;
    match witness {
        Some(w) if w.size() <= m => Ok(QsiAnswer::ScaleIndependent),
        Some(_) => Ok(QsiAnswer::NotScaleIndependent(Box::new(canonical))),
        None => Ok(QsiAnswer::Unknown),
    }
}

/// Builds `copies` disjoint frozen copies of the query's tableau, each using
/// fresh constants, so that each copy contributes its own answers.
pub fn disjoint_copies(
    query: &ConjunctiveQuery,
    schema: &DatabaseSchema,
    copies: usize,
) -> Result<Database, CoreError> {
    let mut db = Database::empty(schema.clone());
    for i in 0..copies {
        for atom in &query.atoms {
            let tuple: Tuple = atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(c) => *c,
                    Term::Var(v) => Value::str(format!("{v}#{i}")),
                })
                .collect();
            db.insert(&atom.relation, tuple)?;
        }
    }
    Ok(db)
}

/// Bounded counterexample search for FO: enumerates all instances with up to
/// `depth` facts over a fresh domain of `depth + 1` constants and checks QDSI
/// on each.  Returns `Unknown` when no counterexample is found — it cannot
/// return `ScaleIndependent` because the problem is undecidable.
pub fn decide_qsi_fo_bounded(
    query: &AnyQuery,
    schema: &DatabaseSchema,
    m: usize,
    depth: usize,
    limits: &SearchLimits,
) -> Result<QsiAnswer, CoreError> {
    if depth == 0 {
        return Ok(QsiAnswer::Unknown);
    }
    let domain: Vec<Value> = (0..=depth as i64).map(Value::Int).collect();
    // Candidate facts: every relation × every tuple over the small domain.
    let mut candidates: Vec<(String, Tuple)> = Vec::new();
    for rel in schema.relations() {
        let arity = rel.arity();
        let mut tuple_indices = vec![0usize; arity];
        loop {
            let tuple: Tuple = tuple_indices.iter().map(|&i| domain[i]).collect();
            candidates.push((rel.name().to_owned(), tuple));
            // Advance the odometer.
            let mut pos = 0;
            loop {
                if pos == arity {
                    break;
                }
                tuple_indices[pos] += 1;
                if tuple_indices[pos] < domain.len() {
                    break;
                }
                tuple_indices[pos] = 0;
                pos += 1;
            }
            if pos == arity {
                break;
            }
            if arity == 0 {
                break;
            }
        }
        if arity == 0 {
            // A 0-ary relation has a single possible fact, already pushed.
            continue;
        }
    }
    if candidates.len() > 24 {
        // 2^24 instances is already too many; restrict to a prefix so the
        // search stays bounded and document the incompleteness via Unknown.
        candidates.truncate(24);
    }

    // Enumerate subsets of the candidate facts of size ≤ depth.
    let mut chosen: Vec<(String, Tuple)> = Vec::new();
    let found =
        search_fo_counterexample(query, schema, m, depth, &candidates, 0, &mut chosen, limits)?;
    Ok(match found {
        Some(db) => QsiAnswer::NotScaleIndependent(Box::new(db)),
        None => QsiAnswer::Unknown,
    })
}

#[allow(clippy::too_many_arguments)]
fn search_fo_counterexample(
    query: &AnyQuery,
    schema: &DatabaseSchema,
    m: usize,
    remaining: usize,
    candidates: &[(String, Tuple)],
    start: usize,
    chosen: &mut Vec<(String, Tuple)>,
    limits: &SearchLimits,
) -> Result<Option<Database>, CoreError> {
    let mut db = Database::empty(schema.clone());
    for (rel, t) in chosen.iter() {
        db.insert(rel, t.clone())?;
    }
    if m < db.size() {
        // Only instances strictly larger than M can possibly be
        // counterexamples (otherwise the whole instance is a witness).
        match decide_qdsi(query, &db, m, limits) {
            Ok(out) if !out.scale_independent => return Ok(Some(db)),
            Ok(_) => {}
            Err(CoreError::SearchSpaceTooLarge(_)) => {}
            Err(e) => return Err(e),
        }
    }
    if remaining == 0 {
        return Ok(None);
    }
    for i in start..candidates.len() {
        chosen.push(candidates[i].clone());
        let found = search_fo_counterexample(
            query,
            schema,
            m,
            remaining - 1,
            candidates,
            i + 1,
            chosen,
            limits,
        )?;
        chosen.pop();
        if found.is_some() {
            return Ok(found);
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_data::schema::social_schema;
    use si_data::RelationSchema;
    use si_query::ast::{c, v, Atom};
    use si_query::{FoQuery, Formula};

    fn q1() -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            "Q1",
            vec!["p".into(), "name".into()],
            vec![
                Atom::new("friend", vec![v("p"), v("id")]),
                Atom::new("person", vec![v("id"), v("name"), c("NYC")]),
            ],
        )
    }

    #[test]
    fn non_trivial_data_selecting_cq_is_never_qsi() {
        let schema = social_schema();
        let answer = decide_qsi_cq(&q1(), &schema, 100, &SearchLimits::default()).unwrap();
        match answer {
            QsiAnswer::NotScaleIndependent(cex) => {
                // The counterexample has 101 disjoint copies of the tableau.
                assert_eq!(cex.size(), 2 * 101);
                let q: AnyQuery = q1().into();
                let out = decide_qdsi(&q, &cex, 100, &SearchLimits::default()).unwrap();
                assert!(!out.scale_independent);
            }
            other => panic!("expected a counterexample, got {other:?}"),
        }
    }

    #[test]
    fn boolean_cq_is_qsi_iff_core_fits() {
        let schema = social_schema();
        let boolean = ConjunctiveQuery::new(
            "B",
            vec![],
            vec![
                Atom::new("friend", vec![v("x"), v("y")]),
                Atom::new("person", vec![v("y"), v("n"), c("NYC")]),
            ],
        );
        assert!(
            decide_qsi_cq(&boolean, &schema, 2, &SearchLimits::default())
                .unwrap()
                .is_scale_independent()
        );
        assert!(
            !decide_qsi_cq(&boolean, &schema, 1, &SearchLimits::default())
                .unwrap()
                .is_scale_independent()
        );
    }

    #[test]
    fn boolean_cq_core_can_be_smaller_than_tableau() {
        // friend(x, y) ∧ friend(u, w): the core is a single atom, so M = 1
        // suffices even though ‖Q‖ = 2.
        let schema = social_schema();
        let boolean = ConjunctiveQuery::new(
            "B",
            vec![],
            vec![
                Atom::new("friend", vec![v("x"), v("y")]),
                Atom::new("friend", vec![v("u"), v("w")]),
            ],
        );
        assert!(
            decide_qsi_cq(&boolean, &schema, 1, &SearchLimits::default())
                .unwrap()
                .is_scale_independent()
        );
    }

    #[test]
    fn atomless_queries_are_trivially_qsi() {
        let schema = social_schema();
        let q = ConjunctiveQuery::new("T", vec![], vec![]);
        assert!(decide_qsi_cq(&q, &schema, 0, &SearchLimits::default())
            .unwrap()
            .is_scale_independent());
    }

    #[test]
    fn ucq_propagates_counterexamples() {
        let schema = social_schema();
        let u = si_query::UnionQuery::new("U", vec![q1()]).unwrap();
        let q: AnyQuery = u.into();
        let answer = decide_qsi(&q, &schema, 10, 0, &SearchLimits::default()).unwrap();
        assert!(matches!(answer, QsiAnswer::NotScaleIndependent(_)));
    }

    #[test]
    fn fo_returns_unknown_without_search() {
        let schema = social_schema();
        let q: AnyQuery = FoQuery::boolean(
            "B",
            Formula::forall(
                vec!["x".into(), "y".into()],
                Formula::Atom(Atom::new("friend", vec![v("x"), v("y")])),
            ),
        )
        .into();
        assert!(matches!(
            decide_qsi(&q, &schema, 3, 0, &SearchLimits::default()).unwrap(),
            QsiAnswer::Unknown
        ));
    }

    #[test]
    fn fo_bounded_search_finds_counterexamples() {
        // Over a tiny schema with a single unary relation, the query
        // "every element of U is in R" (∀x ¬R(x) fails …) — use a query that
        // fully uses its input (Proposition 3.6 flavour):
        // Q = ∀x,y (R(x) ∧ R(y) → x = y), i.e. "R has at most one element".
        // With M = 1 it is not scale-independent: on an instance with two
        // R-facts the query is false, but any single-fact sub-instance makes
        // it true.
        let schema =
            DatabaseSchema::from_relations(vec![RelationSchema::new("r", &["a"])]).unwrap();
        let body = Formula::forall(
            vec!["x".into(), "y".into()],
            Formula::Implies(
                Box::new(
                    Formula::Atom(Atom::new("r", vec![v("x")]))
                        .and(Formula::Atom(Atom::new("r", vec![v("y")]))),
                ),
                Box::new(Formula::Eq(v("x"), v("y"))),
            ),
        );
        let q: AnyQuery = FoQuery::boolean("AtMostOne", body).into();
        let answer = decide_qsi(&q, &schema, 1, 2, &SearchLimits::default()).unwrap();
        match answer {
            QsiAnswer::NotScaleIndependent(cex) => {
                assert!(cex.size() >= 2);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn disjoint_copies_produces_disjoint_answers() {
        let schema = social_schema();
        let db = disjoint_copies(&q1(), &schema, 3).unwrap();
        assert_eq!(db.size(), 6);
        let q: AnyQuery = q1().into();
        assert_eq!(q.answers(&db).unwrap().len(), 3);
    }
}
