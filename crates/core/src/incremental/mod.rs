//! Incremental scale independence (Section 5): change propagation for
//! relational algebra, bounded maintenance of conjunctive-query answers, and
//! the ∆QSI decision procedures.

pub mod delta_rules;
pub mod incr_si;

pub use delta_rules::{maintain, new_expr, propagate, ChangeExprs};
pub use incr_si::{
    decide_delta_qsi, decide_delta_qsi_for_update, maintenance_is_bounded,
    IncrementalBoundedEvaluator,
};
