//! Change propagation for relational algebra (Section 5).
//!
//! Given an expression `E` and an update `∆D = (∆D, ∇D)`, the maintenance
//! expressions `E∇` and `E∆` compute the tuples leaving and entering `E`:
//!
//! ```text
//! E(D ⊕ ∆D)  =  (E(D) − E∇(D, ∆D)) ∪ E∆(D, ∆D)
//! ```
//!
//! with the invariants `E∇ ⊆ E` and `E∆ ∩ E = ∅` required by the paper
//! (which follows Griffin–Libkin–Trickey \[14\]).  [`propagate`] derives the
//! two expressions structurally; the per-operator shapes for difference are
//! exactly the ones quoted in the paper
//! (`(E1 − E2)∇ = (E1∇ − E2) ∪ (E2∆ ∩ E1)`).

use crate::error::CoreError;
use si_data::{Database, Delta, Tuple};
use si_query::algebra_eval::{NamedRelation, RaEvaluator};
use si_query::RaExpr;
use std::collections::BTreeSet;

/// The pair of maintenance expressions of an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangeExprs {
    /// Tuples leaving the expression (`E∇`).
    pub nabla: RaExpr,
    /// Tuples entering the expression (`E∆`).
    pub delta: RaExpr,
}

/// Rewrites `E` into the expression computing `E(D ⊕ ∆D)`: every base
/// relation `R` is replaced by `(R − ∇R) ∪ ∆R`.
pub fn new_expr(expr: &RaExpr) -> RaExpr {
    match expr {
        RaExpr::Relation(name) => RaExpr::relation(name.clone())
            .diff(RaExpr::nabla(name.clone()))
            .union(RaExpr::delta(name.clone())),
        RaExpr::DeltaRelation(_) | RaExpr::NablaRelation(_) => expr.clone(),
        RaExpr::Select(e, conds) => RaExpr::Select(Box::new(new_expr(e)), conds.clone()),
        RaExpr::Project(e, attrs) => RaExpr::Project(Box::new(new_expr(e)), attrs.clone()),
        RaExpr::Rename(e, mapping) => RaExpr::Rename(Box::new(new_expr(e)), mapping.clone()),
        RaExpr::Join(l, r) => RaExpr::Join(Box::new(new_expr(l)), Box::new(new_expr(r))),
        RaExpr::Union(l, r) => RaExpr::Union(Box::new(new_expr(l)), Box::new(new_expr(r))),
        RaExpr::Diff(l, r) => RaExpr::Diff(Box::new(new_expr(l)), Box::new(new_expr(r))),
        RaExpr::Intersect(l, r) => RaExpr::Intersect(Box::new(new_expr(l)), Box::new(new_expr(r))),
    }
}

/// Derives the maintenance expressions `E∇`, `E∆` for `expr`.
pub fn propagate(expr: &RaExpr) -> Result<ChangeExprs, CoreError> {
    Ok(match expr {
        RaExpr::Relation(name) => ChangeExprs {
            nabla: RaExpr::nabla(name.clone()),
            delta: RaExpr::delta(name.clone()),
        },
        // ∆R / ∇R leaves are the update itself — they do not change.
        RaExpr::DeltaRelation(_) | RaExpr::NablaRelation(_) => ChangeExprs {
            nabla: expr.clone().diff(expr.clone()),
            delta: expr.clone().diff(expr.clone()),
        },
        RaExpr::Select(e, conds) => {
            let inner = propagate(e)?;
            ChangeExprs {
                nabla: RaExpr::Select(Box::new(inner.nabla), conds.clone()),
                delta: RaExpr::Select(Box::new(inner.delta), conds.clone()),
            }
        }
        RaExpr::Project(e, attrs) => {
            let inner = propagate(e)?;
            let project = |x: RaExpr| RaExpr::Project(Box::new(x), attrs.clone());
            ChangeExprs {
                // π_Y(E∇) − π_Y(new(E)): a projected tuple is gone only when
                // no surviving witness projects to it.
                nabla: project(inner.nabla).diff(project(new_expr(e))),
                // π_Y(E∆) − π_Y(E): a projected tuple is new only when it had
                // no witness before.
                delta: project(inner.delta).diff(project((**e).clone())),
            }
        }
        RaExpr::Rename(e, mapping) => {
            let inner = propagate(e)?;
            ChangeExprs {
                nabla: RaExpr::Rename(Box::new(inner.nabla), mapping.clone()),
                delta: RaExpr::Rename(Box::new(inner.delta), mapping.clone()),
            }
        }
        RaExpr::Union(l, r) => {
            let cl = propagate(l)?;
            let cr = propagate(r)?;
            ChangeExprs {
                nabla: cl
                    .nabla
                    .union(cr.nabla)
                    .diff(new_expr(l).union(new_expr(r))),
                delta: cl
                    .delta
                    .union(cr.delta)
                    .diff((**l).clone().union((**r).clone())),
            }
        }
        RaExpr::Diff(l, r) => {
            let cl = propagate(l)?;
            let cr = propagate(r)?;
            ChangeExprs {
                // (E1 − E2)∇ = (E1∇ − E2) ∪ (E2∆ ∩ E1)  — as in the paper.
                nabla: cl
                    .nabla
                    .diff((**r).clone())
                    .union(cr.delta.intersect((**l).clone())),
                // (E1 − E2)∆ = (E1∆ − new(E2)) ∪ (E2∇ ∩ new(E1)).
                delta: cl
                    .delta
                    .diff(new_expr(r))
                    .union(cr.nabla.intersect(new_expr(l))),
            }
        }
        RaExpr::Intersect(l, r) => {
            let cl = propagate(l)?;
            let cr = propagate(r)?;
            ChangeExprs {
                nabla: cl
                    .nabla
                    .intersect((**r).clone())
                    .union((**l).clone().intersect(cr.nabla))
                    .diff(new_expr(l).intersect(new_expr(r))),
                delta: cl
                    .delta
                    .intersect(new_expr(r))
                    .union(new_expr(l).intersect(cr.delta))
                    .diff((**l).clone().intersect((**r).clone())),
            }
        }
        RaExpr::Join(l, r) => {
            let cl = propagate(l)?;
            let cr = propagate(r)?;
            ChangeExprs {
                // ((E1∇ ⋈ E2) ∪ (E1 ⋈ E2∇)) − (new(E1) ⋈ new(E2))
                nabla: cl
                    .nabla
                    .join((**r).clone())
                    .union((**l).clone().join(cr.nabla))
                    .diff(new_expr(l).join(new_expr(r))),
                // ((E1∆ ⋈ new(E2)) ∪ (new(E1) ⋈ E2∆)) − (E1 ⋈ E2)
                delta: cl
                    .delta
                    .join(new_expr(r))
                    .union(new_expr(l).join(cr.delta))
                    .diff((**l).clone().join((**r).clone())),
            }
        }
    })
}

/// Applies the maintenance expressions to a materialised result:
/// `new = (old − E∇) ∪ E∆`, evaluated over the *old* database plus the
/// update, and returns the new tuple set.
pub fn maintain(
    expr: &RaExpr,
    old: &NamedRelation,
    db: &Database,
    update: &Delta,
) -> Result<NamedRelation, CoreError> {
    let changes = propagate(expr)?;
    let evaluator = RaEvaluator::new(db).with_delta(update);
    let removed = evaluator.evaluate(&changes.nabla)?;
    let added = evaluator.evaluate(&changes.delta)?;
    let removed_aligned = removed.align_to(&old.attributes)?;
    let added_aligned = added.align_to(&old.attributes)?;
    let removed_set: BTreeSet<Tuple> = removed_aligned.tuples.into_iter().collect();
    let mut tuples: Vec<Tuple> = old
        .tuples
        .iter()
        .filter(|t| !removed_set.contains(*t))
        .cloned()
        .collect();
    let existing: BTreeSet<Tuple> = tuples.iter().cloned().collect();
    for t in added_aligned.tuples {
        if !existing.contains(&t) {
            tuples.push(t);
        }
    }
    Ok(NamedRelation {
        attributes: old.attributes.clone(),
        tuples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_data::schema::social_schema;
    use si_data::tuple;
    use si_query::algebra_eval::evaluate_ra;
    use si_query::Condition;

    fn db() -> Database {
        let mut db = Database::empty(social_schema());
        db.insert_all(
            "person",
            vec![
                tuple![1, "ann", "NYC"],
                tuple![2, "bob", "NYC"],
                tuple![3, "cat", "LA"],
            ],
        )
        .unwrap();
        db.insert_all("friend", vec![tuple![1, 2], tuple![1, 3], tuple![2, 3]])
            .unwrap();
        db.insert_all(
            "restr",
            vec![
                tuple![10, "sushi", "NYC", "A"],
                tuple![11, "taco", "LA", "B"],
            ],
        )
        .unwrap();
        db.insert_all("visit", vec![tuple![2, 10], tuple![3, 11]])
            .unwrap();
        db
    }

    /// Checks the fundamental identity `E(D ⊕ ∆D) = (E(D) − E∇) ∪ E∆` and
    /// the invariants `E∇ ⊆ E(D)`, `E∆ ∩ E(D) = ∅` for a given expression
    /// and update.
    fn check_propagation(expr: &RaExpr, base: &Database, update: &Delta) {
        let old = evaluate_ra(expr, base).unwrap();
        let updated_db = update.apply(base).unwrap();
        let expected = evaluate_ra(expr, &updated_db).unwrap();

        let changes = propagate(expr).unwrap();
        let evaluator = RaEvaluator::new(base).with_delta(update);
        let removed = evaluator.evaluate(&changes.nabla).unwrap();
        let added = evaluator.evaluate(&changes.delta).unwrap();

        let old_set: BTreeSet<Tuple> = old.tuples.iter().cloned().collect();
        for t in &removed.align_to(&old.attributes).unwrap().tuples {
            assert!(old_set.contains(t), "E∇ must be contained in E(D): {t}");
        }
        for t in &added.align_to(&old.attributes).unwrap().tuples {
            assert!(!old_set.contains(t), "E∆ must be disjoint from E(D): {t}");
        }

        let maintained = maintain(expr, &old, base, update).unwrap();
        let mut got: Vec<Tuple> = maintained.tuples;
        let mut want: Vec<Tuple> = expected.align_to(&maintained.attributes).unwrap().tuples;
        got.sort();
        want.sort();
        assert_eq!(got, want, "maintenance disagrees for {expr}");
    }

    fn q2_like_expr() -> RaExpr {
        // friends of person 1 joined with their visits and A-rated NYC restaurants
        RaExpr::relation("friend")
            .select(vec![Condition::EqConst("id1".into(), 1.into())])
            .rename(&[("id2", "id")])
            .join(RaExpr::relation("visit"))
            .join(
                RaExpr::relation("restr")
                    .select(vec![
                        Condition::EqConst("city".into(), "NYC".into()),
                        Condition::EqConst("rating".into(), "A".into()),
                    ])
                    .project(&["rid", "name"]),
            )
            .project(&["id", "name"])
    }

    #[test]
    fn insertion_into_visit_is_propagated() {
        let base = db();
        let mut update = Delta::new();
        update.insert("visit", tuple![3, 10]);
        update.insert("visit", tuple![2, 11]);
        check_propagation(&q2_like_expr(), &base, &update);
        check_propagation(&RaExpr::relation("visit"), &base, &update);
    }

    #[test]
    fn deletion_from_visit_is_propagated() {
        let base = db();
        let mut update = Delta::new();
        update.delete("visit", tuple![2, 10]);
        check_propagation(&q2_like_expr(), &base, &update);
    }

    #[test]
    fn mixed_update_on_joins_and_projections() {
        let base = db();
        let mut update = Delta::new();
        update.insert("visit", tuple![3, 10]);
        update.delete("friend", tuple![1, 3]);
        update.insert("friend", tuple![1, 9]);
        check_propagation(&q2_like_expr(), &base, &update);
        // Projection-only expression.
        let proj = RaExpr::relation("friend").project(&["id1"]);
        check_propagation(&proj, &base, &update);
    }

    #[test]
    fn union_difference_intersection_propagation() {
        let base = db();
        let mut update = Delta::new();
        update.insert("friend", tuple![2, 1]);
        update.delete("friend", tuple![2, 3]);

        let reversed = RaExpr::relation("friend")
            .rename(&[("id1", "tmp"), ("id2", "id1")])
            .rename(&[("tmp", "id2")]);
        let union = RaExpr::relation("friend").union(reversed.clone());
        check_propagation(&union, &base, &update);

        let diff = RaExpr::relation("friend").diff(reversed.clone());
        check_propagation(&diff, &base, &update);

        let inter = RaExpr::relation("friend").intersect(reversed);
        check_propagation(&inter, &base, &update);
    }

    #[test]
    fn selection_propagation_and_empty_updates() {
        let base = db();
        let update = Delta::new();
        let expr = RaExpr::relation("person").select_eq("city", "NYC");
        check_propagation(&expr, &base, &update);
        let mut update = Delta::new();
        update.insert("person", tuple![4, "dan", "NYC"]);
        update.insert("person", tuple![5, "eli", "LA"]);
        check_propagation(&expr, &base, &update);
    }

    #[test]
    fn delta_leaves_are_stable() {
        // Propagating an expression that already mentions ∆R treats the ∆R
        // part as unchanging.
        let expr = RaExpr::relation("friend")
            .rename(&[("id2", "id")])
            .join(RaExpr::delta("visit"));
        let changes = propagate(&expr).unwrap();
        assert!(changes.nabla.to_string().contains("∆visit"));
        // The ∆visit leaf's own change expressions are of the form E − E.
        let leaf = propagate(&RaExpr::delta("visit")).unwrap();
        let base = db();
        let evaluator = RaEvaluator::new(&base);
        assert!(evaluator.evaluate(&leaf.nabla).unwrap().is_empty());
        assert!(evaluator.evaluate(&leaf.delta).unwrap().is_empty());
    }

    #[test]
    fn new_expr_rewrites_base_relations_only() {
        let e = RaExpr::relation("friend").join(RaExpr::delta("visit"));
        let n = new_expr(&e);
        let s = n.to_string();
        assert!(s.contains("((friend − ∇friend) ∪ ∆friend)"));
        assert!(s.contains("∆visit"));
        // Semantics: evaluating new_expr over (D, ∆D) equals evaluating the
        // original over D ⊕ ∆D.
        let base = db();
        let mut update = Delta::new();
        update.insert("friend", tuple![3, 1]);
        update.delete("friend", tuple![1, 2]);
        let expr = RaExpr::relation("friend");
        let via_new = RaEvaluator::new(&base)
            .with_delta(&update)
            .evaluate(&new_expr(&expr))
            .unwrap();
        let direct = evaluate_ra(&expr, &update.apply(&base).unwrap()).unwrap();
        let mut a = via_new.tuples;
        let mut b = direct.tuples;
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
